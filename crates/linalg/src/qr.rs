use crate::{LinalgError, Matrix, Vector};

/// Householder QR decomposition `A = Q·R` of an `m × n` matrix with
/// `m ≥ n`.
///
/// QR is the numerically robust way to solve least-squares problems: it
/// avoids squaring the condition number the way the normal equations
/// (`AᵀA`) do. The GPS solvers use the normal-equation path by default (the
/// matrices are tiny and well-conditioned, and it is what the paper's
/// eq. 4-12 literally writes), but [`crate::lstsq::ols_qr`] exposes this
/// path for the `ablation_linalg_path` benchmark and for callers facing
/// poor satellite geometry.
///
/// # Example
///
/// ```
/// use gps_linalg::{QrDecomposition, Matrix, Vector};
///
/// # fn main() -> Result<(), gps_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]])?;
/// let qr = QrDecomposition::new(&a)?;
/// let x = qr.solve_least_squares(&Vector::from_slice(&[1.0, 1.0, 2.0]))?;
/// assert!((x[0] - 1.0).abs() < 1e-12);
/// assert!((x[1] - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct QrDecomposition {
    /// Householder vectors stored below the diagonal; R on and above it.
    qr: Matrix,
    /// Scalar β for each Householder reflector `H = I − β v vᵀ`.
    betas: Vec<f64>,
}

impl QrDecomposition {
    /// Factors an `m × n` matrix with `m ≥ n`.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::Underdetermined`] if `m < n`.
    /// * [`LinalgError::EmptyDimension`] if `a` has zero rows or columns.
    /// * [`LinalgError::NonFinite`] if `a` contains NaN/∞.
    /// * [`LinalgError::Singular`] if `a` is (numerically) rank-deficient.
    pub fn new(a: &Matrix) -> crate::Result<Self> {
        let (m, n) = a.shape();
        if m == 0 || n == 0 {
            return Err(LinalgError::EmptyDimension);
        }
        if m < n {
            return Err(LinalgError::Underdetermined { rows: m, cols: n });
        }
        if !a.is_finite() {
            return Err(LinalgError::NonFinite);
        }
        let scale = a.norm_max().max(f64::MIN_POSITIVE);
        let mut qr = a.clone();
        let mut betas = Vec::with_capacity(n);

        for k in 0..n {
            // Build the Householder reflector annihilating column k below
            // the diagonal.
            let mut norm2 = 0.0;
            for i in k..m {
                let v = qr[(i, k)];
                norm2 += v * v;
            }
            let norm = norm2.sqrt();
            if norm <= 1e-13 * scale {
                return Err(LinalgError::Singular);
            }
            let alpha = if qr[(k, k)] >= 0.0 { -norm } else { norm };
            // v = x − α e₁; store v (normalized so v[0] = 1) below diagonal.
            let v0 = qr[(k, k)] - alpha;
            let beta = -v0 / alpha; // β = vᵀv / (2 v0²) simplification
            for i in (k + 1)..m {
                qr[(i, k)] /= v0;
            }
            qr[(k, k)] = alpha; // R diagonal
            betas.push(beta);

            // Apply H to the remaining columns.
            for c in (k + 1)..n {
                // w = vᵀ x  (with v[0] = 1 implicit)
                let mut w = qr[(k, c)];
                for i in (k + 1)..m {
                    w += qr[(i, k)] * qr[(i, c)];
                }
                w *= beta;
                qr[(k, c)] -= w;
                for i in (k + 1)..m {
                    let vk = qr[(i, k)];
                    qr[(i, c)] -= w * vk;
                }
            }
        }
        Ok(QrDecomposition { qr, betas })
    }

    /// Shape `(m, n)` of the factored matrix.
    #[must_use]
    pub fn shape(&self) -> (usize, usize) {
        self.qr.shape()
    }

    /// Extracts the upper-triangular `n × n` factor `R`.
    #[must_use]
    pub fn r(&self) -> Matrix {
        let n = self.qr.cols();
        Matrix::from_fn(n, n, |r, c| if c >= r { self.qr[(r, c)] } else { 0.0 })
    }

    /// Applies `Qᵀ` to a vector in place of forming `Q` explicitly.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `b.len() != m`.
    pub fn q_transpose_apply(&self, b: &Vector) -> crate::Result<Vector> {
        let (m, n) = self.shape();
        if b.len() != m {
            return Err(LinalgError::ShapeMismatch {
                left: (m, n),
                right: (b.len(), 1),
                op: "qr q_transpose_apply",
            });
        }
        let mut y = b.clone();
        for k in 0..n {
            let beta = self.betas[k];
            let mut w = y[k];
            for i in (k + 1)..m {
                w += self.qr[(i, k)] * y[i];
            }
            w *= beta;
            y[k] -= w;
            for i in (k + 1)..m {
                let vk = self.qr[(i, k)];
                y[i] -= w * vk;
            }
        }
        Ok(y)
    }

    /// Solves the least-squares problem `min ‖A x − b‖₂`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `b.len() != m`.
    pub fn solve_least_squares(&self, b: &Vector) -> crate::Result<Vector> {
        let n = self.qr.cols();
        let y = self.q_transpose_apply(b)?;
        // Back-substitute R x = y[..n].
        let mut x = Vector::from_fn(n, |i| y[i]);
        for i in (0..n).rev() {
            let mut s = x[i];
            for j in (i + 1)..n {
                s -= self.qr[(i, j)] * x[j];
            }
            x[i] = s / self.qr[(i, i)];
        }
        Ok(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn r_is_upper_triangular_and_reconstructs_gram() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0], &[7.0, 9.0]]).unwrap();
        let qr = QrDecomposition::new(&a).unwrap();
        let r = qr.r();
        for i in 0..2 {
            for j in 0..i {
                assert_eq!(r[(i, j)], 0.0);
            }
        }
        // RᵀR must equal AᵀA (Q orthogonal).
        let rtr = r.gram();
        let ata = a.gram();
        assert!((&rtr - &ata).norm_max() < 1e-10);
    }

    #[test]
    fn least_squares_matches_normal_equations() {
        let a = Matrix::from_rows(&[
            &[1.0, 0.5, 2.0],
            &[0.0, 1.5, -1.0],
            &[2.0, 1.0, 0.0],
            &[1.0, -1.0, 1.0],
            &[0.5, 0.5, 0.5],
        ])
        .unwrap();
        let b = Vector::from_slice(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        let x_qr = QrDecomposition::new(&a)
            .unwrap()
            .solve_least_squares(&b)
            .unwrap();
        // Normal equations: (AᵀA) x = Aᵀ b.
        let g = a.gram();
        let rhs = a.transpose_matvec(&b).unwrap();
        let x_ne = crate::Cholesky::new(&g).unwrap().solve(&rhs).unwrap();
        assert!((&x_qr - &x_ne).norm_inf() < 1e-9);
    }

    #[test]
    fn exact_solve_square_system() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]).unwrap();
        let x_true = Vector::from_slice(&[1.5, -0.5]);
        let b = a.matvec(&x_true).unwrap();
        let x = QrDecomposition::new(&a)
            .unwrap()
            .solve_least_squares(&b)
            .unwrap();
        assert!((&x - &x_true).norm_inf() < 1e-12);
    }

    #[test]
    fn rejects_underdetermined_and_empty() {
        assert!(matches!(
            QrDecomposition::new(&Matrix::zeros(2, 3)).unwrap_err(),
            LinalgError::Underdetermined { rows: 2, cols: 3 }
        ));
        assert_eq!(
            QrDecomposition::new(&Matrix::zeros(0, 0)).unwrap_err(),
            LinalgError::EmptyDimension
        );
    }

    #[test]
    fn rejects_rank_deficient() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0], &[3.0, 6.0]]).unwrap();
        assert_eq!(QrDecomposition::new(&a).unwrap_err(), LinalgError::Singular);
    }

    #[test]
    fn rejects_non_finite() {
        let mut a = Matrix::identity(2);
        a[(0, 1)] = f64::NAN;
        assert_eq!(
            QrDecomposition::new(&a).unwrap_err(),
            LinalgError::NonFinite
        );
    }

    #[test]
    fn q_transpose_preserves_norm() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 7.0]]).unwrap();
        let qr = QrDecomposition::new(&a).unwrap();
        let b = Vector::from_slice(&[1.0, -2.0, 0.5]);
        let y = qr.q_transpose_apply(&b).unwrap();
        assert!((y.norm() - b.norm()).abs() < 1e-12);
    }

    #[test]
    fn solve_shape_mismatch() {
        let a = Matrix::identity(3);
        let qr = QrDecomposition::new(&a).unwrap();
        assert!(qr.solve_least_squares(&Vector::zeros(2)).is_err());
    }
}
