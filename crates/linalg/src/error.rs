use std::error::Error;
use std::fmt;

/// Error type for all fallible operations in this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LinalgError {
    /// Two operands had incompatible shapes.
    ///
    /// Carries the shapes `(rows, cols)` of the left and right operand.
    ShapeMismatch {
        /// Shape of the left operand.
        left: (usize, usize),
        /// Shape of the right operand.
        right: (usize, usize),
        /// Name of the operation that failed.
        op: &'static str,
    },
    /// A matrix that must be square was not.
    NotSquare {
        /// Actual shape of the offending matrix.
        shape: (usize, usize),
    },
    /// The matrix is singular (or numerically singular) and cannot be
    /// factored or inverted.
    Singular,
    /// Cholesky factorization was attempted on a matrix that is not
    /// (numerically) symmetric positive definite.
    NotPositiveDefinite {
        /// Index of the pivot where positive-definiteness failed.
        pivot: usize,
    },
    /// A least-squares system had fewer rows than columns.
    Underdetermined {
        /// Number of rows (equations).
        rows: usize,
        /// Number of columns (unknowns).
        cols: usize,
    },
    /// A dimension argument was zero where a positive size is required.
    EmptyDimension,
    /// An input contained a NaN or infinite entry.
    NonFinite,
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::ShapeMismatch { left, right, op } => write!(
                f,
                "shape mismatch in {op}: left is {}x{}, right is {}x{}",
                left.0, left.1, right.0, right.1
            ),
            LinalgError::NotSquare { shape } => {
                write!(f, "matrix must be square, got {}x{}", shape.0, shape.1)
            }
            LinalgError::Singular => write!(f, "matrix is singular"),
            LinalgError::NotPositiveDefinite { pivot } => write!(
                f,
                "matrix is not positive definite (failed at pivot {pivot})"
            ),
            LinalgError::Underdetermined { rows, cols } => write!(
                f,
                "least-squares system is under-determined: {rows} equations, {cols} unknowns"
            ),
            LinalgError::EmptyDimension => write!(f, "dimension must be positive"),
            LinalgError::NonFinite => write!(f, "input contains a non-finite value"),
        }
    }
}

impl Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errors = [
            LinalgError::ShapeMismatch {
                left: (2, 3),
                right: (4, 5),
                op: "mul",
            },
            LinalgError::NotSquare { shape: (2, 3) },
            LinalgError::Singular,
            LinalgError::NotPositiveDefinite { pivot: 1 },
            LinalgError::Underdetermined { rows: 2, cols: 3 },
            LinalgError::EmptyDimension,
            LinalgError::NonFinite,
        ];
        for e in errors {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
            assert!(!s.ends_with('.'));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LinalgError>();
    }
}
