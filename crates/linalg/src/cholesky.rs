use crate::{LinalgError, Matrix, Vector};

/// Cholesky factorization `A = L·Lᵀ` of a symmetric positive-definite
/// matrix.
///
/// This is the fast path for the normal equations of ordinary least squares
/// (`AᵀA x = Aᵀb`, paper eq. 4-12) and for applying the inverse covariance
/// in general least squares (`M⁻¹`, paper eq. 4-21): the covariance Ψ of
/// eq. 4-26 is proven positive definite by the paper's Theorem 4.2, so
/// Cholesky always applies there.
///
/// # Example
///
/// ```
/// use gps_linalg::{Cholesky, Matrix, Vector};
///
/// # fn main() -> Result<(), gps_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]])?;
/// let chol = Cholesky::new(&a)?;
/// let x = chol.solve(&Vector::from_slice(&[6.0, 5.0]))?;
/// assert!((x[0] - 1.0).abs() < 1e-12);
/// assert!((x[1] - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Cholesky {
    /// Lower-triangular factor; entries above the diagonal are zero.
    l: Matrix,
}

impl Cholesky {
    /// Factors a symmetric positive-definite matrix.
    ///
    /// Only the lower triangle of `a` is read; the strict upper triangle is
    /// assumed to mirror it.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::NotSquare`] if `a` is not square.
    /// * [`LinalgError::EmptyDimension`] if `a` is 0×0.
    /// * [`LinalgError::NonFinite`] if `a` contains NaN/∞.
    /// * [`LinalgError::NotPositiveDefinite`] if a pivot is non-positive.
    pub fn new(a: &Matrix) -> crate::Result<Self> {
        let mut l = a.clone();
        Cholesky::factor_in_place(&mut l)?;
        Ok(Cholesky { l })
    }

    /// Factors a symmetric positive-definite matrix **in place**: on
    /// success `a` holds the lower-triangular factor `L` (strict upper
    /// triangle zeroed).
    ///
    /// This is the allocation-free core of [`Cholesky::new`], exposed for
    /// callers that keep a reusable scratch matrix across solves (the
    /// `lstsq::*_into` entry points). Only the lower triangle of the input
    /// is read. On error the contents of `a` are unspecified.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Cholesky::new`].
    // lint: no_alloc
    pub fn factor_in_place(a: &mut Matrix) -> crate::Result<()> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare { shape: a.shape() });
        }
        let n = a.rows();
        if n == 0 {
            return Err(LinalgError::EmptyDimension);
        }
        if !a.is_finite() {
            return Err(LinalgError::NonFinite);
        }
        for j in 0..n {
            // Diagonal entry. Columns k < j of rows ≥ j already hold L.
            let mut d = a[(j, j)];
            for k in 0..j {
                let v = a[(j, k)];
                d -= v * v;
            }
            if d <= 0.0 || !d.is_finite() {
                return Err(LinalgError::NotPositiveDefinite { pivot: j });
            }
            let dsqrt = d.sqrt();
            a[(j, j)] = dsqrt;
            // Below-diagonal entries of column j.
            for i in (j + 1)..n {
                let mut s = a[(i, j)];
                for k in 0..j {
                    s -= a[(i, k)] * a[(j, k)];
                }
                a[(i, j)] = s / dsqrt;
            }
            // Zero the strict upper triangle of row j so the result is a
            // genuine lower-triangular factor.
            for c in (j + 1)..n {
                a[(j, c)] = 0.0;
            }
        }
        Ok(())
    }

    /// Forward-substitutes `L y = x` in place, overwriting `x` with `y`,
    /// for a lower-triangular factor `l` (as produced by
    /// [`Cholesky::factor_in_place`]).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `x.len() != l.rows()`.
    // lint: no_alloc
    pub fn forward_substitute(l: &Matrix, x: &mut [f64]) -> crate::Result<()> {
        let n = l.rows();
        if x.len() != n {
            return Err(LinalgError::ShapeMismatch {
                left: (n, n),
                right: (x.len(), 1),
                op: "cholesky forward_substitute",
            });
        }
        for i in 0..n {
            let row = l.row(i);
            let mut s = x[i];
            for (j, xv) in x[..i].iter().enumerate() {
                s -= row[j] * xv;
            }
            x[i] = s / row[i];
        }
        Ok(())
    }

    /// Back-substitutes `Lᵀ x = y` in place, overwriting `y` with `x`.
    ///
    /// Combined with [`Cholesky::forward_substitute`] this solves
    /// `L Lᵀ x = b` without allocating.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `x.len() != l.rows()`.
    // lint: no_alloc
    pub fn back_substitute(l: &Matrix, x: &mut [f64]) -> crate::Result<()> {
        let n = l.rows();
        if x.len() != n {
            return Err(LinalgError::ShapeMismatch {
                left: (n, n),
                right: (x.len(), 1),
                op: "cholesky back_substitute",
            });
        }
        for i in (0..n).rev() {
            let mut s = x[i];
            for j in (i + 1)..n {
                s -= l[(j, i)] * x[j];
            }
            x[i] = s / l[(i, i)];
        }
        Ok(())
    }

    /// Forward-substitutes `L Y = X` in place across every column of `x`
    /// (the whitening transform `X ← L⁻¹ X` used by generalized least
    /// squares), for a lower-triangular factor `l`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `x.rows() != l.rows()`.
    // lint: no_alloc
    pub fn forward_substitute_matrix(l: &Matrix, x: &mut Matrix) -> crate::Result<()> {
        let n = l.rows();
        if x.rows() != n {
            return Err(LinalgError::ShapeMismatch {
                left: (n, n),
                right: x.shape(),
                op: "cholesky forward_substitute_matrix",
            });
        }
        let cols = x.cols();
        for i in 0..n {
            for j in 0..i {
                let lij = l[(i, j)];
                for c in 0..cols {
                    let v = x[(j, c)];
                    x[(i, c)] -= lij * v;
                }
            }
            let d = l[(i, i)];
            for c in 0..cols {
                x[(i, c)] /= d;
            }
        }
        Ok(())
    }

    /// Dimension of the factored matrix.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// Borrows the lower-triangular factor `L`.
    #[must_use]
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Solves `A x = b` via forward then backward substitution.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `b.len() != self.dim()`.
    pub fn solve(&self, b: &Vector) -> crate::Result<Vector> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                left: (n, n),
                right: (b.len(), 1),
                op: "cholesky solve",
            });
        }
        // Forward: L y = b.
        let mut y = b.clone();
        for i in 0..n {
            let mut s = y[i];
            for j in 0..i {
                s -= self.l[(i, j)] * y[j];
            }
            y[i] = s / self.l[(i, i)];
        }
        // Backward: Lᵀ x = y.
        let mut x = y;
        for i in (0..n).rev() {
            let mut s = x[i];
            for j in (i + 1)..n {
                s -= self.l[(j, i)] * x[j];
            }
            x[i] = s / self.l[(i, i)];
        }
        Ok(x)
    }

    /// Solves `A X = B` column by column.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `b.rows() != self.dim()`.
    pub fn solve_matrix(&self, b: &Matrix) -> crate::Result<Matrix> {
        let n = self.dim();
        if b.rows() != n {
            return Err(LinalgError::ShapeMismatch {
                left: (n, n),
                right: b.shape(),
                op: "cholesky solve_matrix",
            });
        }
        let mut out = Matrix::zeros(n, b.cols());
        for c in 0..b.cols() {
            let x = self.solve(&b.col(c))?;
            for r in 0..n {
                out[(r, c)] = x[r];
            }
        }
        Ok(out)
    }

    /// Computes `A⁻¹`.
    ///
    /// # Errors
    ///
    /// Propagates errors from [`Cholesky::solve_matrix`]; cannot fail in
    /// practice for a successfully constructed factorization.
    pub fn inverse(&self) -> crate::Result<Matrix> {
        self.solve_matrix(&Matrix::identity(self.dim()))
    }

    /// Solves the triangular system `L y = b` only (a *whitening*
    /// half-solve).
    ///
    /// If `M = L Lᵀ` is an error covariance, `L⁻¹ A` and `L⁻¹ b` transform a
    /// generalized least-squares problem into an ordinary one — the standard
    /// reduction used by [`crate::lstsq::gls`].
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `b.len() != self.dim()`.
    pub fn solve_lower(&self, b: &Vector) -> crate::Result<Vector> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                left: (n, n),
                right: (b.len(), 1),
                op: "cholesky solve_lower",
            });
        }
        let mut y = b.clone();
        for i in 0..n {
            let mut s = y[i];
            for j in 0..i {
                s -= self.l[(i, j)] * y[j];
            }
            y[i] = s / self.l[(i, i)];
        }
        Ok(y)
    }

    /// Applies `L⁻¹` to every column of `b` (matrix version of
    /// [`Cholesky::solve_lower`]).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `b.rows() != self.dim()`.
    pub fn solve_lower_matrix(&self, b: &Matrix) -> crate::Result<Matrix> {
        let n = self.dim();
        if b.rows() != n {
            return Err(LinalgError::ShapeMismatch {
                left: (n, n),
                right: b.shape(),
                op: "cholesky solve_lower_matrix",
            });
        }
        let mut out = Matrix::zeros(n, b.cols());
        for c in 0..b.cols() {
            let y = self.solve_lower(&b.col(c))?;
            for r in 0..n {
                out[(r, c)] = y[r];
            }
        }
        Ok(out)
    }

    /// Log-determinant of `A` (`2 · Σ log L[i][i]`), numerically stable for
    /// large dimensions.
    #[must_use]
    pub fn log_determinant(&self) -> f64 {
        (0..self.dim()).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Matrix {
        // A = Bᵀ B + I is SPD for any B.
        let b = Matrix::from_rows(&[&[1.0, 2.0, 0.5], &[0.0, 1.0, 2.0], &[3.0, 0.0, 1.0]]).unwrap();
        &b.gram() + &Matrix::identity(3)
    }

    #[test]
    fn reconstruction() {
        let a = spd3();
        let chol = Cholesky::new(&a).unwrap();
        let l = chol.l();
        let reconstructed = l.matmul(&l.transpose()).unwrap();
        assert!((&reconstructed - &a).norm_max() < 1e-10);
    }

    #[test]
    fn factor_is_lower_triangular() {
        let chol = Cholesky::new(&spd3()).unwrap();
        let l = chol.l();
        for r in 0..3 {
            for c in (r + 1)..3 {
                assert_eq!(l[(r, c)], 0.0);
            }
        }
    }

    #[test]
    fn solve_matches_lu() {
        let a = spd3();
        let b = Vector::from_slice(&[1.0, 2.0, 3.0]);
        let x_chol = Cholesky::new(&a).unwrap().solve(&b).unwrap();
        let x_lu = crate::LuDecomposition::new(&a).unwrap().solve(&b).unwrap();
        assert!((&x_chol - &x_lu).norm_inf() < 1e-10);
    }

    #[test]
    fn rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]).unwrap(); // eigenvalues 3, -1
        assert!(matches!(
            Cholesky::new(&a).unwrap_err(),
            LinalgError::NotPositiveDefinite { .. }
        ));
    }

    #[test]
    fn rejects_bad_shapes() {
        assert!(matches!(
            Cholesky::new(&Matrix::zeros(2, 3)).unwrap_err(),
            LinalgError::NotSquare { .. }
        ));
        assert_eq!(
            Cholesky::new(&Matrix::zeros(0, 0)).unwrap_err(),
            LinalgError::EmptyDimension
        );
        let mut m = Matrix::identity(2);
        m[(1, 1)] = f64::INFINITY;
        assert_eq!(Cholesky::new(&m).unwrap_err(), LinalgError::NonFinite);
    }

    #[test]
    fn inverse_round_trip() {
        let a = spd3();
        let inv = Cholesky::new(&a).unwrap().inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        assert!((&prod - &Matrix::identity(3)).norm_max() < 1e-10);
    }

    #[test]
    fn whitening_half_solve() {
        let a = spd3();
        let chol = Cholesky::new(&a).unwrap();
        let b = Vector::from_slice(&[1.0, -1.0, 0.5]);
        let y = chol.solve_lower(&b).unwrap();
        // L y should equal b.
        let ly = chol.l().matvec(&y).unwrap();
        assert!((&ly - &b).norm_inf() < 1e-12);
    }

    #[test]
    fn whitened_gram_is_identity() {
        // L⁻¹ A (L⁻¹)ᵀ = I when A = L Lᵀ.
        let a = spd3();
        let chol = Cholesky::new(&a).unwrap();
        let w = chol.solve_lower_matrix(&a).unwrap(); // L⁻¹ A = Lᵀ
        let lt = chol.l().transpose();
        assert!((&w - &lt).norm_max() < 1e-10);
    }

    #[test]
    fn log_determinant_matches_lu() {
        let a = spd3();
        let chol_ld = Cholesky::new(&a).unwrap().log_determinant();
        let lu_det = crate::LuDecomposition::new(&a).unwrap().determinant();
        assert!((chol_ld - lu_det.ln()).abs() < 1e-10);
    }

    #[test]
    fn solve_shape_mismatch() {
        let chol = Cholesky::new(&Matrix::identity(2)).unwrap();
        assert!(chol.solve(&Vector::zeros(3)).is_err());
        assert!(chol.solve_lower(&Vector::zeros(1)).is_err());
        assert!(chol.solve_matrix(&Matrix::zeros(3, 2)).is_err());
        assert!(chol.solve_lower_matrix(&Matrix::zeros(3, 2)).is_err());
    }
}
