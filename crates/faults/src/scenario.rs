use std::fmt;
use std::str::FromStr;

/// The category of an injected fault, used in [`crate::FaultLog`] entries
/// and telemetry counter names.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultKind {
    /// A satellite silently vanished from the epoch.
    Dropout,
    /// Near-total signal loss: the epoch keeps too few satellites to
    /// solve.
    Blackout,
    /// A constant pseudorange offset on one satellite (clock anomaly,
    /// cycle slip).
    Step,
    /// A slowly growing pseudorange offset on one satellite (slow-drift
    /// fault — the hardest case for snapshot RAIM).
    Ramp,
    /// A common-mode jump on every pseudorange (receiver clock step the
    /// predictor does not know about).
    ClockJump,
    /// A burst of large positive errors on low-elevation satellites
    /// (reflected-path delay).
    Multipath,
    /// A non-finite pseudorange or satellite coordinate (decoder bug,
    /// uninitialized memory).
    Corruption,
    /// The highest-elevation satellite's broadcast position is stale —
    /// it poisons the base equation the direct solvers subtract from all
    /// others.
    StaleBase,
}

impl FaultKind {
    /// Stable lowercase name, used as the telemetry counter suffix
    /// (`faults.injected.<name>`) and in reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Dropout => "dropout",
            FaultKind::Blackout => "blackout",
            FaultKind::Step => "step",
            FaultKind::Ramp => "ramp",
            FaultKind::ClockJump => "clock-jump",
            FaultKind::Multipath => "multipath",
            FaultKind::Corruption => "corrupt",
            FaultKind::StaleBase => "stale-base",
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One configured failure mode within a [`crate::FaultPlan`].
///
/// Window-style scenarios (`Step`, `Ramp`, `Blackout`, `StaleBase`)
/// position themselves by *fraction of the run* (`start_frac` ∈ [0, 1]),
/// so the same scenario scales from a 40-epoch test to a paper-scale day
/// without re-tuning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultScenario {
    /// Each satellite independently vanishes from an epoch with
    /// probability `probability`.
    Dropout {
        /// Per-satellite, per-epoch dropout probability.
        probability: f64,
    },
    /// For `epochs` epochs starting at `start_frac` of the run, only the
    /// `keep` highest-elevation satellites survive (keep < 4 makes the
    /// epoch unsolvable — the holdover test case).
    Blackout {
        /// Window start as a fraction of the run.
        start_frac: f64,
        /// Window length, epochs.
        epochs: usize,
        /// Satellites that keep tracking through the blackout.
        keep: usize,
    },
    /// A constant `magnitude_m` pseudorange offset on one satellite for
    /// `epochs` epochs starting at `start_frac` of the run.
    Step {
        /// Offset magnitude, metres.
        magnitude_m: f64,
        /// Window start as a fraction of the run.
        start_frac: f64,
        /// Window length, epochs.
        epochs: usize,
    },
    /// A pseudorange offset growing at `slope_m_per_s` on one satellite
    /// for `epochs` epochs starting at `start_frac` of the run.
    Ramp {
        /// Drift rate, metres per second.
        slope_m_per_s: f64,
        /// Window start as a fraction of the run.
        start_frac: f64,
        /// Window length, epochs.
        epochs: usize,
    },
    /// From `at_frac` of the run onward, every pseudorange carries an
    /// extra `magnitude_m` (an unflagged receiver clock step).
    ClockJump {
        /// Common-mode offset, metres (90 m ≈ 300 ns of clock).
        magnitude_m: f64,
        /// Jump instant as a fraction of the run.
        at_frac: f64,
    },
    /// Satellites below `max_elevation_rad` take an extra positive delay
    /// `|N(0, sigma_m²)|` with probability `probability` per epoch.
    Multipath {
        /// Burst standard deviation, metres.
        sigma_m: f64,
        /// Per-satellite, per-epoch burst probability.
        probability: f64,
        /// Only satellites below this elevation (radians) are affected.
        max_elevation_rad: f64,
    },
    /// With probability `probability` per epoch, one satellite's
    /// pseudorange becomes NaN or a position coordinate becomes ∞.
    Corruption {
        /// Per-epoch corruption probability.
        probability: f64,
    },
    /// For `epochs` epochs starting at `start_frac`, the
    /// highest-elevation satellite's reported position is held
    /// `staleness_s` seconds in the past (the measured pseudorange keeps
    /// moving, the coordinates do not).
    StaleBase {
        /// How old the stale position is, seconds.
        staleness_s: f64,
        /// Window start as a fraction of the run.
        start_frac: f64,
        /// Window length, epochs.
        epochs: usize,
    },
}

impl FaultScenario {
    /// Default dropout: 35 % per satellite per epoch — a deep urban-canyon
    /// fade. Aggressive enough that a 10-satellite sky routinely thins
    /// to the 4–5 range where RAIM loses its redundancy margin, which is
    /// the regime the degradation ladder exists for.
    #[must_use]
    pub fn dropout() -> Self {
        FaultScenario::Dropout { probability: 0.35 }
    }

    /// Default blackout: 9 epochs starting at 55 % of the run, 2
    /// satellites kept (unsolvable — forces holdover and, once holdover
    /// is exhausted, outages).
    #[must_use]
    pub fn blackout() -> Self {
        FaultScenario::Blackout {
            start_frac: 0.55,
            epochs: 9,
            keep: 2,
        }
    }

    /// Default step: +150 m for 15 epochs starting at 25 % of the run.
    #[must_use]
    pub fn step() -> Self {
        FaultScenario::Step {
            magnitude_m: 150.0,
            start_frac: 0.25,
            epochs: 15,
        }
    }

    /// Default ramp: 2.5 m/s for 30 epochs starting at 60 % of the run.
    #[must_use]
    pub fn ramp() -> Self {
        FaultScenario::Ramp {
            slope_m_per_s: 2.5,
            start_frac: 0.6,
            epochs: 30,
        }
    }

    /// Default clock jump: +90 m (≈ 300 ns) at 40 % of the run.
    #[must_use]
    pub fn clock_jump() -> Self {
        FaultScenario::ClockJump {
            magnitude_m: 90.0,
            at_frac: 0.4,
        }
    }

    /// Default multipath: σ = 15 m bursts, 20 % probability, below 30°.
    #[must_use]
    pub fn multipath() -> Self {
        FaultScenario::Multipath {
            sigma_m: 15.0,
            probability: 0.2,
            max_elevation_rad: 30.0_f64.to_radians(),
        }
    }

    /// Default corruption: 5 % of epochs get one NaN/∞ observation.
    #[must_use]
    pub fn corruption() -> Self {
        FaultScenario::Corruption { probability: 0.05 }
    }

    /// Default stale base: position 60 s old for 10 epochs starting at
    /// 75 % of the run.
    #[must_use]
    pub fn stale_base() -> Self {
        FaultScenario::StaleBase {
            staleness_s: 60.0,
            start_frac: 0.75,
            epochs: 10,
        }
    }

    /// The category this scenario injects.
    #[must_use]
    pub fn kind(&self) -> FaultKind {
        match self {
            FaultScenario::Dropout { .. } => FaultKind::Dropout,
            FaultScenario::Blackout { .. } => FaultKind::Blackout,
            FaultScenario::Step { .. } => FaultKind::Step,
            FaultScenario::Ramp { .. } => FaultKind::Ramp,
            FaultScenario::ClockJump { .. } => FaultKind::ClockJump,
            FaultScenario::Multipath { .. } => FaultKind::Multipath,
            FaultScenario::Corruption { .. } => FaultKind::Corruption,
            FaultScenario::StaleBase { .. } => FaultKind::StaleBase,
        }
    }
}

impl FromStr for FaultScenario {
    type Err = String;

    /// Parses a scenario *name* into its default-parameter form. Accepted
    /// names are the [`FaultKind::name`] strings (hyphens optional).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().replace('-', "").as_str() {
            "dropout" => Ok(FaultScenario::dropout()),
            "blackout" => Ok(FaultScenario::blackout()),
            "step" => Ok(FaultScenario::step()),
            "ramp" => Ok(FaultScenario::ramp()),
            "clockjump" => Ok(FaultScenario::clock_jump()),
            "multipath" => Ok(FaultScenario::multipath()),
            "corrupt" | "corruption" => Ok(FaultScenario::corruption()),
            "stalebase" => Ok(FaultScenario::stale_base()),
            other => Err(format!(
                "unknown fault scenario `{other}` \
                 (dropout|blackout|step|ramp|clock-jump|multipath|corrupt|stale-base)"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip_through_parsing() {
        for kind in [
            FaultKind::Dropout,
            FaultKind::Blackout,
            FaultKind::Step,
            FaultKind::Ramp,
            FaultKind::ClockJump,
            FaultKind::Multipath,
            FaultKind::Corruption,
            FaultKind::StaleBase,
        ] {
            let scenario: FaultScenario = kind.name().parse().unwrap();
            assert_eq!(scenario.kind(), kind, "{kind}");
        }
    }

    #[test]
    fn parsing_is_case_and_hyphen_insensitive() {
        assert_eq!(
            "Clock-Jump".parse::<FaultScenario>().unwrap().kind(),
            FaultKind::ClockJump
        );
        assert_eq!(
            " STALEBASE ".parse::<FaultScenario>().unwrap().kind(),
            FaultKind::StaleBase
        );
    }

    #[test]
    fn unknown_scenario_is_an_error() {
        let err = "meteor".parse::<FaultScenario>().unwrap_err();
        assert!(err.contains("meteor"));
        assert!(err.contains("dropout"));
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(FaultKind::ClockJump.to_string(), "clock-jump");
        assert_eq!(FaultKind::StaleBase.to_string(), "stale-base");
    }
}
