//! Seeded runtime fault plans for the service chaos campaign.
//!
//! [`FaultPlan`](crate::FaultPlan) perturbs *signals* — pseudoranges,
//! satellite visibility, receiver clocks. A [`RuntimeFaultPlan`]
//! perturbs the *runtime* the service runs on: worker panics, worker
//! kills, stall (sleep) injection into shard jobs, ingest burst
//! overload, and a SIGKILL-style journal truncation. The chaos
//! campaign layers both, because the paper's availability claim only
//! holds in production if the solver ladder's graceful degradation
//! survives an ungraceful runtime.
//!
//! The same two properties as the signal plans:
//!
//! 1. **Determinism** — [`RuntimeFaultPlan::schedule`] resolves the
//!    plan against a round count and shard count with a private RNG
//!    seeded from the plan seed, so a chaos run is reproducible
//!    fault-for-fault.
//! 2. **Ground truth** — every injection the campaign performs is
//!    counted under `faults.runtime.<kind>` (via
//!    [`emit_runtime_injection`]), so the report can state exactly
//!    what the service survived.

use std::str::FromStr;
use std::sync::OnceLock;

use gps_rng::{rngs::StdRng, Rng, SeedableRng};
use gps_telemetry::{Counter, Event, Level};

/// One class of runtime fault. Fractions are positions in the run
/// (0 = first round, 1 = last), mirroring the signal scenarios'
/// `start_frac` convention.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RuntimeFault {
    /// Panic `per_round` shard jobs in each round of the window.
    PanicStorm {
        /// Window start as a fraction of the run.
        start_frac: f64,
        /// Window length, rounds.
        rounds: usize,
        /// Shard jobs panicked per in-window round.
        per_round: usize,
    },
    /// Make `workers` pool workers exit at one point in the run
    /// (supervised pools respawn them; that is the point).
    WorkerKill {
        /// Kill position as a fraction of the run.
        at_frac: f64,
        /// Workers to kill.
        workers: usize,
    },
    /// Sleep-inject shard jobs for a window, driving epochs into
    /// their deadline budget.
    StallInjection {
        /// Window start as a fraction of the run.
        start_frac: f64,
        /// Window length, rounds.
        rounds: usize,
        /// Injected sleep per stalled shard job, milliseconds.
        stall_ms: u64,
    },
    /// Multiply ingest volume for a window, driving the bounded
    /// queues into shedding.
    BurstOverload {
        /// Window start as a fraction of the run.
        start_frac: f64,
        /// Window length, rounds.
        rounds: usize,
        /// Ingest multiplier during the window (≥ 1).
        multiplier: usize,
    },
    /// Chop this many bytes off the journal tail after the run — a
    /// SIGKILL mid-append, which replay must absorb as a torn write.
    JournalTruncation {
        /// Bytes to cut from the end of the journal file.
        cut_bytes: u64,
    },
}

/// Stable kind labels for telemetry and reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuntimeFaultKind {
    /// Shard-job panic.
    PanicStorm,
    /// Worker exit.
    WorkerKill,
    /// Shard-job sleep injection.
    StallInjection,
    /// Ingest burst.
    BurstOverload,
    /// Journal tail truncation.
    JournalTruncation,
}

impl RuntimeFaultKind {
    /// Lowercase snake-case label (telemetry suffix, report key).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            RuntimeFaultKind::PanicStorm => "panic_storm",
            RuntimeFaultKind::WorkerKill => "worker_kill",
            RuntimeFaultKind::StallInjection => "stall",
            RuntimeFaultKind::BurstOverload => "burst",
            RuntimeFaultKind::JournalTruncation => "journal_truncation",
        }
    }
}

impl RuntimeFault {
    /// Default-parameter fault for a kind name (the `from_spec`
    /// vocabulary): `panic_storm`, `worker_kill`, `stall`, `burst`,
    /// `journal_truncation`.
    fn from_name(name: &str) -> Result<Self, String> {
        match name.trim() {
            "panic_storm" => Ok(RuntimeFault::PanicStorm {
                start_frac: 0.25,
                rounds: 4,
                per_round: 1,
            }),
            "worker_kill" => Ok(RuntimeFault::WorkerKill {
                at_frac: 0.4,
                workers: 2,
            }),
            "stall" => Ok(RuntimeFault::StallInjection {
                start_frac: 0.55,
                rounds: 3,
                stall_ms: 20,
            }),
            "burst" => Ok(RuntimeFault::BurstOverload {
                start_frac: 0.7,
                rounds: 4,
                multiplier: 4,
            }),
            "journal_truncation" => Ok(RuntimeFault::JournalTruncation { cut_bytes: 37 }),
            other => Err(format!(
                "unknown runtime fault '{other}' (expected panic_storm, worker_kill, stall, burst, journal_truncation)"
            )),
        }
    }

    /// The fault's kind label.
    #[must_use]
    pub fn kind(&self) -> RuntimeFaultKind {
        match self {
            RuntimeFault::PanicStorm { .. } => RuntimeFaultKind::PanicStorm,
            RuntimeFault::WorkerKill { .. } => RuntimeFaultKind::WorkerKill,
            RuntimeFault::StallInjection { .. } => RuntimeFaultKind::StallInjection,
            RuntimeFault::BurstOverload { .. } => RuntimeFaultKind::BurstOverload,
            RuntimeFault::JournalTruncation { .. } => RuntimeFaultKind::JournalTruncation,
        }
    }
}

impl FromStr for RuntimeFault {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        RuntimeFault::from_name(s)
    }
}

/// A seeded set of runtime faults, resolved against a concrete run
/// shape by [`RuntimeFaultPlan::schedule`].
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeFaultPlan {
    seed: u64,
    faults: Vec<RuntimeFault>,
}

impl RuntimeFaultPlan {
    /// Creates an empty plan with the given RNG seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        RuntimeFaultPlan {
            seed,
            faults: Vec::new(),
        }
    }

    /// Adds a fault (builder style).
    #[must_use]
    pub fn with(mut self, fault: RuntimeFault) -> Self {
        self.faults.push(fault);
        self
    }

    /// Parses a comma-separated fault list (e.g. `"panic_storm,burst"`)
    /// into a plan of default-parameter faults.
    ///
    /// # Errors
    ///
    /// Returns a description of the first unknown fault name, or of an
    /// empty specification.
    pub fn from_spec(seed: u64, spec: &str) -> Result<Self, String> {
        let mut plan = RuntimeFaultPlan::new(seed);
        for name in spec.split(',').filter(|s| !s.trim().is_empty()) {
            plan.faults.push(RuntimeFault::from_name(name)?);
        }
        if plan.faults.is_empty() {
            return Err("runtime fault specification selects no faults".to_owned());
        }
        Ok(plan)
    }

    /// The default chaos mix the `experiment chaos` campaign runs:
    /// a worker-panic storm, a worker kill, stall injection, burst
    /// overload, and a journal truncation — ISSUE 7's acceptance
    /// scenario.
    #[must_use]
    pub fn default_chaos(seed: u64) -> Self {
        RuntimeFaultPlan::new(seed)
            .with(RuntimeFault::PanicStorm {
                start_frac: 0.25,
                rounds: 4,
                per_round: 1,
            })
            .with(RuntimeFault::WorkerKill {
                at_frac: 0.4,
                workers: 2,
            })
            .with(RuntimeFault::StallInjection {
                start_frac: 0.55,
                rounds: 3,
                stall_ms: 20,
            })
            .with(RuntimeFault::BurstOverload {
                start_frac: 0.7,
                rounds: 4,
                multiplier: 4,
            })
            .with(RuntimeFault::JournalTruncation { cut_bytes: 37 })
    }

    /// The faults in application order.
    #[must_use]
    pub fn faults(&self) -> &[RuntimeFault] {
        &self.faults
    }

    /// The plan's seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Resolves the plan against a run of `rounds` rounds over
    /// `shards` shards into a concrete per-round schedule. Seeded and
    /// deterministic: the same plan and run shape always produce the
    /// same schedule (shard victims included).
    #[must_use]
    pub fn schedule(&self, rounds: usize, shards: usize) -> RuntimeSchedule {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let shards = shards.max(1);
        let mut per_round = vec![RoundFaults::default(); rounds];
        let mut journal_cut_bytes = None;
        let resolve = |frac: f64| -> usize {
            ((frac.clamp(0.0, 1.0) * rounds as f64) as usize).min(rounds.saturating_sub(1))
        };
        for fault in &self.faults {
            match *fault {
                RuntimeFault::PanicStorm {
                    start_frac,
                    rounds: len,
                    per_round: storm,
                } => {
                    let start = resolve(start_frac);
                    for round in start..(start + len).min(rounds) {
                        let Some(entry) = per_round.get_mut(round) else {
                            continue;
                        };
                        for _ in 0..storm {
                            let shard = rng.gen_range(0..shards);
                            if !entry.panic_shards.contains(&shard) {
                                entry.panic_shards.push(shard);
                            }
                        }
                    }
                }
                RuntimeFault::WorkerKill { at_frac, workers } => {
                    let round = resolve(at_frac);
                    if let Some(entry) = per_round.get_mut(round) {
                        entry.worker_kills += workers;
                    }
                }
                RuntimeFault::StallInjection {
                    start_frac,
                    rounds: len,
                    stall_ms,
                } => {
                    let start = resolve(start_frac);
                    for round in start..(start + len).min(rounds) {
                        let Some(entry) = per_round.get_mut(round) else {
                            continue;
                        };
                        let shard = rng.gen_range(0..shards);
                        entry.stalls.push((shard, stall_ms));
                    }
                }
                RuntimeFault::BurstOverload {
                    start_frac,
                    rounds: len,
                    multiplier,
                } => {
                    let start = resolve(start_frac);
                    for round in start..(start + len).min(rounds) {
                        if let Some(entry) = per_round.get_mut(round) {
                            entry.ingest_multiplier = entry.ingest_multiplier.max(multiplier);
                        }
                    }
                }
                RuntimeFault::JournalTruncation { cut_bytes } => {
                    journal_cut_bytes = Some(cut_bytes);
                }
            }
        }
        RuntimeSchedule {
            per_round,
            journal_cut_bytes,
        }
    }
}

/// The faults to inject in one round.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RoundFaults {
    /// Shards whose job should panic this round.
    pub panic_shards: Vec<usize>,
    /// Pool workers to make exit before this round.
    pub worker_kills: usize,
    /// `(shard, stall_ms)` sleep injections for this round.
    pub stalls: Vec<(usize, u64)>,
    /// Ingest multiplier for this round (1 = nominal).
    pub ingest_multiplier: usize,
}

impl RoundFaults {
    /// Whether this round injects anything (a multiplier of 0 or 1 is
    /// nominal ingest).
    #[must_use]
    pub fn is_quiet(&self) -> bool {
        self.panic_shards.is_empty()
            && self.worker_kills == 0
            && self.stalls.is_empty()
            && self.ingest_multiplier <= 1
    }
}

/// A resolved chaos schedule: what to inject in each round, plus the
/// post-run journal cut.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuntimeSchedule {
    /// Per-round injections, indexed by 0-based round.
    pub per_round: Vec<RoundFaults>,
    /// Bytes to chop off the journal after the run, if any.
    pub journal_cut_bytes: Option<u64>,
}

impl RuntimeSchedule {
    /// The injections for a 0-based round (quiet default past the
    /// end).
    #[must_use]
    pub fn round(&self, round: usize) -> RoundFaults {
        self.per_round.get(round).cloned().unwrap_or_default()
    }

    /// Total injections across the schedule (journal cut included).
    #[must_use]
    pub fn total_injections(&self) -> usize {
        self.per_round
            .iter()
            .map(|r| {
                r.panic_shards.len()
                    + r.worker_kills
                    + r.stalls.len()
                    + usize::from(r.ingest_multiplier > 1)
            })
            .sum::<usize>()
            + usize::from(self.journal_cut_bytes.is_some())
    }
}

/// Cached telemetry counters, one per runtime fault kind (hot loop:
/// one registry lookup per process).
fn runtime_counter(kind: RuntimeFaultKind) -> Option<&'static Counter> {
    static HANDLES: OnceLock<Vec<(RuntimeFaultKind, Counter)>> = OnceLock::new();
    let all = HANDLES.get_or_init(|| {
        [
            RuntimeFaultKind::PanicStorm,
            RuntimeFaultKind::WorkerKill,
            RuntimeFaultKind::StallInjection,
            RuntimeFaultKind::BurstOverload,
            RuntimeFaultKind::JournalTruncation,
        ]
        .into_iter()
        .map(|k| {
            (
                k,
                gps_telemetry::counter(&format!("faults.runtime.{}", k.name())),
            )
        })
        .collect()
    });
    // The list is complete by construction above, so this always hits.
    all.iter().find(|(k, _)| *k == kind).map(|(_, c)| c)
}

/// Records one performed runtime injection: bumps the
/// `faults.runtime.<kind>` counter and (at debug) emits an event.
/// Call this when the campaign *acts*, not when it schedules.
pub fn emit_runtime_injection(kind: RuntimeFaultKind, round: u64, detail: f64) {
    if let Some(counter) = runtime_counter(kind) {
        counter.inc();
    }
    if gps_telemetry::enabled(Level::Debug) {
        Event::new(Level::Debug, "faults.runtime", kind.name())
            .with("round", round)
            .with("detail", detail)
            .emit();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_chaos_covers_every_kind() {
        let plan = RuntimeFaultPlan::default_chaos(42);
        let kinds: Vec<RuntimeFaultKind> = plan.faults().iter().map(RuntimeFault::kind).collect();
        assert!(kinds.contains(&RuntimeFaultKind::PanicStorm));
        assert!(kinds.contains(&RuntimeFaultKind::WorkerKill));
        assert!(kinds.contains(&RuntimeFaultKind::StallInjection));
        assert!(kinds.contains(&RuntimeFaultKind::BurstOverload));
        assert!(kinds.contains(&RuntimeFaultKind::JournalTruncation));
    }

    #[test]
    fn schedule_is_deterministic_per_seed() {
        let a = RuntimeFaultPlan::default_chaos(7).schedule(40, 4);
        let b = RuntimeFaultPlan::default_chaos(7).schedule(40, 4);
        assert_eq!(a, b);
        let c = RuntimeFaultPlan::default_chaos(8).schedule(40, 4);
        // Different seeds move the shard victims (vanishingly unlikely
        // to coincide across the whole schedule).
        assert!(a != c || a.total_injections() == c.total_injections());
    }

    #[test]
    fn schedule_lands_faults_in_their_windows() {
        let plan = RuntimeFaultPlan::new(3)
            .with(RuntimeFault::PanicStorm {
                start_frac: 0.5,
                rounds: 2,
                per_round: 1,
            })
            .with(RuntimeFault::BurstOverload {
                start_frac: 0.0,
                rounds: 3,
                multiplier: 5,
            });
        let schedule = plan.schedule(10, 4);
        assert!(!schedule.round(5).panic_shards.is_empty());
        assert!(!schedule.round(6).panic_shards.is_empty());
        assert!(schedule.round(4).panic_shards.is_empty());
        assert_eq!(schedule.round(0).ingest_multiplier, 5);
        assert_eq!(schedule.round(2).ingest_multiplier, 5);
        assert!(schedule.round(3).ingest_multiplier <= 1);
        assert!(schedule.round(9).is_quiet());
        assert_eq!(schedule.journal_cut_bytes, None);
    }

    #[test]
    fn shard_victims_stay_in_range() {
        let schedule = RuntimeFaultPlan::default_chaos(99).schedule(50, 3);
        for round in &schedule.per_round {
            assert!(round.panic_shards.iter().all(|&s| s < 3));
            assert!(round.stalls.iter().all(|&(s, _)| s < 3));
        }
        assert_eq!(schedule.journal_cut_bytes, Some(37));
    }

    #[test]
    fn from_spec_parses_and_rejects() {
        let plan = RuntimeFaultPlan::from_spec(1, "panic_storm,burst").expect("spec");
        assert_eq!(plan.faults().len(), 2);
        assert!(RuntimeFaultPlan::from_spec(1, "").is_err());
        assert!(RuntimeFaultPlan::from_spec(1, "meteor_strike").is_err());
    }

    #[test]
    fn injections_feed_the_runtime_counters() {
        let counter = gps_telemetry::counter("faults.runtime.worker_kill");
        let before = counter.value();
        emit_runtime_injection(RuntimeFaultKind::WorkerKill, 3, 2.0);
        assert_eq!(counter.value(), before + 1);
    }

    #[test]
    fn empty_run_produces_empty_schedule() {
        let schedule = RuntimeFaultPlan::default_chaos(5).schedule(0, 4);
        assert!(schedule.per_round.is_empty());
        assert!(schedule.round(0).is_quiet());
    }
}
