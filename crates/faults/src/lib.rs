//! Deterministic fault injection for GPS observation streams.
//!
//! The paper's evaluation feeds the solvers well-behaved data: zero-mean
//! errors (eq. 4-14/4-15), a clock-bias prediction that is never stale,
//! and a full complement of satellites every epoch. A deployed receiver
//! enjoys none of that — satellites drop below the mask, a transmitter
//! anomaly steps or ramps a pseudorange, the receiver clock jumps between
//! calibrations, reflections corrupt low-elevation signals, and decoding
//! bugs hand the solver NaN. This crate turns those failure modes into a
//! reproducible test fixture:
//!
//! * [`FaultScenario`] — one configurable failure mode (satellite
//!   dropout, signal blackout, pseudorange step/ramp, receiver clock
//!   jump, multipath burst, NaN/∞ corruption, stale base-satellite
//!   ephemeris);
//! * [`FaultPlan`] — a seeded collection of scenarios applied to a
//!   [`DataSet`] in one deterministic pass, producing the perturbed
//!   dataset plus a [`FaultLog`] recording exactly what was injected
//!   where (the ground truth for missed-detection / false-exclusion
//!   accounting);
//! * telemetry — every injection increments a `faults.injected.<kind>`
//!   counter and (when a sink listens) emits a `faults.inject` event, so
//!   injected faults can be correlated epoch-by-epoch with solver
//!   behavior in the same capture.
//!
//! # Example
//!
//! ```
//! use gps_faults::{FaultPlan, FaultScenario};
//! use gps_obs::{paper_stations, DatasetGenerator};
//!
//! let data = DatasetGenerator::new(7)
//!     .epoch_count(40)
//!     .generate(&paper_stations()[0]);
//! let plan = FaultPlan::new(42)
//!     .with(FaultScenario::dropout())
//!     .with(FaultScenario::ramp());
//! let faulted = plan.apply(&data);
//! assert_eq!(faulted.data.epochs().len(), data.epochs().len());
//! assert!(faulted.log.total_injections() > 0);
//! // Same plan, same input → identical output.
//! assert_eq!(faulted.data, plan.apply(&data).data);
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

mod log;
mod plan;
mod runtime;
mod scenario;

pub use log::{EpochFaults, FaultLog};
pub use plan::{FaultPlan, FaultedDataSet};
pub use runtime::{
    emit_runtime_injection, RoundFaults, RuntimeFault, RuntimeFaultKind, RuntimeFaultPlan,
    RuntimeSchedule,
};
pub use scenario::{FaultKind, FaultScenario};
