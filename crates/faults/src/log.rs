use std::collections::BTreeMap;

use gps_orbits::SatId;

use crate::FaultKind;

/// What was injected into one epoch — the evaluation-side ground truth a
/// fault campaign scores detections against. Never shown to a solver.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct EpochFaults {
    /// Satellites removed from the epoch (dropout + blackout).
    pub dropped: usize,
    /// Common-mode pseudorange offset active this epoch (clock jump),
    /// metres. Zero when no jump has occurred yet.
    pub clock_jump_m: f64,
    /// Per-satellite measurement faults `(satellite, kind, magnitude in
    /// metres)` present in the epoch handed to the solvers. For
    /// [`FaultKind::Corruption`] the magnitude is NaN/∞ by construction.
    pub faulted: Vec<(SatId, FaultKind, f64)>,
}

impl EpochFaults {
    /// `true` if any per-satellite measurement fault is active (dropouts
    /// and the common-mode clock jump are *not* measurement faults — no
    /// individual satellite is inconsistent with the rest).
    #[must_use]
    pub fn has_measurement_fault(&self) -> bool {
        !self.faulted.is_empty()
    }

    /// `true` if `sat` carries an injected measurement fault this epoch.
    #[must_use]
    pub fn is_faulted(&self, sat: SatId) -> bool {
        self.faulted.iter().any(|(s, _, _)| *s == sat)
    }

    /// Largest injected per-satellite magnitude this epoch, metres
    /// (NaN-safe: non-finite corruption counts as infinite).
    #[must_use]
    pub fn max_magnitude_m(&self) -> f64 {
        self.faulted
            .iter()
            .map(|(_, _, m)| {
                if m.is_finite() {
                    m.abs()
                } else {
                    f64::INFINITY
                }
            })
            .fold(0.0, f64::max)
    }
}

/// The complete injection record of one [`crate::FaultPlan::apply`] pass:
/// one [`EpochFaults`] per epoch, in epoch order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultLog {
    epochs: Vec<EpochFaults>,
}

impl FaultLog {
    /// Builds a log from per-epoch records (crate-internal).
    pub(crate) fn new(epochs: Vec<EpochFaults>) -> Self {
        FaultLog { epochs }
    }

    /// Per-epoch records, aligned with the faulted dataset's epochs.
    #[must_use]
    pub fn epochs(&self) -> &[EpochFaults] {
        &self.epochs
    }

    /// Total injections across the run (dropped satellites + per-sat
    /// faults + epochs under an active clock jump).
    #[must_use]
    pub fn total_injections(&self) -> usize {
        self.epochs
            .iter()
            .map(|e| e.dropped + e.faulted.len() + usize::from(e.clock_jump_m != 0.0))
            .sum()
    }

    /// Epochs carrying at least one per-satellite measurement fault.
    #[must_use]
    pub fn epochs_with_measurement_faults(&self) -> usize {
        self.epochs
            .iter()
            .filter(|e| e.has_measurement_fault())
            .count()
    }

    /// Injection counts per fault kind (measurement faults only; use
    /// [`FaultLog::total_injections`] for the overall volume).
    #[must_use]
    pub fn counts_by_kind(&self) -> BTreeMap<FaultKind, usize> {
        let mut counts = BTreeMap::new();
        for epoch in &self.epochs {
            for (_, kind, _) in &epoch.faulted {
                *counts.entry(*kind).or_insert(0) += 1;
            }
            if epoch.dropped > 0 {
                *counts.entry(FaultKind::Dropout).or_insert(0) += epoch.dropped;
            }
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sat(prn: u8) -> SatId {
        SatId::new(prn)
    }

    #[test]
    fn epoch_fault_queries() {
        let e = EpochFaults {
            dropped: 1,
            clock_jump_m: 0.0,
            faulted: vec![
                (sat(3), FaultKind::Step, 150.0),
                (sat(9), FaultKind::Corruption, f64::NAN),
            ],
        };
        assert!(e.has_measurement_fault());
        assert!(e.is_faulted(sat(3)));
        assert!(!e.is_faulted(sat(4)));
        assert_eq!(e.max_magnitude_m(), f64::INFINITY);
    }

    #[test]
    fn log_aggregates() {
        let log = FaultLog::new(vec![
            EpochFaults {
                dropped: 2,
                clock_jump_m: 0.0,
                faulted: vec![(sat(1), FaultKind::Ramp, 12.0)],
            },
            EpochFaults {
                dropped: 0,
                clock_jump_m: 90.0,
                faulted: vec![],
            },
            EpochFaults::default(),
        ]);
        assert_eq!(log.total_injections(), 4);
        assert_eq!(log.epochs_with_measurement_faults(), 1);
        let counts = log.counts_by_kind();
        assert_eq!(counts[&FaultKind::Ramp], 1);
        assert_eq!(counts[&FaultKind::Dropout], 2);
        assert!(!counts.contains_key(&FaultKind::ClockJump));
    }

    #[test]
    fn clean_epoch_has_no_faults() {
        let e = EpochFaults::default();
        assert!(!e.has_measurement_fault());
        assert_eq!(e.max_magnitude_m(), 0.0);
    }
}
