use std::str::FromStr;
use std::sync::OnceLock;

use gps_obs::{DataSet, Epoch, SatObservation};
use gps_rng::{rngs::StdRng, Rng, SeedableRng};
use gps_telemetry::{Counter, Event, Level};

use crate::{EpochFaults, FaultKind, FaultLog, FaultScenario};

/// The output of [`FaultPlan::apply`]: the perturbed dataset plus the
/// injection record to score solver behavior against.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultedDataSet {
    /// The perturbed observation stream (what the solvers see).
    pub data: DataSet,
    /// What was injected where (what the evaluator sees).
    pub log: FaultLog,
}

/// A deterministic, seeded set of fault scenarios applied to an
/// observation stream.
///
/// Two properties make a plan a usable test fixture:
///
/// 1. **Determinism** — `apply` consumes a private RNG seeded from
///    `seed`, so the same plan on the same dataset reproduces the same
///    perturbation bit-for-bit, independent of any other RNG use in the
///    process.
/// 2. **Ground truth** — every injection is recorded in the returned
///    [`FaultLog`], so an integrity pipeline can be scored for missed
///    detections and false exclusions, not just availability.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    scenarios: Vec<FaultScenario>,
}

/// Cached telemetry counters, one per fault kind (hot loop: one registry
/// lookup per process).
fn injected_counter(kind: FaultKind) -> &'static Counter {
    static HANDLES: OnceLock<Vec<(FaultKind, Counter)>> = OnceLock::new();
    let all = HANDLES.get_or_init(|| {
        [
            FaultKind::Dropout,
            FaultKind::Blackout,
            FaultKind::Step,
            FaultKind::Ramp,
            FaultKind::ClockJump,
            FaultKind::Multipath,
            FaultKind::Corruption,
            FaultKind::StaleBase,
        ]
        .into_iter()
        .map(|k| {
            (
                k,
                gps_telemetry::counter(&format!("faults.injected.{}", k.name())),
            )
        })
        .collect()
    });
    // The list is complete by construction above.
    &all.iter()
        .find(|(k, _)| *k == kind)
        .expect("all kinds cached")
        .1
}

fn emit_injection(kind: FaultKind, epoch_index: usize, sat: Option<gps_orbits::SatId>, value: f64) {
    injected_counter(kind).inc();
    if gps_telemetry::enabled(Level::Debug) {
        let mut event = Event::new(Level::Debug, "faults.inject", kind.name())
            .with("epoch", epoch_index)
            .with("magnitude_m", value);
        if let Some(sat) = sat {
            event = event.with("sat", sat.to_string());
        }
        event.emit();
    }
}

/// A window over epoch indices, resolved from a run fraction.
#[derive(Debug, Clone, Copy)]
struct Window {
    start: usize,
    len: usize,
}

impl Window {
    fn resolve(start_frac: f64, len: usize, total: usize) -> Self {
        let start = (start_frac.clamp(0.0, 1.0) * total as f64) as usize;
        Window {
            start: start.min(total.saturating_sub(1)),
            len,
        }
    }

    fn contains(&self, index: usize) -> bool {
        index >= self.start && index - self.start < self.len
    }
}

/// Per-scenario mutable state resolved once per `apply` pass.
#[derive(Debug, Clone, Copy)]
enum ScenarioState {
    /// Target satellite not yet chosen (window scenarios pick the victim
    /// at the first in-window epoch).
    Unresolved,
    /// Target satellite chosen.
    Target(gps_orbits::SatId),
}

impl FaultPlan {
    /// Creates an empty plan with the given RNG seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            scenarios: Vec::new(),
        }
    }

    /// Adds a scenario (builder style).
    #[must_use]
    pub fn with(mut self, scenario: FaultScenario) -> Self {
        self.scenarios.push(scenario);
        self
    }

    /// Parses a comma-separated scenario list (e.g. `"dropout,ramp"`)
    /// into a plan of default-parameter scenarios.
    ///
    /// # Errors
    ///
    /// Returns a description of the first unknown scenario name, or of an
    /// empty specification.
    pub fn from_spec(seed: u64, spec: &str) -> Result<Self, String> {
        let mut plan = FaultPlan::new(seed);
        for name in spec.split(',').filter(|s| !s.trim().is_empty()) {
            plan.scenarios.push(FaultScenario::from_str(name)?);
        }
        if plan.scenarios.is_empty() {
            return Err("fault specification selects no scenarios".to_owned());
        }
        Ok(plan)
    }

    /// The paper-motivated default campaign: seeded dropout plus a
    /// slow-drift ramp plus a blackout window (the scenario mix the
    /// `fault_campaign` experiment runs when none is specified).
    #[must_use]
    pub fn default_campaign(seed: u64) -> Self {
        FaultPlan::new(seed)
            .with(FaultScenario::dropout())
            .with(FaultScenario::ramp())
            .with(FaultScenario::blackout())
    }

    /// The scenarios in application order.
    #[must_use]
    pub fn scenarios(&self) -> &[FaultScenario] {
        &self.scenarios
    }

    /// The plan's seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Applies every scenario to `data` in one deterministic pass,
    /// returning the perturbed dataset and the injection log.
    ///
    /// Scenarios apply in a fixed order per epoch (blackout, dropout,
    /// then per-satellite faults, then the common-mode clock jump), so
    /// combining scenarios is well-defined: a satellite dropped by the
    /// blackout cannot also take a step fault that epoch.
    #[must_use]
    pub fn apply(&self, data: &DataSet) -> FaultedDataSet {
        let total = data.epochs().len();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let windows: Vec<Window> = self
            .scenarios
            .iter()
            .map(|s| match *s {
                FaultScenario::Blackout {
                    start_frac, epochs, ..
                }
                | FaultScenario::Step {
                    start_frac, epochs, ..
                }
                | FaultScenario::Ramp {
                    start_frac, epochs, ..
                }
                | FaultScenario::StaleBase {
                    start_frac, epochs, ..
                } => Window::resolve(start_frac, epochs, total),
                FaultScenario::ClockJump { at_frac, .. } => {
                    Window::resolve(at_frac, usize::MAX, total)
                }
                // Probabilistic scenarios are active everywhere.
                _ => Window {
                    start: 0,
                    len: usize::MAX,
                },
            })
            .collect();
        let mut states = vec![ScenarioState::Unresolved; self.scenarios.len()];

        let mut epochs = Vec::with_capacity(total);
        let mut log = Vec::with_capacity(total);
        for (index, epoch) in data.epochs().iter().enumerate() {
            let mut obs: Vec<SatObservation> = epoch.observations().to_vec();
            let mut record = EpochFaults::default();

            // Pass 1: removals (blackout first — it is the dominant
            // outage — then random dropout over the survivors).
            for (scenario, window) in self.scenarios.iter().zip(&windows) {
                match *scenario {
                    FaultScenario::Blackout { keep, .. } if window.contains(index) => {
                        let removed = obs.len().saturating_sub(keep);
                        obs.truncate(keep); // observations are elevation-sorted
                        record.dropped += removed;
                        for _ in 0..removed {
                            emit_injection(FaultKind::Blackout, index, None, 0.0);
                        }
                    }
                    FaultScenario::Dropout { probability } => {
                        obs.retain(|o| {
                            let drop = rng.gen_bool(probability);
                            if drop {
                                record.dropped += 1;
                                emit_injection(FaultKind::Dropout, index, Some(o.sat), 0.0);
                            }
                            !drop
                        });
                    }
                    _ => {}
                }
            }

            // Pass 2: per-satellite measurement faults on the survivors.
            for ((scenario, window), state) in
                self.scenarios.iter().zip(&windows).zip(states.iter_mut())
            {
                if !window.contains(index) {
                    continue;
                }
                match *scenario {
                    FaultScenario::Step { magnitude_m, .. } => {
                        if let Some(o) = pick_target(&mut rng, &mut *state, &mut obs) {
                            o.pseudorange += magnitude_m;
                            record.faulted.push((o.sat, FaultKind::Step, magnitude_m));
                            emit_injection(FaultKind::Step, index, Some(o.sat), magnitude_m);
                        }
                    }
                    FaultScenario::Ramp { slope_m_per_s, .. } => {
                        let elapsed = elapsed_in_window(data, windows_start(window), index);
                        let magnitude = slope_m_per_s * elapsed;
                        if let Some(o) = pick_target(&mut rng, &mut *state, &mut obs) {
                            o.pseudorange += magnitude;
                            record.faulted.push((o.sat, FaultKind::Ramp, magnitude));
                            emit_injection(FaultKind::Ramp, index, Some(o.sat), magnitude);
                        }
                    }
                    FaultScenario::Multipath {
                        sigma_m,
                        probability,
                        max_elevation_rad,
                    } => {
                        for o in obs.iter_mut() {
                            if o.elevation < max_elevation_rad && rng.gen_bool(probability) {
                                let delay = rng.normal(0.0, sigma_m).abs();
                                o.pseudorange += delay;
                                record.faulted.push((o.sat, FaultKind::Multipath, delay));
                                emit_injection(FaultKind::Multipath, index, Some(o.sat), delay);
                            }
                        }
                    }
                    FaultScenario::Corruption { probability }
                        if !obs.is_empty() && rng.gen_bool(probability) =>
                    {
                        let victim = rng.gen_range(0..obs.len());
                        let o = &mut obs[victim];
                        if rng.gen_bool(0.5) {
                            o.pseudorange = f64::NAN;
                        } else {
                            o.position.z = f64::INFINITY;
                        }
                        record
                            .faulted
                            .push((o.sat, FaultKind::Corruption, f64::NAN));
                        emit_injection(FaultKind::Corruption, index, Some(o.sat), f64::NAN);
                    }
                    FaultScenario::StaleBase { staleness_s, .. } => {
                        if let Some(o) = obs.first_mut() {
                            if let Some(stale) = stale_position(data, index, o.sat, staleness_s) {
                                let shift = stale.distance_to(o.position);
                                o.position = stale;
                                record.faulted.push((o.sat, FaultKind::StaleBase, shift));
                                emit_injection(FaultKind::StaleBase, index, Some(o.sat), shift);
                            }
                        }
                    }
                    _ => {}
                }
            }

            // Pass 3: the common-mode clock jump (applies to everything
            // that survived, including already-faulted measurements).
            for (scenario, window) in self.scenarios.iter().zip(&windows) {
                if let FaultScenario::ClockJump { magnitude_m, .. } = *scenario {
                    if window.contains(index) {
                        for o in obs.iter_mut() {
                            o.pseudorange += magnitude_m;
                        }
                        record.clock_jump_m += magnitude_m;
                        if index == window.start {
                            emit_injection(FaultKind::ClockJump, index, None, magnitude_m);
                        }
                    }
                }
            }

            epochs.push(Epoch::new(epoch.time(), obs, epoch.truth()));
            log.push(record);
        }

        if gps_telemetry::enabled(Level::Info) {
            let log_ref = FaultLog::new(log.clone());
            Event::new(Level::Info, "faults.plan", "plan applied")
                .with("seed", self.seed)
                .with("scenarios", self.scenarios.len())
                .with("epochs", total)
                .with("injections", log_ref.total_injections())
                .emit();
        }
        FaultedDataSet {
            data: DataSet::new(data.station().clone(), epochs),
            log: FaultLog::new(log),
        }
    }
}

/// Start index of a window (helper so the ramp can measure elapsed time).
fn windows_start(window: &Window) -> usize {
    window.start
}

/// Seconds elapsed between the window-start epoch and epoch `index`.
fn elapsed_in_window(data: &DataSet, start: usize, index: usize) -> f64 {
    let epochs = data.epochs();
    (epochs[index].time() - epochs[start].time()).as_seconds()
}

/// Picks (and remembers) the victim satellite for a windowed single-sat
/// scenario, returning a mutable handle if it is visible this epoch.
///
/// The victim is chosen uniformly at the first epoch where the window is
/// active, then tracked by [`gps_orbits::SatId`] for the rest of the
/// window so the fault follows one satellite, as a real anomaly would.
fn pick_target<'a>(
    rng: &mut StdRng,
    state: &mut ScenarioState,
    obs: &'a mut [SatObservation],
) -> Option<&'a mut SatObservation> {
    if obs.is_empty() {
        return None;
    }
    let target = match *state {
        ScenarioState::Target(sat) => sat,
        ScenarioState::Unresolved => {
            // Prefer a mid-elevation satellite: high enough to be used at
            // modest m, low enough not to be the base equation.
            let pick = rng.gen_range(0..obs.len().clamp(1, 4));
            let sat = obs[pick.min(obs.len() - 1)].sat;
            *state = ScenarioState::Target(sat);
            sat
        }
    };
    obs.iter_mut().find(|o| o.sat == target)
}

/// The position `sat` reported `staleness_s` seconds before epoch
/// `index`, if it was visible then.
fn stale_position(
    data: &DataSet,
    index: usize,
    sat: gps_orbits::SatId,
    staleness_s: f64,
) -> Option<gps_geodesy::Ecef> {
    let now = data.epochs()[index].time();
    data.epochs()[..index]
        .iter()
        .rev()
        .find(|e| (now - e.time()).as_seconds() >= staleness_s)
        .and_then(|e| {
            e.observations()
                .iter()
                .find(|o| o.sat == sat)
                .map(|o| o.position)
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gps_obs::{paper_stations, DatasetGenerator};

    fn dataset(epochs: usize) -> DataSet {
        DatasetGenerator::new(11)
            .epoch_interval_s(30.0)
            .epoch_count(epochs)
            .generate(&paper_stations()[0])
    }

    #[test]
    fn apply_is_deterministic() {
        let data = dataset(50);
        let plan = FaultPlan::default_campaign(42);
        let a = plan.apply(&data);
        let b = plan.apply(&data);
        assert_eq!(a.data, b.data);
        assert_eq!(a.log, b.log);
        // A different seed perturbs differently.
        let c = FaultPlan::default_campaign(43).apply(&data);
        assert_ne!(a.data, c.data);
    }

    #[test]
    fn clean_plan_is_identity() {
        let data = dataset(10);
        let faulted = FaultPlan::new(1).apply(&data);
        assert_eq!(faulted.data, data);
        assert_eq!(faulted.log.total_injections(), 0);
    }

    #[test]
    fn blackout_starves_the_window() {
        let data = dataset(40);
        let plan = FaultPlan::new(5).with(FaultScenario::Blackout {
            start_frac: 0.5,
            epochs: 5,
            keep: 2,
        });
        let faulted = plan.apply(&data);
        let counts: Vec<usize> = faulted
            .data
            .epochs()
            .iter()
            .map(|e| e.observations().len())
            .collect();
        for (index, &count) in counts.iter().enumerate().take(25).skip(20) {
            assert_eq!(count, 2, "epoch {index} kept {count}");
            assert!(faulted.log.epochs()[index].dropped > 0);
        }
        assert!(counts[19] > 2);
        assert!(counts[25] > 2);
    }

    #[test]
    fn step_faults_one_satellite_by_the_magnitude() {
        let data = dataset(40);
        let plan = FaultPlan::new(9).with(FaultScenario::Step {
            magnitude_m: 500.0,
            start_frac: 0.25,
            epochs: 10,
        });
        let faulted = plan.apply(&data);
        let mut seen = 0;
        for (index, (clean, dirty)) in data.epochs().iter().zip(faulted.data.epochs()).enumerate() {
            let record = &faulted.log.epochs()[index];
            for (c, d) in clean.observations().iter().zip(dirty.observations()) {
                assert_eq!(c.sat, d.sat);
                let delta = d.pseudorange - c.pseudorange;
                if record.is_faulted(c.sat) {
                    assert!((delta - 500.0).abs() < 1e-9, "delta {delta}");
                    seen += 1;
                } else {
                    assert_eq!(delta, 0.0);
                }
            }
        }
        assert_eq!(seen, 10, "one faulted satellite per window epoch");
        // The same satellite is the victim throughout.
        let victims: std::collections::BTreeSet<_> = faulted
            .log
            .epochs()
            .iter()
            .flat_map(|e| e.faulted.iter().map(|(s, _, _)| *s))
            .collect();
        assert_eq!(victims.len(), 1);
    }

    #[test]
    fn ramp_magnitude_grows_with_time() {
        let data = dataset(60);
        let plan = FaultPlan::new(3).with(FaultScenario::Ramp {
            slope_m_per_s: 2.0,
            start_frac: 0.3,
            epochs: 12,
        });
        let faulted = plan.apply(&data);
        let magnitudes: Vec<f64> = faulted
            .log
            .epochs()
            .iter()
            .flat_map(|e| e.faulted.iter().map(|(_, _, m)| *m))
            .collect();
        assert_eq!(magnitudes.len(), 12);
        assert_eq!(magnitudes[0], 0.0); // ramp starts from zero
        for pair in magnitudes.windows(2) {
            assert!(pair[1] > pair[0], "ramp must grow: {pair:?}");
        }
        // 30 s cadence × 2 m/s: last epoch is 11 intervals in.
        assert!((magnitudes[11] - 2.0 * 11.0 * 30.0).abs() < 1e-9);
    }

    #[test]
    fn clock_jump_is_common_mode_and_persistent() {
        let data = dataset(20);
        let plan = FaultPlan::new(8).with(FaultScenario::ClockJump {
            magnitude_m: 90.0,
            at_frac: 0.5,
        });
        let faulted = plan.apply(&data);
        for (index, (clean, dirty)) in data.epochs().iter().zip(faulted.data.epochs()).enumerate() {
            let expected = if index >= 10 { 90.0 } else { 0.0 };
            assert_eq!(faulted.log.epochs()[index].clock_jump_m, expected);
            for (c, d) in clean.observations().iter().zip(dirty.observations()) {
                assert!((d.pseudorange - c.pseudorange - expected).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn corruption_injects_non_finite_values() {
        let data = dataset(60);
        let plan = FaultPlan::new(17).with(FaultScenario::Corruption { probability: 0.5 });
        let faulted = plan.apply(&data);
        let corrupted = faulted
            .data
            .epochs()
            .iter()
            .flat_map(Epoch::observations)
            .filter(|o| !o.pseudorange.is_finite() || !o.position.is_finite())
            .count();
        assert!(corrupted > 10, "corrupted {corrupted}");
        assert_eq!(corrupted, faulted.log.epochs_with_measurement_faults());
    }

    #[test]
    fn stale_base_shifts_the_highest_elevation_satellite() {
        let data = dataset(60);
        let plan = FaultPlan::new(2).with(FaultScenario::StaleBase {
            staleness_s: 60.0,
            start_frac: 0.5,
            epochs: 5,
        });
        let faulted = plan.apply(&data);
        let shifted: Vec<f64> = faulted
            .log
            .epochs()
            .iter()
            .flat_map(|e| e.faulted.iter().map(|(_, _, m)| *m))
            .collect();
        assert!(!shifted.is_empty());
        for shift in &shifted {
            // A GPS satellite moves ~3.9 km/s; 60 s of staleness is
            // hundreds of km of position error.
            assert!(*shift > 1.0e4, "shift {shift}");
        }
    }

    #[test]
    fn from_spec_parses_lists() {
        let plan = FaultPlan::from_spec(1, "dropout, ramp,clock-jump").unwrap();
        assert_eq!(plan.scenarios().len(), 3);
        assert!(FaultPlan::from_spec(1, "").is_err());
        assert!(FaultPlan::from_spec(1, "dropout,asteroid").is_err());
    }

    #[test]
    fn telemetry_counters_advance() {
        let data = dataset(30);
        let before = injected_counter(FaultKind::Dropout).value();
        let _ = FaultPlan::new(6)
            .with(FaultScenario::Dropout { probability: 0.5 })
            .apply(&data);
        assert!(injected_counter(FaultKind::Dropout).value() > before);
    }
}
