//! A zero-dependency (std-only) work-sharing thread pool.
//!
//! Positioning is a high-volume batch problem: epochs are independent,
//! receivers are independent, and PR 3's caller-owned
//! `SolveContext` means each worker thread can keep its own warm
//! scratch — so the whole stack parallelizes without touching the
//! solver hot path. This crate supplies the one missing primitive, a
//! [`ThreadPool`], in the same spirit as the rest of the workspace:
//! `std` only, fully offline, deterministic where it matters.
//!
//! Design:
//!
//! * **Work sharing, not work stealing.** One shared injector queue
//!   (`Mutex<VecDeque>` + `Condvar`); idle workers sleep on the condvar
//!   and *take* (steal) jobs from the shared queue. For coarse jobs —
//!   a worker loop that drains an epoch stream via an atomic cursor,
//!   or one campaign scenario — queue contention is a handful of lock
//!   acquisitions per job, far below measurement noise.
//! * **Panic isolation.** A panicking job is caught and counted
//!   (`pool.job_panics`); the worker survives, so one poisoned epoch
//!   cannot silently shrink the pool.
//! * **Deterministic fan-out order.** [`ThreadPool::map`] stamps every
//!   item with its input index and reassembles results in that order,
//!   so callers see output identical to a serial loop no matter how
//!   the scheduler interleaved the workers.
//!
//! Telemetry (`pool.*`, see docs/TELEMETRY.md): `pool.submitted` and
//! `pool.stolen` counters, a `pool.queue_depth` gauge (last observed
//! depth), a `pool.queue_depth_at_dequeue` histogram (depth
//! *distribution* as workers drain the queue), and a
//! `pool.worker_busy_us` histogram of per-job execution time.
//!
//! Each worker also attaches to a flight-recorder ring
//! (`gps_telemetry::recorder`) keyed by its worker index and records
//! job start/end/panic markers; on a caught panic the recorder dumps
//! every ring to its configured path, so the failing worker's last
//! records survive for `gps-repro inspect`.
//!
//! ```
//! use gps_pool::ThreadPool;
//!
//! let pool = ThreadPool::new(4);
//! let squares = pool.map((0..100u64).collect(), |_, &n| n * n);
//! assert_eq!(squares[7], 49);
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

use std::collections::VecDeque;
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use gps_telemetry::recorder::{self, RecordKind};
use gps_telemetry::{Counter, Gauge, Histogram};

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Cached handles into the global telemetry registry; obtaining them
/// once at pool construction keeps the per-job record path down to a
/// few atomic operations.
struct PoolMetrics {
    submitted: Counter,
    stolen: Counter,
    panics: Counter,
    queue_depth: Gauge,
    queue_depth_at_dequeue: Histogram,
    busy_us: Histogram,
}

impl PoolMetrics {
    fn new() -> Self {
        PoolMetrics {
            submitted: gps_telemetry::counter("pool.submitted"),
            stolen: gps_telemetry::counter("pool.stolen"),
            panics: gps_telemetry::counter("pool.job_panics"),
            queue_depth: gps_telemetry::gauge("pool.queue_depth"),
            queue_depth_at_dequeue: gps_telemetry::histogram("pool.queue_depth_at_dequeue"),
            busy_us: gps_telemetry::histogram("pool.worker_busy_us"),
        }
    }
}

/// State shared between the pool handle and its worker threads.
struct Shared {
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    shutdown: AtomicBool,
    metrics: PoolMetrics,
}

impl Shared {
    /// Blocks until a job is available or shutdown is signalled with an
    /// empty queue. Returns `None` only at shutdown.
    fn take_job(&self) -> Option<Job> {
        let mut queue = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(job) = queue.pop_front() {
                // Gauge: point-in-time depth for dashboards. Histogram:
                // the depth *distribution* across dequeues, so reports
                // can see sustained backlog rather than the last value.
                self.metrics.queue_depth.set(queue.len() as f64);
                self.metrics
                    .queue_depth_at_dequeue
                    .record(queue.len() as f64);
                self.metrics.stolen.inc();
                return Some(job);
            }
            if self.shutdown.load(Ordering::Acquire) {
                return None;
            }
            queue = self
                .available
                .wait(queue)
                .unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// A fixed-size pool of worker threads sharing one injector queue.
///
/// Dropping the pool signals shutdown, drains the remaining queue, and
/// joins every worker — submitted jobs are never silently discarded.
pub struct ThreadPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("jobs", &self.workers.len())
            .finish()
    }
}

impl ThreadPool {
    /// Spawns a pool of `jobs` workers (`jobs` is clamped to ≥ 1).
    ///
    /// Thread spawning can fail when the OS is out of resources; a
    /// failed spawn shrinks the pool rather than panicking. If *no*
    /// worker could be spawned the pool still functions: [`submit`]
    /// falls back to running jobs inline on the caller's thread.
    ///
    /// [`submit`]: ThreadPool::submit
    #[must_use]
    pub fn new(jobs: usize) -> Self {
        let jobs = jobs.max(1);
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
            metrics: PoolMetrics::new(),
        });
        let workers: Vec<JoinHandle<()>> = (0..jobs)
            .filter_map(|index| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("gps-pool-{index}"))
                    .spawn(move || worker_loop(&shared, index as u32))
                    .ok()
            })
            .collect();
        ThreadPool { shared, workers }
    }

    /// Spawns one worker per available hardware thread.
    #[must_use]
    pub fn with_available_parallelism() -> Self {
        ThreadPool::new(available_parallelism())
    }

    /// Number of worker threads in the pool.
    #[must_use]
    pub fn jobs(&self) -> usize {
        self.workers.len()
    }

    /// Enqueues one job; an idle worker picks it up immediately.
    ///
    /// Degraded mode: if every worker thread failed to spawn (OS
    /// resource exhaustion), the job runs inline on the caller's thread
    /// instead of queueing forever — serial, but never stuck.
    pub fn submit<F: FnOnce() + Send + 'static>(&self, job: F) {
        if self.workers.is_empty() {
            self.shared.metrics.submitted.inc();
            self.shared.metrics.stolen.inc();
            job();
            return;
        }
        let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        queue.push_back(Box::new(job));
        self.shared.metrics.submitted.inc();
        self.shared.metrics.queue_depth.set(queue.len() as f64);
        drop(queue);
        self.shared.available.notify_one();
    }

    /// Applies `f` to every item across the pool and returns the
    /// results **in input order** — each in-flight result is stamped
    /// with its input index, sent over a channel, and reassembled, so
    /// the output is exactly what a serial `items.iter().map(..)` would
    /// produce.
    ///
    /// Workers pull items dynamically from a shared cursor, so uneven
    /// per-item cost load-balances automatically. The call blocks until
    /// every item is processed. Panicking items are counted in
    /// `pool.job_panics`; this call then panics too (results would be
    /// incomplete).
    pub fn map<I, T, F>(&self, items: Vec<I>, f: F) -> Vec<T>
    where
        I: Send + Sync + 'static,
        T: Send + 'static,
        F: Fn(usize, &I) -> T + Send + Sync + 'static,
    {
        let total = items.len();
        if total == 0 {
            return Vec::new();
        }
        let items = Arc::new(items);
        let f = Arc::new(f);
        let cursor = Arc::new(AtomicUsize::new(0));
        let (tx, rx) = mpsc::channel::<(usize, T)>();
        let lanes = self.jobs().min(total);
        for _ in 0..lanes {
            let items = Arc::clone(&items);
            let f = Arc::clone(&f);
            let cursor = Arc::clone(&cursor);
            let tx = tx.clone();
            self.submit(move || loop {
                let index = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(index) else { break };
                // A send only fails if the collector bailed out early
                // (itself only on a panic); stop producing then.
                if tx.send((index, f(index, item))).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        let mut slots: Vec<Option<T>> = (0..total).map(|_| None).collect();
        for _ in 0..total {
            let (index, value) = rx
                .recv()
                .expect("pool.map worker died before finishing (job panicked?)");
            slots[index] = Some(value);
        }
        slots
            .into_iter()
            .map(|slot| slot.expect("every index sent exactly once"))
            .collect()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.available.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn worker_loop(shared: &Shared, index: u32) {
    // Attach this worker to its flight-recorder ring: every record made
    // while a job runs (spans, lane solves, the job markers below)
    // lands in the ring for worker `index`.
    let ring = recorder::recorder().attach(index);
    let mut job_seq = 0u64;
    while let Some(job) = shared.take_job() {
        let start = Instant::now();
        ring.record(RecordKind::JobStart, 0, 0, job_seq, 0);
        let outcome = catch_unwind(AssertUnwindSafe(job));
        let busy_us = start.elapsed().as_secs_f64() * 1e6;
        if outcome.is_err() {
            shared.metrics.panics.inc();
            ring.record(RecordKind::JobPanic, 0, 0, job_seq, busy_us as u64);
            // Drain every ring while the evidence is fresh: the dump
            // ends with this worker's JobStart→JobPanic trail. A
            // best-effort write — an IO failure must not take down the
            // worker that just survived a job panic.
            if let Some((path, Err(err))) = recorder::recorder().dump_now() {
                gps_telemetry::Event::new(
                    gps_telemetry::Level::Warn,
                    "pool.recorder",
                    "flight-recorder dump failed",
                )
                .with("path", path.display().to_string())
                .with("error", err.to_string())
                .emit();
            }
        } else {
            ring.record(RecordKind::JobEnd, 0, 0, job_seq, busy_us as u64);
        }
        shared.metrics.busy_us.record(busy_us);
        job_seq += 1;
    }
    recorder::recorder().detach();
}

/// The number of hardware threads, falling back to 1 where the OS
/// cannot say.
#[must_use]
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn executes_every_submitted_job() {
        let pool = ThreadPool::new(3);
        let hits = Arc::new(AtomicU64::new(0));
        for _ in 0..100 {
            let hits = Arc::clone(&hits);
            pool.submit(move || {
                hits.fetch_add(1, Ordering::Relaxed);
            });
        }
        drop(pool); // drains the queue and joins
        assert_eq!(hits.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn map_preserves_input_order() {
        let pool = ThreadPool::new(4);
        let out = pool.map((0..500u64).collect(), |i, &n| {
            assert_eq!(i as u64, n);
            n * 3
        });
        assert_eq!(out.len(), 500);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i as u64 * 3);
        }
    }

    #[test]
    fn map_handles_empty_and_fewer_items_than_workers() {
        let pool = ThreadPool::new(8);
        assert!(pool.map(Vec::<u8>::new(), |_, &b| b).is_empty());
        assert_eq!(pool.map(vec![7u8], |_, &b| b + 1), vec![8]);
    }

    #[test]
    fn pool_is_reusable_across_batches() {
        let pool = ThreadPool::new(2);
        for round in 0..5u64 {
            let out = pool.map(vec![round; 10], |_, &r| r + 1);
            assert!(out.iter().all(|&v| v == round + 1));
        }
    }

    #[test]
    fn jobs_clamped_to_at_least_one() {
        let pool = ThreadPool::new(0);
        assert_eq!(pool.jobs(), 1);
        assert_eq!(pool.map(vec![1, 2, 3], |_, &n| n), vec![1, 2, 3]);
    }

    #[test]
    fn panicking_job_is_counted_and_pool_survives() {
        let pool = ThreadPool::new(1);
        let before = gps_telemetry::counter("pool.job_panics").value();
        pool.submit(|| panic!("boom"));
        // The next job must still run on the same (sole) worker.
        let out = pool.map(vec![1u8], |_, &b| b * 2);
        assert_eq!(out, vec![2]);
        assert!(gps_telemetry::counter("pool.job_panics").value() > before);
    }

    #[test]
    fn telemetry_counts_submissions_and_steals() {
        let submitted = gps_telemetry::counter("pool.submitted").value();
        let stolen = gps_telemetry::counter("pool.stolen").value();
        let pool = ThreadPool::new(2);
        let _ = pool.map((0..20u8).collect(), |_, &b| b);
        drop(pool);
        assert!(gps_telemetry::counter("pool.submitted").value() > submitted);
        assert!(gps_telemetry::counter("pool.stolen").value() > stolen);
    }

    #[test]
    fn available_parallelism_is_positive() {
        assert!(available_parallelism() >= 1);
    }

    #[test]
    fn dequeue_depth_histogram_sees_the_backlog() {
        let h = gps_telemetry::histogram("pool.queue_depth_at_dequeue");
        let before = h.count();
        let pool = ThreadPool::new(2);
        let _ = pool.map((0..50u8).collect(), |_, &b| b);
        drop(pool);
        assert!(h.count() > before, "dequeues must feed the depth histogram");
    }

    #[test]
    fn workers_leave_job_records_in_their_rings() {
        let pool = ThreadPool::new(1);
        let _ = pool.map(vec![1u8, 2, 3], |_, &b| b);
        drop(pool); // quiesce before reading the ring
        let ring = recorder::recorder().ring(0);
        let timeline = ring.capture();
        let kinds: Vec<_> = timeline.records.iter().filter_map(|r| r.kind()).collect();
        assert!(
            kinds.contains(&RecordKind::JobStart) && kinds.contains(&RecordKind::JobEnd),
            "worker ring missing job lifecycle records: {kinds:?}"
        );
    }

    #[test]
    fn panic_drains_the_flight_recorder_to_the_dump_path() {
        let path =
            std::env::temp_dir().join(format!("gps_pool_panic_dump_{}.bin", std::process::id()));
        std::fs::remove_file(&path).ok();
        recorder::recorder().set_dump_path(Some(path.clone()));
        let pool = ThreadPool::new(1);
        pool.submit(|| panic!("flight recorder drain test"));
        drop(pool); // join: the panic has been caught and dumped
        recorder::recorder().set_dump_path(None);

        let bytes = std::fs::read(&path).expect("panic must write the dump file");
        let dump = gps_telemetry::FlightDump::from_bytes(&bytes).expect("dump must decode");
        assert!(dump.total_records() > 0);
        let panicked: Vec<_> = dump
            .workers
            .iter()
            .filter(|w| {
                w.records
                    .iter()
                    .any(|r| r.kind() == Some(RecordKind::JobPanic))
            })
            .collect();
        assert!(
            !panicked.is_empty(),
            "the failing worker's ring must contain its JobPanic record"
        );
        std::fs::remove_file(&path).ok();
    }
}
