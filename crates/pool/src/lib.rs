//! A zero-dependency (std-only) work-sharing thread pool with
//! supervision.
//!
//! Positioning is a high-volume batch problem: epochs are independent,
//! receivers are independent, and PR 3's caller-owned
//! `SolveContext` means each worker thread can keep its own warm
//! scratch — so the whole stack parallelizes without touching the
//! solver hot path. This crate supplies the one missing primitive, a
//! [`ThreadPool`], in the same spirit as the rest of the workspace:
//! `std` only, fully offline, deterministic where it matters.
//!
//! Design:
//!
//! * **Work sharing, not work stealing.** One shared injector queue
//!   (`Mutex<VecDeque>` + `Condvar`); idle workers sleep on the condvar
//!   and *take* (steal) jobs from the shared queue. For coarse jobs —
//!   a worker loop that drains an epoch stream via an atomic cursor,
//!   or one campaign scenario — queue contention is a handful of lock
//!   acquisitions per job, far below measurement noise.
//! * **Panic isolation.** A panicking job is caught and counted
//!   (`pool.job_panics`); the worker survives, so one poisoned epoch
//!   cannot silently shrink the pool.
//! * **Supervision.** A pool built with [`ThreadPool::supervised`]
//!   runs a supervisor thread that watches per-worker heartbeats:
//!   a worker that exited (chaos injection, escaped teardown) is
//!   respawned into its slot with per-slot exponential backoff, and a
//!   worker stuck inside one job past the stall timeout is replaced
//!   (the stale thread retires itself at the next generation check).
//!   Every recovery increments `pool.worker_restarts` and emits a
//!   warn event — a degraded pool is loud, never silent.
//! * **Deterministic fan-out order.** [`ThreadPool::map`] stamps every
//!   item with its input index and reassembles results in that order,
//!   so callers see output identical to a serial loop no matter how
//!   the scheduler interleaved the workers. A worker lost mid-map
//!   surfaces as a typed [`PoolError`] instead of a panic.
//!
//! Telemetry (`pool.*`, see docs/TELEMETRY.md): `pool.submitted` and
//! `pool.stolen` counters, a `pool.queue_depth` gauge (last observed
//! depth), a `pool.queue_depth_at_dequeue` histogram (depth
//! *distribution* as workers drain the queue), a
//! `pool.worker_busy_us` histogram of per-job execution time, and the
//! supervision counters `pool.worker_restarts` and
//! `pool.spawn_failures`.
//!
//! Each worker also attaches to a flight-recorder ring
//! (`gps_telemetry::recorder`) keyed by its worker index and records
//! job start/end/panic markers; on a caught panic the recorder dumps
//! every ring to its configured path, so the failing worker's last
//! records survive for `gps-repro inspect`.
//!
//! ```
//! use gps_pool::ThreadPool;
//!
//! let pool = ThreadPool::new(4);
//! let squares = pool.map((0..100u64).collect(), |_, &n| n * n).unwrap();
//! assert_eq!(squares[7], 49);
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

use std::collections::VecDeque;
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use gps_telemetry::recorder::{self, RecordKind};
use gps_telemetry::{Counter, Gauge, Histogram};

type Job = Box<dyn FnOnce() + Send + 'static>;

/// One unit of queued work: a job to run, or an instruction for the
/// taking worker to leave its loop (chaos injection / targeted
/// shrink). An exited worker's slot is what supervision repairs.
enum Task {
    Run(Job),
    Exit,
}

/// Error returned by [`ThreadPool::map`] when the fan-out could not
/// complete.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PoolError {
    /// A worker stopped (job panic, injected exit) before every item's
    /// result was delivered; `completed` of `total` results arrived.
    WorkerLost {
        /// Results received before the channel went dead.
        completed: usize,
        /// Items submitted to the fan-out.
        total: usize,
    },
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PoolError::WorkerLost { completed, total } => write!(
                f,
                "pool.map worker lost before finishing: {completed}/{total} results delivered"
            ),
        }
    }
}

impl std::error::Error for PoolError {}

/// Cached handles into the global telemetry registry; obtaining them
/// once at pool construction keeps the per-job record path down to a
/// few atomic operations.
struct PoolMetrics {
    submitted: Counter,
    stolen: Counter,
    panics: Counter,
    queue_depth: Gauge,
    queue_depth_at_dequeue: Histogram,
    busy_us: Histogram,
    worker_restarts: Counter,
    spawn_failures: Counter,
}

impl PoolMetrics {
    fn new() -> Self {
        PoolMetrics {
            submitted: gps_telemetry::counter("pool.submitted"),
            stolen: gps_telemetry::counter("pool.stolen"),
            panics: gps_telemetry::counter("pool.job_panics"),
            queue_depth: gps_telemetry::gauge("pool.queue_depth"),
            queue_depth_at_dequeue: gps_telemetry::histogram("pool.queue_depth_at_dequeue"),
            busy_us: gps_telemetry::histogram("pool.worker_busy_us"),
            worker_restarts: gps_telemetry::counter("pool.worker_restarts"),
            spawn_failures: gps_telemetry::counter("pool.spawn_failures"),
        }
    }
}

/// Liveness state for one worker slot, stamped by the worker and read
/// by the supervisor. `heartbeat_us`/`busy` say what the worker is
/// doing *now*; `generation` lets the supervisor retire a stalled
/// thread (a worker whose stamped generation is stale exits after its
/// current job).
struct WorkerState {
    heartbeat_us: AtomicU64,
    busy: AtomicBool,
    generation: AtomicU64,
}

impl WorkerState {
    fn new() -> Self {
        WorkerState {
            heartbeat_us: AtomicU64::new(0),
            busy: AtomicBool::new(false),
            generation: AtomicU64::new(0),
        }
    }
}

/// State shared between the pool handle, its worker threads, and the
/// supervisor.
struct Shared {
    queue: Mutex<VecDeque<Task>>,
    available: Condvar,
    shutdown: AtomicBool,
    metrics: PoolMetrics,
    epoch: Instant,
    states: Vec<WorkerState>,
}

impl Shared {
    fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Blocks until a task is available or shutdown is signalled with
    /// an empty queue. Returns `None` only at shutdown.
    fn take_task(&self) -> Option<Task> {
        let mut queue = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(task) = queue.pop_front() {
                // Gauge: point-in-time depth for dashboards. Histogram:
                // the depth *distribution* across dequeues, so reports
                // can see sustained backlog rather than the last value.
                self.metrics.queue_depth.set(queue.len() as f64);
                self.metrics
                    .queue_depth_at_dequeue
                    .record(queue.len() as f64);
                self.metrics.stolen.inc();
                return Some(task);
            }
            if self.shutdown.load(Ordering::Acquire) {
                return None;
            }
            queue = self
                .available
                .wait(queue)
                .unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// Supervisor tuning: how often to poll worker liveness, when a busy
/// worker counts as stalled, and the respawn backoff ladder.
#[derive(Debug, Clone, Copy)]
pub struct SupervisorConfig {
    /// Liveness poll interval.
    pub poll: Duration,
    /// A worker busy on one job for longer than this is replaced.
    pub stall_timeout: Duration,
    /// First-respawn delay for a slot; doubles per consecutive restart.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_max: Duration,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            poll: Duration::from_millis(10),
            stall_timeout: Duration::from_secs(2),
            backoff_base: Duration::from_millis(10),
            backoff_max: Duration::from_secs(1),
        }
    }
}

/// A fixed-size pool of worker threads sharing one injector queue.
///
/// Dropping the pool signals shutdown, drains the remaining queue, and
/// joins every worker — submitted jobs are never silently discarded.
pub struct ThreadPool {
    shared: Arc<Shared>,
    slots: Arc<Mutex<Vec<Option<JoinHandle<()>>>>>,
    supervisor: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("jobs", &self.shared.states.len())
            .field("supervised", &self.supervisor.is_some())
            .finish()
    }
}

impl ThreadPool {
    /// Spawns a pool of `jobs` workers (`jobs` is clamped to ≥ 1)
    /// without a supervisor: a worker that exits stays gone until the
    /// pool is dropped. Use [`ThreadPool::supervised`] for
    /// self-healing pools.
    ///
    /// Thread spawning can fail when the OS is out of resources; a
    /// failed spawn is counted (`pool.spawn_failures`) and reported
    /// with a warn event rather than panicking. If *no* worker could
    /// be spawned the pool still functions: [`submit`] falls back to
    /// running jobs inline on the caller's thread.
    ///
    /// [`submit`]: ThreadPool::submit
    #[must_use]
    pub fn new(jobs: usize) -> Self {
        Self::build(jobs, None)
    }

    /// Spawns a supervised pool: a supervisor thread polls worker
    /// liveness per `config` and respawns dead or stalled workers into
    /// their slots with exponential backoff, counting
    /// `pool.worker_restarts`.
    #[must_use]
    pub fn supervised(jobs: usize, config: SupervisorConfig) -> Self {
        Self::build(jobs, Some(config))
    }

    fn build(jobs: usize, config: Option<SupervisorConfig>) -> Self {
        let jobs = jobs.max(1);
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
            metrics: PoolMetrics::new(),
            epoch: Instant::now(),
            states: (0..jobs).map(|_| WorkerState::new()).collect(),
        });
        let slots: Arc<Mutex<Vec<Option<JoinHandle<()>>>>> = Arc::new(Mutex::new(
            (0..jobs)
                .map(|index| spawn_worker(&shared, index, 0))
                .collect(),
        ));
        let supervisor = config.map(|cfg| {
            let shared = Arc::clone(&shared);
            let slots = Arc::clone(&slots);
            std::thread::Builder::new()
                .name("gps-pool-supervisor".to_string())
                .spawn(move || supervisor_loop(&shared, &slots, cfg))
                .ok()
        });
        ThreadPool {
            shared,
            slots,
            supervisor: supervisor.flatten(),
        }
    }

    /// Spawns one worker per available hardware thread.
    #[must_use]
    pub fn with_available_parallelism() -> Self {
        ThreadPool::new(available_parallelism())
    }

    /// Number of worker slots in the pool (configured size; a slot may
    /// be momentarily vacant between a worker death and its respawn).
    #[must_use]
    pub fn jobs(&self) -> usize {
        self.shared.states.len()
    }

    /// Whether any live worker thread currently occupies a slot.
    fn has_workers(&self) -> bool {
        self.slots
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .any(|slot| slot.as_ref().is_some_and(|h| !h.is_finished()))
    }

    /// Enqueues one job; an idle worker picks it up immediately.
    ///
    /// Degraded mode: if every worker slot is vacant (OS resource
    /// exhaustion at spawn, unsupervised exits), the job runs inline
    /// on the caller's thread instead of queueing forever — serial,
    /// but never stuck.
    pub fn submit<F: FnOnce() + Send + 'static>(&self, job: F) {
        if !self.has_workers() {
            self.shared.metrics.submitted.inc();
            self.shared.metrics.stolen.inc();
            job();
            return;
        }
        let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        queue.push_back(Task::Run(Box::new(job)));
        self.shared.metrics.submitted.inc();
        self.shared.metrics.queue_depth.set(queue.len() as f64);
        drop(queue);
        self.shared.available.notify_one();
    }

    /// Chaos hook: enqueues an exit instruction — the next worker to
    /// take from the queue leaves its loop and its thread finishes.
    /// On a supervised pool this is a deterministic "worker death"
    /// that exercises the respawn path end to end; on an unsupervised
    /// pool it permanently shrinks the pool.
    pub fn inject_worker_exit(&self) {
        let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        queue.push_back(Task::Exit);
        drop(queue);
        self.shared.available.notify_one();
    }

    /// Applies `f` to every item across the pool and returns the
    /// results **in input order** — each in-flight result is stamped
    /// with its input index, sent over a channel, and reassembled, so
    /// the output is exactly what a serial `items.iter().map(..)` would
    /// produce.
    ///
    /// Workers pull items dynamically from a shared cursor, so uneven
    /// per-item cost load-balances automatically. The call blocks until
    /// every item is processed.
    ///
    /// # Errors
    ///
    /// Returns [`PoolError::WorkerLost`] when a worker stopped before
    /// delivering every result — a panicking item (also counted in
    /// `pool.job_panics`) or an injected exit mid-fan-out. The
    /// completed count in the error says how far the batch got.
    pub fn map<I, T, F>(&self, items: Vec<I>, f: F) -> Result<Vec<T>, PoolError>
    where
        I: Send + Sync + 'static,
        T: Send + 'static,
        F: Fn(usize, &I) -> T + Send + Sync + 'static,
    {
        let total = items.len();
        if total == 0 {
            return Ok(Vec::new());
        }
        let items = Arc::new(items);
        let f = Arc::new(f);
        let cursor = Arc::new(AtomicUsize::new(0));
        let (tx, rx) = mpsc::channel::<(usize, T)>();
        let lanes = self.jobs().min(total);
        for _ in 0..lanes {
            let items = Arc::clone(&items);
            let f = Arc::clone(&f);
            let cursor = Arc::clone(&cursor);
            let tx = tx.clone();
            self.submit(move || loop {
                let index = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(index) else { break };
                // A send only fails if the collector bailed out early
                // (itself only on an error return); stop producing then.
                if tx.send((index, f(index, item))).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        let mut slots: Vec<Option<T>> = (0..total).map(|_| None).collect();
        let mut completed = 0usize;
        while completed < total {
            // The channel goes dead when every lane closure is gone —
            // all items done (loop already exited) or a lane died with
            // its item unsent. The former can't reach this recv, so a
            // dead channel here is a lost worker, reported as data.
            let Ok((index, value)) = rx.recv() else {
                return Err(PoolError::WorkerLost { completed, total });
            };
            if let Some(slot) = slots.get_mut(index) {
                if slot.replace(value).is_none() {
                    completed += 1;
                }
            }
        }
        let mut out = Vec::with_capacity(total);
        for slot in slots {
            match slot {
                Some(value) => out.push(value),
                None => return Err(PoolError::WorkerLost { completed, total }),
            }
        }
        Ok(out)
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.available.notify_all();
        // Stop the supervisor first so it cannot respawn into slots
        // that are being joined.
        if let Some(supervisor) = self.supervisor.take() {
            let _ = supervisor.join();
        }
        let mut slots = self.slots.lock().unwrap_or_else(|e| e.into_inner());
        for slot in slots.iter_mut() {
            if let Some(worker) = slot.take() {
                let _ = worker.join();
            }
        }
    }
}

/// Spawns a worker thread for `index` at `generation`, reporting (not
/// panicking on) OS-level spawn failure.
fn spawn_worker(shared: &Arc<Shared>, index: usize, generation: u64) -> Option<JoinHandle<()>> {
    let worker_shared = Arc::clone(shared);
    match std::thread::Builder::new()
        .name(format!("gps-pool-{index}"))
        .spawn(move || worker_loop(&worker_shared, index, generation))
    {
        Ok(handle) => Some(handle),
        Err(err) => {
            shared.metrics.spawn_failures.inc();
            gps_telemetry::Event::new(
                gps_telemetry::Level::Warn,
                "pool.supervisor",
                "worker spawn failed; pool degraded",
            )
            .with("worker", index as i64)
            .with("error", err.to_string())
            .emit();
            None
        }
    }
}

/// Polls worker liveness and repairs slots: a finished thread (exited
/// worker) is respawned after its backoff window; a thread busy on one
/// job past the stall timeout is retired via a generation bump and
/// replaced immediately. Exits when the pool shuts down.
fn supervisor_loop(
    shared: &Arc<Shared>,
    slots: &Arc<Mutex<Vec<Option<JoinHandle<()>>>>>,
    cfg: SupervisorConfig,
) {
    let jobs = shared.states.len();
    // Per-slot backoff bookkeeping, local to the supervisor thread.
    let mut consecutive = vec![0u32; jobs];
    let mut not_before_us = vec![0u64; jobs];
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        std::thread::sleep(cfg.poll);
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        let now_us = shared.now_us();
        let mut slots = slots.lock().unwrap_or_else(|e| e.into_inner());
        for index in 0..jobs {
            let Some(state) = shared.states.get(index) else {
                continue;
            };
            let (Some(slot), Some(consecutive), Some(not_before)) = (
                slots.get_mut(index),
                consecutive.get_mut(index),
                not_before_us.get_mut(index),
            ) else {
                continue;
            };
            let dead = slot.as_ref().is_none_or(JoinHandle::is_finished);
            let stalled = !dead
                && state.busy.load(Ordering::Acquire)
                && now_us.saturating_sub(state.heartbeat_us.load(Ordering::Acquire))
                    > cfg.stall_timeout.as_micros() as u64;
            if !dead && !stalled {
                // Healthy: heartbeat progress resets the backoff ladder.
                *consecutive = 0;
                continue;
            }
            if now_us < *not_before {
                continue; // still inside this slot's backoff window
            }
            // Retire the old thread: a bumped generation makes a
            // stalled worker exit after its current job instead of
            // competing with its replacement for queue items.
            let generation = state.generation.fetch_add(1, Ordering::AcqRel) + 1;
            let old = slot.take();
            if let Some(handle) = old {
                if dead {
                    let _ = handle.join(); // finished; reap immediately
                } // stalled: detach — it retires itself post-job
            }
            *slot = spawn_worker(shared, index, generation);
            shared.metrics.worker_restarts.inc();
            let exp = (*consecutive).min(16);
            *consecutive += 1;
            let backoff = cfg
                .backoff_base
                .saturating_mul(1u32 << exp)
                .min(cfg.backoff_max);
            *not_before = now_us + backoff.as_micros() as u64;
            gps_telemetry::Event::new(
                gps_telemetry::Level::Warn,
                "pool.supervisor",
                if dead {
                    "worker exited; respawned"
                } else {
                    "worker stalled; replaced"
                },
            )
            .with("worker", index as i64)
            .with("generation", generation as i64)
            .with("backoff_ms", backoff.as_millis() as i64)
            .emit();
        }
    }
}

fn worker_loop(shared: &Shared, index: usize, generation: u64) {
    // Attach this worker to its flight-recorder ring: every record made
    // while a job runs (spans, lane solves, the job markers below)
    // lands in the ring for worker `index`.
    let ring = recorder::recorder().attach(index as u32);
    let mut job_seq = 0u64;
    while let Some(task) = shared.take_task() {
        let job = match task {
            Task::Run(job) => job,
            Task::Exit => break,
        };
        let start = Instant::now();
        if let Some(state) = shared.states.get(index) {
            state.heartbeat_us.store(shared.now_us(), Ordering::Release);
            state.busy.store(true, Ordering::Release);
        }
        ring.record(RecordKind::JobStart, 0, 0, job_seq, 0);
        let outcome = catch_unwind(AssertUnwindSafe(job));
        let busy_us = start.elapsed().as_secs_f64() * 1e6;
        if let Some(state) = shared.states.get(index) {
            state.heartbeat_us.store(shared.now_us(), Ordering::Release);
            state.busy.store(false, Ordering::Release);
        }
        if outcome.is_err() {
            shared.metrics.panics.inc();
            ring.record(RecordKind::JobPanic, 0, 0, job_seq, busy_us as u64);
            // Drain every ring while the evidence is fresh: the dump
            // ends with this worker's JobStart→JobPanic trail. A
            // best-effort write — an IO failure must not take down the
            // worker that just survived a job panic.
            if let Some((path, Err(err))) = recorder::recorder().dump_now() {
                gps_telemetry::Event::new(
                    gps_telemetry::Level::Warn,
                    "pool.recorder",
                    "flight-recorder dump failed",
                )
                .with("path", path.display().to_string())
                .with("error", err.to_string())
                .emit();
            }
        } else {
            ring.record(RecordKind::JobEnd, 0, 0, job_seq, busy_us as u64);
        }
        shared.metrics.busy_us.record(busy_us);
        job_seq += 1;
        // A supervisor that declared this worker stalled has already
        // spawned a replacement; retire quietly instead of competing
        // with it for queue items.
        if let Some(state) = shared.states.get(index) {
            if state.generation.load(Ordering::Acquire) != generation {
                break;
            }
        }
    }
    recorder::recorder().detach();
}

/// The number of hardware threads, falling back to 1 where the OS
/// cannot say.
#[must_use]
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn executes_every_submitted_job() {
        let pool = ThreadPool::new(3);
        let hits = Arc::new(AtomicU64::new(0));
        for _ in 0..100 {
            let hits = Arc::clone(&hits);
            pool.submit(move || {
                hits.fetch_add(1, Ordering::Relaxed);
            });
        }
        drop(pool); // drains the queue and joins
        assert_eq!(hits.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn map_preserves_input_order() {
        let pool = ThreadPool::new(4);
        let out = pool
            .map((0..500u64).collect(), |i, &n| {
                assert_eq!(i as u64, n);
                n * 3
            })
            .expect("map");
        assert_eq!(out.len(), 500);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i as u64 * 3);
        }
    }

    #[test]
    fn map_handles_empty_and_fewer_items_than_workers() {
        let pool = ThreadPool::new(8);
        assert!(pool
            .map(Vec::<u8>::new(), |_, &b| b)
            .expect("map")
            .is_empty());
        assert_eq!(pool.map(vec![7u8], |_, &b| b + 1).expect("map"), vec![8]);
    }

    #[test]
    fn pool_is_reusable_across_batches() {
        let pool = ThreadPool::new(2);
        for round in 0..5u64 {
            let out = pool.map(vec![round; 10], |_, &r| r + 1).expect("map");
            assert!(out.iter().all(|&v| v == round + 1));
        }
    }

    #[test]
    fn jobs_clamped_to_at_least_one() {
        let pool = ThreadPool::new(0);
        assert_eq!(pool.jobs(), 1);
        assert_eq!(
            pool.map(vec![1, 2, 3], |_, &n| n).expect("map"),
            vec![1, 2, 3]
        );
    }

    #[test]
    fn panicking_job_is_counted_and_pool_survives() {
        let pool = ThreadPool::new(1);
        let before = gps_telemetry::counter("pool.job_panics").value();
        pool.submit(|| panic!("boom"));
        // The next job must still run on the same (sole) worker.
        let out = pool.map(vec![1u8], |_, &b| b * 2).expect("map");
        assert_eq!(out, vec![2]);
        assert!(gps_telemetry::counter("pool.job_panics").value() > before);
    }

    #[test]
    fn map_reports_worker_lost_instead_of_panicking() {
        let pool = ThreadPool::new(2);
        let err = pool
            .map((0..8u64).collect(), |_, &n| {
                if n == 3 {
                    panic!("poisoned item");
                }
                n
            })
            .expect_err("a panicking item must fail the map");
        let PoolError::WorkerLost { completed, total } = err;
        assert_eq!(total, 8);
        assert!(completed < total, "the panicked item never delivered");
        // The pool itself survives for the next batch.
        assert_eq!(pool.map(vec![5u8], |_, &b| b).expect("map"), vec![5]);
    }

    #[test]
    fn injected_exit_shrinks_unsupervised_pool() {
        let pool = ThreadPool::new(2);
        pool.inject_worker_exit();
        pool.inject_worker_exit();
        // Let both workers take their exit tasks.
        let deadline = Instant::now() + Duration::from_secs(5);
        while pool.has_workers() && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(!pool.has_workers(), "both workers should have exited");
        // Degraded mode: submit still works, inline.
        assert_eq!(pool.map(vec![9u8], |_, &b| b).expect("map"), vec![9]);
    }

    #[test]
    fn supervisor_respawns_exited_workers() {
        let restarts = gps_telemetry::counter("pool.worker_restarts");
        let before = restarts.value();
        let cfg = SupervisorConfig {
            poll: Duration::from_millis(2),
            backoff_base: Duration::from_millis(1),
            ..SupervisorConfig::default()
        };
        let pool = ThreadPool::supervised(2, cfg);
        // A panic storm with injected exits: every worker death must be
        // repaired by the supervisor.
        for _ in 0..3 {
            pool.inject_worker_exit();
            pool.submit(|| panic!("storm"));
        }
        let deadline = Instant::now() + Duration::from_secs(10);
        while restarts.value() < before + 3 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(
            restarts.value() >= before + 3,
            "supervisor must respawn every exited worker (restarts: {} -> {})",
            before,
            restarts.value()
        );
        // The healed pool still completes work across all slots.
        let out = pool.map((0..100u64).collect(), |_, &n| n + 1).expect("map");
        assert_eq!(out.len(), 100);
    }

    #[test]
    fn supervisor_replaces_stalled_worker() {
        let restarts = gps_telemetry::counter("pool.worker_restarts");
        let before = restarts.value();
        let cfg = SupervisorConfig {
            poll: Duration::from_millis(2),
            stall_timeout: Duration::from_millis(30),
            backoff_base: Duration::from_millis(1),
            ..SupervisorConfig::default()
        };
        let pool = ThreadPool::supervised(1, cfg);
        let release = Arc::new(AtomicBool::new(false));
        let hold = Arc::clone(&release);
        // Stall the only worker far past the timeout (bounded, so the
        // detached thread always finishes before the process exits).
        pool.submit(move || {
            let deadline = Instant::now() + Duration::from_secs(10);
            while !hold.load(Ordering::Acquire) && Instant::now() < deadline {
                std::thread::sleep(Duration::from_millis(5));
            }
        });
        let deadline = Instant::now() + Duration::from_secs(10);
        while restarts.value() == before && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(restarts.value() > before, "stalled worker must be replaced");
        // The replacement serves traffic while the old thread is stuck.
        let out = pool.map(vec![1u8, 2, 3], |_, &b| b * 2).expect("map");
        assert_eq!(out, vec![2, 4, 6]);
        release.store(true, Ordering::Release);
    }

    #[test]
    fn telemetry_counts_submissions_and_steals() {
        let submitted = gps_telemetry::counter("pool.submitted").value();
        let stolen = gps_telemetry::counter("pool.stolen").value();
        let pool = ThreadPool::new(2);
        let _ = pool.map((0..20u8).collect(), |_, &b| b);
        drop(pool);
        assert!(gps_telemetry::counter("pool.submitted").value() > submitted);
        assert!(gps_telemetry::counter("pool.stolen").value() > stolen);
    }

    #[test]
    fn available_parallelism_is_positive() {
        assert!(available_parallelism() >= 1);
    }

    #[test]
    fn dequeue_depth_histogram_sees_the_backlog() {
        let h = gps_telemetry::histogram("pool.queue_depth_at_dequeue");
        let before = h.count();
        let pool = ThreadPool::new(2);
        let _ = pool.map((0..50u8).collect(), |_, &b| b);
        drop(pool);
        assert!(h.count() > before, "dequeues must feed the depth histogram");
    }

    #[test]
    fn workers_leave_job_records_in_their_rings() {
        let pool = ThreadPool::new(1);
        let _ = pool.map(vec![1u8, 2, 3], |_, &b| b);
        drop(pool); // quiesce before reading the ring
        let ring = recorder::recorder().ring(0);
        let timeline = ring.capture();
        let kinds: Vec<_> = timeline.records.iter().filter_map(|r| r.kind()).collect();
        assert!(
            kinds.contains(&RecordKind::JobStart) && kinds.contains(&RecordKind::JobEnd),
            "worker ring missing job lifecycle records: {kinds:?}"
        );
    }

    #[test]
    fn panic_drains_the_flight_recorder_to_the_dump_path() {
        let path =
            std::env::temp_dir().join(format!("gps_pool_panic_dump_{}.bin", std::process::id()));
        std::fs::remove_file(&path).ok();
        recorder::recorder().set_dump_path(Some(path.clone()));
        let pool = ThreadPool::new(1);
        pool.submit(|| panic!("flight recorder drain test"));
        drop(pool); // join: the panic has been caught and dumped
        recorder::recorder().set_dump_path(None);

        let bytes = std::fs::read(&path).expect("panic must write the dump file");
        let dump = gps_telemetry::FlightDump::from_bytes(&bytes).expect("dump must decode");
        assert!(dump.total_records() > 0);
        let panicked: Vec<_> = dump
            .workers
            .iter()
            .filter(|w| {
                w.records
                    .iter()
                    .any(|r| r.kind() == Some(RecordKind::JobPanic))
            })
            .collect();
        assert!(
            !panicked.is_empty(),
            "the failing worker's ring must contain its JobPanic record"
        );
        std::fs::remove_file(&path).ok();
    }
}
