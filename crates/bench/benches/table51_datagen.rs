//! Table 5.1 — Data Set Specifications.
//!
//! Benchmarks the substitute for the paper's CORS downloads: generating
//! one station's observation stream (constellation propagation +
//! atmosphere + clock + pseudorange assembly), per epoch, and the
//! visibility query that determines the 8–12 satellites per data item.
//! The table itself is printed by
//! `cargo run --release --example reproduce_paper -- table51`.

use gps_bench::harness::{Harness, Throughput};
use gps_obs::{paper_stations, DatasetGenerator};
use gps_orbits::Constellation;
use gps_time::GpsTime;
use std::hint::black_box;

fn bench_generation(h: &mut Harness) {
    let stations = paper_stations();
    let mut group = h.benchmark_group("table51_datagen");

    // Per-station generation throughput (epochs/second).
    let epochs = 120usize;
    group.throughput(Throughput::Elements(epochs as u64));
    for station in &stations {
        group.bench_with_input(
            &format!("generate/{}", station.id()),
            station,
            |b, station| {
                let generator = DatasetGenerator::new(7)
                    .epoch_interval_s(30.0)
                    .epoch_count(epochs);
                b.iter(|| black_box(generator.generate(black_box(station))))
            },
        );
    }

    // The underlying visibility query.
    let constellation = Constellation::gps_nominal();
    let srzn = stations[0].position();
    group.throughput(Throughput::Elements(1));
    group.bench_function("visible_from", |b| {
        b.iter(|| {
            black_box(constellation.visible_from(
                black_box(srzn),
                GpsTime::new(1544, 4_242.0),
                5.0f64.to_radians(),
            ))
        })
    });

    // RINEX-lite persistence throughput (bytes/second).
    let data = DatasetGenerator::new(7)
        .epoch_interval_s(30.0)
        .epoch_count(epochs)
        .generate(&stations[0]);
    let text = gps_obs::format::write(&data);
    group.throughput(Throughput::Bytes(text.len() as u64));
    group.bench_function("rinex_lite_write", |b| {
        b.iter(|| black_box(gps_obs::format::write(black_box(&data))))
    });
    group.bench_function("rinex_lite_parse", |b| {
        b.iter(|| black_box(gps_obs::format::parse(black_box(&text)).expect("valid")))
    });
    group.finish();
}

fn main() {
    let mut harness = Harness::new();
    bench_generation(&mut harness);
}
