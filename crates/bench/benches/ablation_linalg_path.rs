//! Ablation — linear-algebra path (paper §6, extension 3: "optimize the
//! matrix operations ... so the computation time may be further reduced").
//!
//! Compares, on the actual GPS-shaped systems:
//!
//! * OLS via normal equations + Cholesky (the crate default, what the
//!   paper's eq. 4-12 literally writes) vs Householder QR;
//! * GLS via whitening (the crate default) vs the explicit `M⁻¹`
//!   formulation of eq. 4-21.

use gps_bench::fixture_epochs;
use gps_bench::harness::Harness;
use gps_core::{linearize, BaseSelection, Dlg};
use gps_linalg::lstsq::{self, GlsStrategy, LstsqScratch};
use gps_linalg::Vector;
use std::hint::black_box;

fn bench_paths(h: &mut Harness) {
    let mut group = h.benchmark_group("ablation_linalg_path");
    for m in [6usize, 10] {
        // Pre-linearize every epoch so only the estimator is measured.
        let systems: Vec<_> = fixture_epochs(m, 63)
            .iter()
            .map(|meas| linearize(meas, 12.0, BaseSelection::First).expect("fixture is valid"))
            .collect();
        let dlg = Dlg::default();

        group.bench_with_input(&format!("ols_normal_eq/{m}"), &systems, |b, systems| {
            b.iter(|| {
                for sys in systems {
                    let _ = black_box(lstsq::ols(&sys.a, &sys.d));
                }
            })
        });
        group.bench_with_input(&format!("ols3_cramer/{m}"), &systems, |b, systems| {
            b.iter(|| {
                for sys in systems {
                    let _ = black_box(lstsq::ols3(&sys.a, &sys.d));
                }
            })
        });
        group.bench_with_input(&format!("ols_qr/{m}"), &systems, |b, systems| {
            b.iter(|| {
                for sys in systems {
                    let _ = black_box(lstsq::ols_qr(&sys.a, &sys.d));
                }
            })
        });
        // Both GLS paths now route through the one `gls_with` entry
        // point; the strategy enum is the ablation knob.
        group.bench_with_input(&format!("gls_whitened/{m}"), &systems, |b, systems| {
            b.iter(|| {
                for sys in systems {
                    let cov = dlg.covariance_matrix(sys);
                    let _ = black_box(lstsq::gls_with(&sys.a, &sys.d, &cov, GlsStrategy::Whitened));
                }
            })
        });
        group.bench_with_input(
            &format!("gls_explicit_inverse/{m}"),
            &systems,
            |b, systems| {
                b.iter(|| {
                    for sys in systems {
                        let cov = dlg.covariance_matrix(sys);
                        let _ = black_box(lstsq::gls_with(
                            &sys.a,
                            &sys.d,
                            &cov,
                            GlsStrategy::ExplicitInverse,
                        ));
                    }
                })
            },
        );
        // Caller-provided buffers: the same whitened estimator with all
        // scratch reused across epochs (the `SolveContext` hot path).
        group.bench_with_input(&format!("gls_whitened_into/{m}"), &systems, |b, systems| {
            let mut scratch = LstsqScratch::default();
            let mut x = Vector::zeros(3);
            let mut cov = gps_linalg::Matrix::default();
            b.iter(|| {
                for sys in systems {
                    dlg.covariance_matrix_into(sys, &mut cov);
                    let _ = black_box(lstsq::gls_into(
                        &sys.a,
                        &sys.d,
                        &cov,
                        GlsStrategy::Whitened,
                        &mut scratch,
                        &mut x,
                    ));
                }
            })
        });
    }
    group.finish();
}

fn main() {
    let mut harness = Harness::new();
    bench_paths(&mut harness);
}
