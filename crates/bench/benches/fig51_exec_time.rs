//! Figure 5.1 — Execution Time Comparisons.
//!
//! Benchmarks one positioning solve per algorithm (NR, DLO, DLG, plus the
//! Bancroft baseline) for each satellite count in the paper's sweep
//! `m = 4..=10`, over realistic epochs from the SRZN dataset. The ratio
//! `DLO/NR` and `DLG/NR` of the reported times is the paper's
//! `θ = τ_O/τ_NR × 100 %` (eq. 5-3); the full four-dataset series is
//! printed by `cargo run --release --example reproduce_paper -- fig51`.
//!
//! Each algorithm is measured three ways: through the simple allocating
//! [`PositionSolver`] path (the `<ALGO>/{m}` ids, unchanged from before
//! the `Solver` refactor), through the zero-allocation
//! [`gps_core::Solver`] + [`SolveContext`] path pinned to the **heap**
//! buffers (`<ALGO>-ctx/{m}`, preserving the meaning of the pre-stack
//! numbers), and through the same path on the default const-generic
//! **stack** kernel lane (`<ALGO>-stk/{m}`). `ctx` minus the simple path
//! is the context refactor's per-epoch saving; `stk` minus `ctx` is the
//! stack-kernel lane's.

use gps_bench::fixture_epochs;
use gps_bench::harness::{Harness, Throughput};
use gps_core::{Bancroft, Dlg, Dlo, Engine, Epoch, NewtonRaphson, PositionSolver, SolveContext};
use std::hint::black_box;

fn bench_solvers(h: &mut Harness) {
    let mut group = h.benchmark_group("fig51_exec_time");
    for m in [4usize, 5, 6, 7, 8, 9, 10] {
        let epochs = fixture_epochs(m, 51);
        if epochs.is_empty() {
            continue;
        }
        group.throughput(Throughput::Elements(epochs.len() as u64));

        let nr = NewtonRaphson::default();
        group.bench_with_input(&format!("NR/{m}"), &epochs, |b, epochs| {
            b.iter(|| {
                for meas in epochs {
                    let _ = black_box(nr.solve(black_box(meas), 0.0));
                }
            })
        });
        group.bench_with_input(&format!("NR-ctx/{m}"), &epochs, |b, epochs| {
            let mut ctx = SolveContext::new().with_stack_kernels(false);
            b.iter(|| {
                for meas in epochs {
                    let epoch = Epoch::new(black_box(meas), 0.0);
                    let _ = black_box(gps_core::Solver::solve(&nr, &epoch, &mut ctx));
                }
            })
        });

        group.bench_with_input(&format!("NR-stk/{m}"), &epochs, |b, epochs| {
            let mut ctx = SolveContext::new();
            b.iter(|| {
                for meas in epochs {
                    let epoch = Epoch::new(black_box(meas), 0.0);
                    let _ = black_box(gps_core::Solver::solve(&nr, &epoch, &mut ctx));
                }
            })
        });

        // Warm-started NR (previous epoch's fix as the initial guess):
        // quantifies how much of NR's cost is the paper's cold start.
        group.bench_with_input(&format!("NR-warm/{m}"), &epochs, |b, epochs| {
            b.iter(|| {
                let mut warm = NewtonRaphson::default();
                for meas in epochs {
                    if let Ok(fix) = black_box(warm.solve(black_box(meas), 0.0)) {
                        warm = NewtonRaphson::default()
                            .with_initial(fix.position, fix.receiver_bias_m.unwrap_or(0.0));
                    }
                }
            })
        });

        let dlo = Dlo::default();
        group.bench_with_input(&format!("DLO/{m}"), &epochs, |b, epochs| {
            b.iter(|| {
                for meas in epochs {
                    let _ = black_box(dlo.solve(black_box(meas), 12.0));
                }
            })
        });
        group.bench_with_input(&format!("DLO-ctx/{m}"), &epochs, |b, epochs| {
            let mut ctx = SolveContext::new().with_stack_kernels(false);
            b.iter(|| {
                for meas in epochs {
                    let epoch = Epoch::new(black_box(meas), 12.0);
                    let _ = black_box(gps_core::Solver::solve(&dlo, &epoch, &mut ctx));
                }
            })
        });

        group.bench_with_input(&format!("DLO-stk/{m}"), &epochs, |b, epochs| {
            let mut ctx = SolveContext::new();
            b.iter(|| {
                for meas in epochs {
                    let epoch = Epoch::new(black_box(meas), 12.0);
                    let _ = black_box(gps_core::Solver::solve(&dlo, &epoch, &mut ctx));
                }
            })
        });

        let dlg = Dlg::default();
        group.bench_with_input(&format!("DLG/{m}"), &epochs, |b, epochs| {
            b.iter(|| {
                for meas in epochs {
                    let _ = black_box(dlg.solve(black_box(meas), 12.0));
                }
            })
        });
        group.bench_with_input(&format!("DLG-ctx/{m}"), &epochs, |b, epochs| {
            let mut ctx = SolveContext::new().with_stack_kernels(false);
            b.iter(|| {
                for meas in epochs {
                    let epoch = Epoch::new(black_box(meas), 12.0);
                    let _ = black_box(gps_core::Solver::solve(&dlg, &epoch, &mut ctx));
                }
            })
        });

        group.bench_with_input(&format!("DLG-stk/{m}"), &epochs, |b, epochs| {
            let mut ctx = SolveContext::new();
            b.iter(|| {
                for meas in epochs {
                    let epoch = Epoch::new(black_box(meas), 12.0);
                    let _ = black_box(gps_core::Solver::solve(&dlg, &epoch, &mut ctx));
                }
            })
        });

        let bancroft = Bancroft;
        group.bench_with_input(&format!("Bancroft/{m}"), &epochs, |b, epochs| {
            b.iter(|| {
                for meas in epochs {
                    let _ = black_box(bancroft.solve(black_box(meas), 0.0));
                }
            })
        });
        group.bench_with_input(&format!("Bancroft-ctx/{m}"), &epochs, |b, epochs| {
            let mut ctx = SolveContext::new().with_stack_kernels(false);
            b.iter(|| {
                for meas in epochs {
                    let epoch = Epoch::new(black_box(meas), 0.0);
                    let _ = black_box(gps_core::Solver::solve(&bancroft, &epoch, &mut ctx));
                }
            })
        });

        group.bench_with_input(&format!("Bancroft-stk/{m}"), &epochs, |b, epochs| {
            let mut ctx = SolveContext::new();
            b.iter(|| {
                for meas in epochs {
                    let epoch = Epoch::new(black_box(meas), 0.0);
                    let _ = black_box(gps_core::Solver::solve(&bancroft, &epoch, &mut ctx));
                }
            })
        });

        // All four lanes through the batched Engine (per-lane warm
        // contexts, per-lane timing folded into the engine's own stats).
        group.bench_with_input(&format!("Engine/{m}"), &epochs, |b, epochs| {
            let mut engine = Engine::all_solvers();
            b.iter(|| {
                for meas in epochs {
                    let _ = black_box(engine.run_epoch(black_box(meas), 12.0));
                }
            })
        });
    }
    group.finish();
}

fn main() {
    let mut harness = Harness::new();
    bench_solvers(&mut harness);
}
