//! Figure 5.2 — Accuracy Comparisons.
//!
//! Accuracy is a statistic, not a duration, so this bench does two
//! things: (a) it *prints* the reproduced accuracy-rate series
//! `η = d_O/d_NR × 100 %` (eq. 5-2) for a one-hour slice of each dataset
//! before measuring, and (b) it benchmarks the full evaluation pipeline
//! (`run_dataset`: solve three algorithms over every epoch and aggregate
//! errors) that produces those series. The full-day four-dataset figure
//! is printed by `cargo run --release --example reproduce_paper -- fig52`.

use gps_bench::fixture_dataset;
use gps_bench::harness::Harness;
use gps_sim::{run_dataset, ExperimentConfig};
use std::hint::black_box;

fn print_accuracy_series() {
    let mut cfg = ExperimentConfig::quick(52);
    cfg.calibration_epochs = 20;
    println!("fig52 preview (one-hour slices): m  eta_DLO%  eta_DLG%");
    for idx in 0..4 {
        let data = fixture_dataset(idx, 52);
        println!("  dataset {} ({})", idx + 1, data.station().id());
        for m in [4usize, 6, 8, 10] {
            let r = run_dataset(&data, m, &cfg);
            if r.nr.solves > 0 && r.nr.error.mean() > 0.0 {
                println!("    {:>2}  {:>7.1}  {:>7.1}", m, r.eta_dlo(), r.eta_dlg());
            }
        }
    }
}

fn bench_accuracy_pipeline(h: &mut Harness) {
    print_accuracy_series();

    let mut cfg = ExperimentConfig::quick(52);
    cfg.calibration_epochs = 20;
    let data = fixture_dataset(0, 52);
    let mut group = h.benchmark_group("fig52_accuracy_pipeline");
    group.sample_size(20);
    for m in [4usize, 8] {
        group.bench_with_input(&format!("run_dataset/{m}"), &m, |b, &m| {
            b.iter(|| black_box(run_dataset(black_box(&data), m, &cfg)))
        });
    }
    group.finish();
}

fn main() {
    let mut harness = Harness::new();
    bench_accuracy_pipeline(&mut harness);
}
