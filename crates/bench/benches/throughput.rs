//! Parallel batch positioning throughput.
//!
//! Sweeps worker count `jobs ∈ {1, 2, 4, all}` (deduplicated against
//! the machine's available parallelism) against each paper solver
//! (NR, DLO, DLG, Bancroft): one measured iteration is a full
//! [`ParallelEngine::run_shared`] pass over a fixed multi-epoch stream,
//! so the derived elements/s column is positioning fixes per second for
//! that lane.
//!
//! A second, serial sweep varies the SoA block size — the batched
//! single-thread [`Engine`] fed through `run_blocked` with 1, 4 and 8
//! epochs lock-step — so the committed numbers separate the
//! const-generic/SoA lane win (pure single-core solve rate) from thread
//! scaling and parallel plumbing.
//!
//! Besides the usual harness output, the run distils a machine-readable
//! summary to `BENCH_throughput.json` at the repository root —
//! ns-per-stream, fixes/s and speedup-vs-one-worker per cell — so future
//! PRs can track the scaling trajectory. Speedup on a single-core runner
//! is expected to hover at or below 1.0×; the interesting numbers come
//! from multi-core machines.

use std::sync::Arc;

use gps_bench::fixture_epochs;
use gps_bench::harness::{Harness, Throughput};
use gps_core::{Engine, EpochJob, ParallelEngine};
use gps_pool::ThreadPool;

/// Epochs per measured stream run (the fixture's 120 epochs, cycled).
const STREAM_EPOCHS: usize = 960;
/// Satellites per epoch, the paper's mid-sweep workload.
const SATELLITES: usize = 8;
/// Dataset seed (the paper's publication year, same as the CLI default).
const SEED: u64 = 2010;

/// The swept block sizes for the single-worker SoA lane:
/// `run_blocked` with 1 (degenerate blocks), 4 and 8 epochs lock-step.
const BLOCK_SWEEP: [usize; 3] = [1, 4, 8];

/// One summary cell for the JSON report.
struct Cell {
    solver: &'static str,
    /// `"parallel"` = `ParallelEngine` across a pool (shard + channel +
    /// merge included); `"serial"` = the batched single-thread `Engine`,
    /// the pure single-core solve rate.
    mode: &'static str,
    jobs: usize,
    /// Epochs per lock-step block; 1 = per-epoch feeding.
    block_size: usize,
    ns_per_stream: f64,
    fixes_per_sec: f64,
    speedup_vs_jobs1: f64,
}

fn build_stream() -> Arc<Vec<EpochJob>> {
    let base = fixture_epochs(SATELLITES, SEED);
    assert!(!base.is_empty(), "fixture must yield epochs");
    let jobs = (0..STREAM_EPOCHS)
        .map(|i| EpochJob::new(base[i % base.len()].clone(), 0.0))
        .collect();
    Arc::new(jobs)
}

/// The swept worker counts: {1, 2, 4, all}, sorted and deduplicated so
/// a 4-thread machine measures each count once.
fn jobs_sweep() -> Vec<usize> {
    let mut sweep = vec![1, 2, 4, gps_pool::available_parallelism()];
    sweep.sort_unstable();
    sweep.dedup();
    sweep
}

fn main() {
    let stream = build_stream();
    let sweep = jobs_sweep();
    let roster = ParallelEngine::all_solvers();
    let lane_names: Vec<&'static str> = roster.solvers().iter().map(|s| s.name()).collect();

    let mut h = Harness::new();
    let mut group = h.benchmark_group("throughput");
    group
        .sample_size(7)
        .throughput(Throughput::Elements(stream.len() as u64));
    for &jobs in &sweep {
        let pool = ThreadPool::new(jobs);
        for (lane, name) in lane_names.iter().enumerate() {
            let engine = ParallelEngine::new().with_solver(roster.solvers()[lane].clone_box());
            let s = Arc::clone(&stream);
            group.bench_function(&format!("{name}/jobs-{jobs}"), |b| {
                b.iter(|| engine.run_shared(&pool, Arc::clone(&s)))
            });
        }
    }
    // Serial block-size sweep: the batched single-thread `Engine` fed
    // through lock-step EpochBlocks. No pool, no channels, no merge —
    // the SoA lane's pure single-core solve rate, isolated from both
    // thread scaling and parallel plumbing.
    for &bs in &BLOCK_SWEEP {
        for (lane, name) in lane_names.iter().enumerate() {
            let mut engine = Engine::new()
                .with_solver(roster.solvers()[lane].clone_box())
                .with_timing(false);
            let s = Arc::clone(&stream);
            group.bench_function(&format!("{name}/serial-block-{bs}"), |b| {
                b.iter(|| engine.run_blocked(&s, bs))
            });
        }
    }
    group.finish();

    let cells = collect_cells(&sweep, &lane_names, stream.len());
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_throughput.json");
    std::fs::write(path, render_json(&cells, stream.len()))
        .unwrap_or_else(|e| panic!("writing {path}: {e}"));
    println!("wrote {path}");
}

/// Pulls each cell's measurement back out of the telemetry registry
/// (the harness records one `bench.throughput.<id>` sample per cell;
/// `min` is that sample, exact) and derives rates and speedups.
fn collect_cells(sweep: &[usize], lane_names: &[&'static str], epochs: usize) -> Vec<Cell> {
    let snap = gps_telemetry::snapshot();
    let lookup = |id: String| -> f64 {
        let metric = format!("bench.throughput.{id}");
        snap.histograms
            .iter()
            .find(|h| h.name == metric)
            .unwrap_or_else(|| panic!("missing {metric}"))
            .min
    };
    let mut cells = Vec::new();
    for &name in lane_names {
        let baseline_ns = lookup(format!("{name}.jobs-1"));
        for &jobs in sweep {
            let ns = lookup(format!("{name}.jobs-{jobs}"));
            cells.push(Cell {
                solver: name,
                mode: "parallel",
                jobs,
                block_size: 1,
                ns_per_stream: ns,
                fixes_per_sec: epochs as f64 / (ns * 1e-9),
                speedup_vs_jobs1: baseline_ns / ns,
            });
        }
        // Serial block cells are normalized to the serial block-1 cell,
        // so their speedup column reads as the SoA win directly.
        let serial_baseline_ns = lookup(format!("{name}.serial-block-1"));
        for &bs in &BLOCK_SWEEP {
            let ns = lookup(format!("{name}.serial-block-{bs}"));
            cells.push(Cell {
                solver: name,
                mode: "serial",
                jobs: 1,
                block_size: bs,
                ns_per_stream: ns,
                fixes_per_sec: epochs as f64 / (ns * 1e-9),
                speedup_vs_jobs1: serial_baseline_ns / ns,
            });
        }
    }
    cells
}

fn render_json(cells: &[Cell], epochs: usize) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"throughput\",\n");
    out.push_str(&format!("  \"epochs_per_stream\": {epochs},\n"));
    out.push_str(&format!("  \"satellites\": {SATELLITES},\n"));
    out.push_str(&format!("  \"seed\": {SEED},\n"));
    out.push_str(&format!(
        "  \"hardware_threads\": {},\n",
        gps_pool::available_parallelism()
    ));
    out.push_str("  \"results\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let comma = if i + 1 == cells.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"solver\": \"{}\", \"mode\": \"{}\", \"jobs\": {}, \"block_size\": {}, \
             \"ns_per_stream\": {:.0}, \"fixes_per_sec\": {:.1}, \
             \"speedup_vs_jobs1\": {:.3}}}{comma}\n",
            c.solver,
            c.mode,
            c.jobs,
            c.block_size,
            c.ns_per_stream,
            c.fixes_per_sec,
            c.speedup_vs_jobs1
        ));
    }
    out.push_str("  ]\n}\n");
    out
}
