//! Ablation — base-satellite selection (paper §6, extension 1).
//!
//! The paper: "the accuracy can be further improved if we can identify a
//! 'good' satellite to be used as the base ... this satellite is randomly
//! chosen." This bench (a) prints the accuracy effect of each
//! [`BaseSelection`] strategy on noisy epochs, and (b) confirms the
//! selection cost itself is negligible by timing DLO under each strategy.

use gps_bench::harness::Harness;
use gps_bench::{fixture_dataset, fixture_epochs};
use gps_core::metrics::Summary;
use gps_core::{BaseSelection, Dlo, PositionSolver};
use std::hint::black_box;

const STRATEGIES: [(&str, BaseSelection); 4] = [
    ("first(paper)", BaseSelection::First),
    ("highest-elev", BaseSelection::HighestElevation),
    ("lowest-elev", BaseSelection::LowestElevation),
    ("shortest-range", BaseSelection::ShortestRange),
];

fn print_accuracy_ablation() {
    let data = fixture_dataset(0, 61);
    let truth = data.station().position();
    println!("base-selection ablation (DLO, m=8, true clock bias fed in):");
    for (name, strategy) in STRATEGIES {
        let dlo = Dlo::new().with_base_selection(strategy);
        let mut errors = Summary::new();
        for epoch in data.epochs() {
            if epoch.observations().len() < 8 {
                continue;
            }
            let meas = gps_sim::to_measurements(&gps_sim::select_subset(truth, epoch, 8));
            let bias_m = epoch.truth().clock_bias * gps_geodesy::wgs84::SPEED_OF_LIGHT;
            if let Ok(fix) = dlo.solve(&meas, bias_m) {
                errors.push(fix.position.distance_to(truth));
            }
        }
        println!(
            "  {:<15} mean {:>7.2} m  rms {:>7.2} m  (n={})",
            name,
            errors.mean(),
            errors.rms(),
            errors.count()
        );
    }
}

fn bench_base_selection(h: &mut Harness) {
    print_accuracy_ablation();

    let epochs = fixture_epochs(8, 61);
    let mut group = h.benchmark_group("ablation_base_select");
    for (name, strategy) in STRATEGIES {
        let dlo = Dlo::new().with_base_selection(strategy);
        group.bench_with_input(&format!("dlo/{name}"), &epochs, |b, epochs| {
            b.iter(|| {
                for meas in epochs {
                    let _ = black_box(dlo.solve(black_box(meas), 12.0));
                }
            })
        });
    }
    group.finish();
}

fn main() {
    let mut harness = Harness::new();
    bench_base_selection(&mut harness);
}
