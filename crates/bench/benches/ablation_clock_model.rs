//! Ablation — clock-bias prediction model (paper §6, extension 2).
//!
//! Compares three predictors feeding DLO's eq. 4-1 correction:
//! no prediction (ε̂ᴿ = 0), the paper's linear `D + r·t` model (eq. 4-3),
//! and the Kalman-filter extension. Prints the resulting position error
//! (the accuracy dimension) and benchmarks the per-epoch prediction cost
//! (the time dimension — all three are cheap; the point is that the
//! *accuracy* differs).

use gps_bench::fixture_dataset;
use gps_bench::harness::Harness;
use gps_clock::{ClockBiasPredictor, KalmanClockPredictor};
use gps_core::metrics::Summary;
use gps_core::{Dlo, NewtonRaphson, PositionSolver};
use gps_geodesy::wgs84::SPEED_OF_LIGHT;
use std::hint::black_box;

fn print_accuracy_ablation() {
    let data = fixture_dataset(3, 62); // KYCP: the drifting threshold clock
    let truth = data.station().position();
    let nr = NewtonRaphson::default();
    let dlo = Dlo::default();

    // Bootstrap both predictors from the first 20 epochs of NR biases.
    let mut samples = Vec::new();
    for epoch in &data.epochs()[..20] {
        let meas = gps_sim::to_measurements(epoch.observations());
        if let Ok(fix) = nr.solve(&meas, 0.0) {
            if let Some(b) = fix.receiver_bias_m {
                samples.push((epoch.time(), b / SPEED_OF_LIGHT));
            }
        }
    }
    let mut linear = ClockBiasPredictor::new(data.epochs()[0].time());
    linear.fit_drift(&samples);
    if let Some(&(t, b)) = samples.first() {
        linear.calibrate(t, b);
    }
    let mut kalman = KalmanClockPredictor::default_tcxo(data.epochs()[0].time());
    for &(t, b) in &samples {
        kalman.update(t, b);
    }

    let mut err_none = Summary::new();
    let mut err_linear = Summary::new();
    let mut err_kalman = Summary::new();
    for epoch in &data.epochs()[20..] {
        if epoch.observations().len() < 8 {
            continue;
        }
        let meas = gps_sim::to_measurements(&gps_sim::select_subset(truth, epoch, 8));
        let t = epoch.time();
        for (predicted, sink) in [
            (0.0, &mut err_none),
            (linear.predict_range_bias(t), &mut err_linear),
            (kalman.predict_range_bias(t), &mut err_kalman),
        ] {
            if let Ok(fix) = dlo.solve(&meas, predicted) {
                sink.push(fix.position.distance_to(truth));
            }
        }
        // Keep the Kalman filter adapting from per-epoch NR biases
        // (approach 2 of §4.2); the linear model stays as initialized.
        if let Ok(fix) = nr.solve(&gps_sim::to_measurements(epoch.observations()), 0.0) {
            if let Some(b) = fix.receiver_bias_m {
                if epoch.truth().clock_reset {
                    kalman.reset_bias(t, b / SPEED_OF_LIGHT);
                    linear.calibrate(t, b / SPEED_OF_LIGHT);
                } else {
                    kalman.update(t, b / SPEED_OF_LIGHT);
                }
            }
        }
    }
    println!("clock-model ablation (DLO, m=8, KYCP threshold clock):");
    println!(
        "  no prediction   mean {:>10.2} m (n={})",
        err_none.mean(),
        err_none.count()
    );
    println!(
        "  linear D + r·t  mean {:>10.2} m (n={})",
        err_linear.mean(),
        err_linear.count()
    );
    println!(
        "  Kalman filter   mean {:>10.2} m (n={})",
        err_kalman.mean(),
        err_kalman.count()
    );
}

fn bench_predictors(h: &mut Harness) {
    print_accuracy_ablation();

    let t0 = gps_time::GpsTime::EPOCH;
    let mut linear = ClockBiasPredictor::new(t0);
    linear.calibrate(t0, 1e-6);
    let mut kalman = KalmanClockPredictor::default_tcxo(t0);
    kalman.update(t0, 1e-6);
    let query = t0 + gps_time::Duration::from_seconds(300.0);

    let mut group = h.benchmark_group("ablation_clock_model");
    group.bench_function("linear_predict", |b| {
        b.iter(|| black_box(linear.predict_range_bias(black_box(query))))
    });
    group.bench_function("kalman_predict", |b| {
        b.iter(|| black_box(kalman.predict_range_bias(black_box(query))))
    });
    group.bench_function("kalman_update", |b| {
        b.iter(|| {
            let mut kf = kalman;
            kf.update(query, 1.1e-6);
            black_box(kf)
        })
    });
    group.finish();
}

fn main() {
    let mut harness = Harness::new();
    bench_predictors(&mut harness);
}
