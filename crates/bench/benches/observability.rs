//! Observability hot-path overhead.
//!
//! The flight recorder and the HDR histograms sit inside the solver
//! loop, so their per-record cost is a standing tax on every epoch.
//! This bench pins that tax down in ns/record:
//!
//! * `ring_record` — one packed record into a worker ring (the
//!   `// lint: no_alloc` path the parallel lanes hit per solve);
//! * `record_current` — same, but routed through the thread-local
//!   attachment lookup (what instrumented code actually calls);
//! * `record_current_detached` — the disabled-path cost when no ring
//!   is attached (every non-pool thread pays this);
//! * `histogram_record` — one sample into an HDR sub-bucketed
//!   histogram (bin index + two atomic min/max updates);
//! * `span_guard` — a full span enter/exit round trip (two ring
//!   records + one histogram record + the clock reads).
//!
//! Each measured iteration performs `BATCH` operations, so divide the
//! printed per-iteration time by 10 000 for ns/record.

use std::hint::black_box;

use gps_bench::harness::{Harness, Throughput};
use gps_telemetry::recorder::{self, RecordKind};

/// Records per measured iteration; the harness's elements/s column is
/// therefore records/s directly.
const BATCH: u64 = 10_000;

fn main() {
    let mut h = Harness::new();
    let mut group = h.benchmark_group("observability");
    group
        .sample_size(15)
        .throughput(Throughput::Elements(BATCH));

    let ring = recorder::recorder().ring(9_000);
    group.bench_function("ring_record", |b| {
        b.iter(|| {
            for i in 0..BATCH {
                ring.record(RecordKind::LaneSolve, 0, i as u32, black_box(i), i * 3);
            }
        })
    });

    recorder::recorder().attach(9_001);
    group.bench_function("record_current", |b| {
        b.iter(|| {
            for i in 0..BATCH {
                recorder::record_current(RecordKind::LaneSolve, 0, i as u32, black_box(i), i * 3);
            }
        })
    });
    recorder::recorder().detach();

    group.bench_function("record_current_detached", |b| {
        b.iter(|| {
            for i in 0..BATCH {
                recorder::record_current(RecordKind::Marker, 0, 0, black_box(i), 0);
            }
        })
    });

    let histogram = gps_telemetry::histogram("bench.observability.probe_us");
    group.bench_function("histogram_record", |b| {
        b.iter(|| {
            for i in 0..BATCH {
                histogram.record(black_box(0.5 + (i % 997) as f64));
            }
        })
    });

    group.bench_function("span_guard", |b| {
        b.iter(|| {
            for _ in 0..BATCH {
                let guard = gps_telemetry::span("obsbench");
                black_box(&guard);
            }
        })
    });

    group.finish();
}
