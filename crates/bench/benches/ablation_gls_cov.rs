//! Ablation — the DLG covariance structure (paper Theorems 4.1/4.2).
//!
//! Two sweeps:
//!
//! 1. **Model** (accuracy + time, m = 10): how much of DLG's accuracy
//!    edge comes from modeling the *correlation* (the `ρ₁²`
//!    off-diagonals of eq. 4-26) versus merely the unequal variances?
//!    Identity ≡ DLO, so the timing also brackets the GLS overhead.
//! 2. **GLS path** (time, m ∈ {4, 6, 8, 10, 20, 40} over the multi-GNSS
//!    segment): the same full-Ψ solve through the O(m·n) Sherman–Morrison
//!    kernel versus the dense O(m³) whitened-Cholesky and
//!    explicit-inverse lanes. This is the tentpole number for the
//!    structured-covariance work: identical fixes, and the per-fix gap
//!    must *widen* with m.

use gps_bench::harness::Harness;
use gps_bench::{fixture_dataset, fixture_epochs, fixture_epochs_multi};
use gps_core::metrics::Summary;
use gps_core::{CovarianceModel, Dlg, Epoch, GlsPath, Measurement, PositionSolver, SolveContext};
use std::hint::black_box;

const MODELS: [(&str, CovarianceModel); 4] = [
    ("full(paper)", CovarianceModel::Full),
    ("diagonal", CovarianceModel::DiagonalOnly),
    ("identity(=DLO)", CovarianceModel::Identity),
    ("elevation-scaled", CovarianceModel::ElevationScaled),
];

fn print_accuracy_ablation() {
    let data = fixture_dataset(1, 64);
    let truth = data.station().position();
    println!("GLS-covariance ablation (DLG, m=10, true clock bias fed in):");
    for (name, model) in MODELS {
        let dlg = Dlg::new().with_covariance_model(model);
        let mut errors = Summary::new();
        for epoch in data.epochs() {
            if epoch.observations().len() < 10 {
                continue;
            }
            let meas = gps_sim::to_measurements(&gps_sim::select_subset(truth, epoch, 10));
            let bias_m = epoch.truth().clock_bias * gps_geodesy::wgs84::SPEED_OF_LIGHT;
            if let Ok(fix) = dlg.solve(&meas, bias_m) {
                errors.push(fix.position.distance_to(truth));
            }
        }
        println!(
            "  {:<15} mean {:>7.2} m  rms {:>7.2} m  (n={})",
            name,
            errors.mean(),
            errors.rms(),
            errors.count()
        );
    }
}

fn bench_covariances(h: &mut Harness) {
    print_accuracy_ablation();

    let epochs = fixture_epochs(10, 64);
    let mut group = h.benchmark_group("ablation_gls_cov");
    if quick() {
        group.sample_size(3);
    }
    for (name, model) in MODELS {
        let dlg = Dlg::new().with_covariance_model(model);
        group.bench_with_input(&format!("dlg/{name}"), &epochs, |b, epochs| {
            b.iter(|| {
                for meas in epochs {
                    let _ = black_box(dlg.solve(black_box(meas), 12.0));
                }
            })
        });
    }
    group.finish();
}

/// `GPS_BENCH_QUICK=1` trims both sweeps to a smoke run — 3 samples per
/// cell, a few epochs per shape — so `scripts/ci.sh` can exercise the
/// full path × m matrix without bench-grade runtimes. Committed numbers
/// must come from a run without the variable.
fn quick() -> bool {
    std::env::var_os("GPS_BENCH_QUICK").is_some_and(|v| v != "0")
}

const PATHS: [(&str, GlsPath); 3] = [
    ("structured", GlsPath::Structured),
    ("whitened", GlsPath::DenseWhitened),
    ("explicit-inv", GlsPath::DenseExplicit),
];

const SWEEP_M: [usize; 6] = [4, 6, 8, 10, 20, 40];

/// One warm-context pass over every epoch (the throughput-style inner
/// loop: no allocation inside the timed region after warmup).
fn solve_all(dlg: &Dlg, epochs: &[Vec<Measurement>], ctx: &mut SolveContext) {
    for meas in epochs {
        let _ = black_box(gps_core::Solver::solve(
            dlg,
            &Epoch::new(black_box(meas), 12.0),
            ctx,
        ));
    }
}

fn bench_gls_paths(h: &mut Harness) {
    let mut group = h.benchmark_group("ablation_gls_path");
    if quick() {
        group.sample_size(3);
    }
    for m in SWEEP_M {
        let mut epochs = fixture_epochs_multi(m, 64);
        assert!(!epochs.is_empty(), "no multi-GNSS epoch reached m = {m}");
        if quick() {
            epochs.truncate(4);
        }
        for (name, path) in PATHS {
            let dlg = Dlg::new().with_gls_path(path);
            let mut ctx = SolveContext::new();
            // Warm the context so resize-to-shape allocations happen
            // outside the timed region.
            solve_all(&dlg, &epochs, &mut ctx);
            group.bench_with_input(&format!("dlg/{name}/m{m}"), &epochs, |b, epochs| {
                b.iter(|| solve_all(&dlg, epochs, &mut ctx))
            });
        }
    }
    group.finish();
}

fn main() {
    let mut harness = Harness::new();
    bench_covariances(&mut harness);
    bench_gls_paths(&mut harness);
}
