//! Ablation — the DLG covariance structure (paper Theorems 4.1/4.2).
//!
//! How much of DLG's accuracy edge comes from modeling the *correlation*
//! (the `ρ₁²` off-diagonals of eq. 4-26) versus merely the unequal
//! variances? Prints the accuracy of DLG under Full / DiagonalOnly /
//! Identity covariances, then benchmarks each (Identity ≡ DLO, so the
//! timing also brackets the GLS overhead).

use gps_bench::harness::Harness;
use gps_bench::{fixture_dataset, fixture_epochs};
use gps_core::metrics::Summary;
use gps_core::{CovarianceModel, Dlg, PositionSolver};
use std::hint::black_box;

const MODELS: [(&str, CovarianceModel); 4] = [
    ("full(paper)", CovarianceModel::Full),
    ("diagonal", CovarianceModel::DiagonalOnly),
    ("identity(=DLO)", CovarianceModel::Identity),
    ("elevation-scaled", CovarianceModel::ElevationScaled),
];

fn print_accuracy_ablation() {
    let data = fixture_dataset(1, 64);
    let truth = data.station().position();
    println!("GLS-covariance ablation (DLG, m=10, true clock bias fed in):");
    for (name, model) in MODELS {
        let dlg = Dlg::new().with_covariance_model(model);
        let mut errors = Summary::new();
        for epoch in data.epochs() {
            if epoch.observations().len() < 10 {
                continue;
            }
            let meas = gps_sim::to_measurements(&gps_sim::select_subset(truth, epoch, 10));
            let bias_m = epoch.truth().clock_bias * gps_geodesy::wgs84::SPEED_OF_LIGHT;
            if let Ok(fix) = dlg.solve(&meas, bias_m) {
                errors.push(fix.position.distance_to(truth));
            }
        }
        println!(
            "  {:<15} mean {:>7.2} m  rms {:>7.2} m  (n={})",
            name,
            errors.mean(),
            errors.rms(),
            errors.count()
        );
    }
}

fn bench_covariances(h: &mut Harness) {
    print_accuracy_ablation();

    let epochs = fixture_epochs(10, 64);
    let mut group = h.benchmark_group("ablation_gls_cov");
    for (name, model) in MODELS {
        let dlg = Dlg::new().with_covariance_model(model);
        group.bench_with_input(&format!("dlg/{name}"), &epochs, |b, epochs| {
            b.iter(|| {
                for meas in epochs {
                    let _ = black_box(dlg.solve(black_box(meas), 12.0));
                }
            })
        });
    }
    group.finish();
}

fn main() {
    let mut harness = Harness::new();
    bench_covariances(&mut harness);
}
