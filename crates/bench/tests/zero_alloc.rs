//! Proof that the [`Solver`] + [`SolveContext`] hot path is
//! allocation-free once warm.
//!
//! A counting global allocator tallies every `alloc`/`realloc` made by
//! the test binary. Each solver is run once to warm its context (the
//! buffers grow to the epoch's dimensions on first use), then the
//! counter is sampled around a batch of steady-state solves: the delta
//! must be exactly zero. The same check covers the batched [`Engine`]
//! and the RAIM happy path, which together form the per-epoch loop of
//! every downstream consumer.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use gps_bench::{fixture_epochs, fixture_epochs_multi};
use gps_core::{
    Bancroft, Dlg, Dlo, Engine, Epoch, EpochBlock, EpochJob, GlsPath, NewtonRaphson,
    ParallelEngine, Raim, SolveContext, Solver, WorkerLanes, BLOCK_LANES,
};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocation_count() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Runs `f` and returns how many heap allocations it performed.
fn allocations_during(mut f: impl FnMut()) -> u64 {
    let before = allocation_count();
    f();
    allocation_count() - before
}

fn assert_zero_alloc_after_warmup(solver: &dyn Solver, bias: f64) {
    // Epochs of varying size so buffer reuse is exercised across
    // dimension changes, not just identical repeats.
    let epochs: Vec<_> = [6usize, 8, 10, 7]
        .iter()
        .flat_map(|&m| fixture_epochs(m, 97).into_iter().take(4))
        .collect();
    assert!(!epochs.is_empty(), "fixture produced no epochs");

    let mut ctx = SolveContext::new();
    // Warm-up: lets every scratch buffer grow to the largest epoch.
    for meas in &epochs {
        let _ = solver.solve(&Epoch::new(meas, bias), &mut ctx);
    }

    let allocs = allocations_during(|| {
        for meas in &epochs {
            let result = solver.solve(&Epoch::new(meas, bias), &mut ctx);
            assert!(result.is_ok(), "{} failed on clean epoch", solver.name());
        }
    });
    assert_eq!(
        allocs,
        0,
        "{} allocated {allocs} time(s) after warm-up",
        solver.name()
    );
}

#[test]
fn newton_raphson_is_allocation_free_when_warm() {
    assert_zero_alloc_after_warmup(&NewtonRaphson::default(), 0.0);
}

#[test]
fn dlo_is_allocation_free_when_warm() {
    assert_zero_alloc_after_warmup(&Dlo::default(), 12.0);
}

#[test]
fn dlg_is_allocation_free_when_warm() {
    assert_zero_alloc_after_warmup(&Dlg::default(), 12.0);
}

/// Heap-lane probe at m > 16: epochs this large bypass the stack
/// kernels, so the warm loop exercises the solver's heap path
/// specifically. (The explicit-inverse DLG lane is excluded: it is the
/// deliberately allocating faithful-to-the-text ablation reference.)
fn assert_zero_alloc_large_m(solver: &dyn Solver, label: &str) {
    let epochs: Vec<_> = [20usize, 40, 28]
        .iter()
        .flat_map(|&m| fixture_epochs_multi(m, 97).into_iter().take(3))
        .collect();
    assert!(!epochs.is_empty(), "multi-GNSS fixture produced no epochs");

    let mut ctx = SolveContext::new();
    for meas in &epochs {
        let _ = solver.solve(&Epoch::new(meas, 12.0), &mut ctx);
    }

    let allocs = allocations_during(|| {
        for meas in &epochs {
            let result = solver.solve(&Epoch::new(meas, 12.0), &mut ctx);
            assert!(result.is_ok(), "{label} failed on clean epoch");
        }
    });
    assert_eq!(
        allocs, 0,
        "{label} allocated {allocs} time(s) after warm-up"
    );
}

#[test]
fn dlg_structured_gls_large_m_is_allocation_free_when_warm() {
    // The heap Sherman–Morrison path: covariance_rank1_into filling the
    // reused cov_diag buffer plus gls_rank1_into with the caller's
    // scratch. Varying m exercises the diag/scratch resize-reuse.
    assert_zero_alloc_large_m(&Dlg::default(), "structured-GLS DLG");
}

#[test]
fn dlg_dense_whitened_large_m_is_allocation_free_when_warm() {
    // The dense ablation baseline must stay zero-alloc too, so the
    // θ-vs-m comparison measures the O(m³) factorization, not malloc.
    assert_zero_alloc_large_m(
        &Dlg::default().with_gls_path(GlsPath::DenseWhitened),
        "dense-whitened DLG",
    );
}

#[test]
fn bancroft_is_allocation_free_when_warm() {
    assert_zero_alloc_after_warmup(&Bancroft, 0.0);
}

#[test]
fn engine_epoch_loop_is_allocation_free_when_warm() {
    let epochs: Vec<_> = [6usize, 8, 10]
        .iter()
        .flat_map(|&m| fixture_epochs(m, 101).into_iter().take(4))
        .collect();
    assert!(!epochs.is_empty(), "fixture produced no epochs");

    let mut engine = Engine::all_solvers();
    for meas in &epochs {
        engine.run_epoch(meas, 12.0);
    }

    let allocs = allocations_during(|| {
        for meas in &epochs {
            let solved = engine.run_epoch(meas, 12.0);
            assert_eq!(solved, engine.lanes().len(), "a lane failed a clean epoch");
        }
    });
    assert_eq!(allocs, 0, "Engine allocated {allocs} time(s) after warm-up");
}

#[test]
fn parallel_worker_epoch_loop_is_allocation_free_when_warm() {
    // A pool worker's steady state is WorkerLanes::solve_into with a
    // reused outcome buffer; everything else (job boxing, the result
    // channel) happens once per batch, not once per epoch. Varying
    // epoch sizes exercise buffer reuse across dimension changes.
    let epochs: Vec<_> = [6usize, 8, 10, 7]
        .iter()
        .flat_map(|&m| fixture_epochs(m, 107).into_iter().take(4))
        .collect();
    assert!(!epochs.is_empty(), "fixture produced no epochs");

    let roster = ParallelEngine::all_solvers();
    let mut worker = WorkerLanes::new(roster.solvers());
    let mut out = Vec::new();
    for meas in &epochs {
        worker.solve_into(&Epoch::new(meas, 12.0), &mut out);
    }

    let allocs = allocations_during(|| {
        for meas in &epochs {
            worker.solve_into(&Epoch::new(meas, 12.0), &mut out);
            assert_eq!(out.len(), worker.len(), "one outcome per lane");
            assert!(out.iter().all(Result::is_ok), "a lane failed a clean epoch");
        }
    });
    assert_eq!(
        allocs, 0,
        "worker lanes allocated {allocs} time(s) after warm-up"
    );
}

/// A uniform-shape job stream for block feeding: `count` epochs of
/// `m` satellites each.
fn block_stream(m: usize, count: usize, seed: u64) -> Vec<EpochJob> {
    fixture_epochs(m, seed)
        .into_iter()
        .cycle()
        .take(count)
        .map(|meas| EpochJob::new(meas, 12.0))
        .collect()
}

#[test]
fn dlo_soa_block_path_is_allocation_free_when_warm() {
    // The SoA kernel works entirely in stack arrays; the only heap
    // touched is the caller's reused `out` vector, which warm-up grows
    // to BLOCK_LANES once.
    let jobs = block_stream(6, 2 * BLOCK_LANES, 109);
    let solver = Dlo::default();
    let mut ctx = SolveContext::new();
    let mut out = Vec::new();

    let mut feed = |out: &mut Vec<_>| {
        let mut rest = jobs.as_slice();
        let mut solved = 0usize;
        while let Some((block, tail)) = EpochBlock::split_first(rest, BLOCK_LANES) {
            out.clear();
            solver.solve_block(&block, &mut ctx, out);
            solved += out.iter().filter(|r| r.is_ok()).count();
            rest = tail;
        }
        solved
    };
    let warm = feed(&mut out);
    assert_eq!(warm, jobs.len(), "a lane failed a clean epoch");

    let allocs = allocations_during(|| {
        assert_eq!(feed(&mut out), jobs.len());
    });
    assert_eq!(
        allocs, 0,
        "DLO block path allocated {allocs} time(s) after warm-up"
    );
}

#[test]
fn engine_blocked_loop_is_allocation_free_when_warm() {
    let jobs = block_stream(8, 3 * BLOCK_LANES, 113);
    let mut engine = Engine::all_solvers();
    // Warm-up grows every lane's context and block scratch.
    let warm = engine.run_blocked(&jobs, BLOCK_LANES);
    assert_eq!(warm, jobs.len() * engine.lanes().len());

    let allocs = allocations_during(|| {
        let solved = engine.run_blocked(&jobs, BLOCK_LANES);
        assert_eq!(solved, jobs.len() * engine.lanes().len());
    });
    assert_eq!(
        allocs, 0,
        "Engine block mode allocated {allocs} time(s) after warm-up"
    );
}

#[test]
fn parallel_worker_block_loop_is_allocation_free_when_warm() {
    // A blocked pool worker's steady state: solve_block_into with the
    // reused per-lane outcome buffers. (The per-epoch channel sends
    // clone the results; that cost is per-batch plumbing outside the
    // solve loop and outside this probe.)
    let jobs = block_stream(6, 2 * BLOCK_LANES, 127);
    let roster = ParallelEngine::all_solvers();
    let mut worker = WorkerLanes::new(roster.solvers());
    let mut per_lane: Vec<Vec<_>> = (0..worker.len()).map(|_| Vec::new()).collect();

    let feed = |worker: &mut WorkerLanes, per_lane: &mut [Vec<_>]| {
        let mut rest = jobs.as_slice();
        let mut offset = 0u32;
        while let Some((block, tail)) = EpochBlock::split_first(rest, BLOCK_LANES) {
            worker.solve_block_into(&block, offset, per_lane);
            offset += block.lanes() as u32;
            rest = tail;
        }
    };
    feed(&mut worker, &mut per_lane);

    let allocs = allocations_during(|| {
        feed(&mut worker, &mut per_lane);
    });
    assert_eq!(
        allocs, 0,
        "worker block lanes allocated {allocs} time(s) after warm-up"
    );
}

#[test]
fn raim_happy_path_is_allocation_free_when_warm() {
    let epochs = fixture_epochs(8, 103);
    assert!(!epochs.is_empty(), "fixture produced no epochs");

    // Generous threshold: clean fixtures never trigger an exclusion, so
    // the wrapper should solve straight through on the caller's epoch.
    let raim = Raim::new(NewtonRaphson::default(), 1.0e6);
    let mut ctx = SolveContext::new();
    for meas in &epochs {
        let _ = raim.solve_with(&Epoch::new(meas, 0.0), &mut ctx);
    }

    let allocs = allocations_during(|| {
        for meas in &epochs {
            let result = raim.solve_with(&Epoch::new(meas, 0.0), &mut ctx);
            assert!(result.is_ok(), "RAIM failed on clean epoch");
        }
    });
    assert_eq!(allocs, 0, "RAIM allocated {allocs} time(s) after warm-up");
}
