//! A hand-rolled benchmark harness (the offline stand-in for Criterion).
//!
//! Keeps the call-site shape Criterion established — `benchmark_group`,
//! `bench_function`, `bench_with_input`, `Bencher::iter` — so the bench
//! files read the same, while staying dependency-free:
//!
//! * per-sample iteration counts are auto-calibrated so one sample costs
//!   ≥ ~2 ms of wall clock (`std::time::Instant` is the only clock);
//! * results report median / mean / min ns-per-iteration over the
//!   samples, plus derived throughput when one is declared;
//! * every result is also recorded into the `gps-telemetry` registry
//!   (histogram `bench.<group>.<id>`, nanoseconds), so `--telemetry-out`
//!   style tooling can consume bench runs too.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Per-iteration unit used to derive a throughput figure.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The measured closure processes this many logical elements.
    Elements(u64),
    /// The measured closure processes this many bytes.
    Bytes(u64),
}

/// Statistics of one benchmark: nanoseconds per iteration.
#[derive(Debug, Clone, Copy)]
pub struct Sampled {
    /// Median ns/iter over the samples.
    pub median_ns: f64,
    /// Mean ns/iter over the samples.
    pub mean_ns: f64,
    /// Fastest sample, ns/iter.
    pub min_ns: f64,
    /// Iterations per sample (after calibration).
    pub iters_per_sample: u64,
    /// Number of timed samples.
    pub samples: usize,
}

/// The timing callback handed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    sample_count: usize,
    result: Option<Sampled>,
}

impl Bencher {
    /// Calibrates an iteration count, then times `sample_count` samples
    /// of `f` and stores ns-per-iteration statistics.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        // Calibrate: grow the batch until one sample costs ≥ ~2 ms.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(2) || iters >= 1 << 20 {
                break;
            }
            iters *= 2;
        }

        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_count);
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            samples.push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let median_ns = samples[samples.len() / 2];
        let mean_ns = samples.iter().sum::<f64>() / samples.len() as f64;
        self.result = Some(Sampled {
            median_ns,
            mean_ns,
            min_ns: samples[0],
            iters_per_sample: iters,
            samples: samples.len(),
        });
    }
}

/// A named group of related benchmarks; prints a header on creation and
/// one line per finished benchmark.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    sample_count: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Overrides the number of timed samples (default 15).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_count = n.max(3);
        self
    }

    /// Declares how much work one iteration performs, enabling the
    /// derived elements/s or MB/s column.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark, printing and recording the result.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            sample_count: self.sample_count,
            result: None,
        };
        f(&mut bencher);
        let Some(s) = bencher.result else {
            println!("  {id:<28} (no measurement: Bencher::iter never called)");
            return self;
        };
        let metric = format!("bench.{}.{}", self.name, id.replace('/', "."));
        // lint: metric bench.*
        gps_telemetry::histogram(&metric).record(s.median_ns);
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) => {
                format!("  {:>10.0} elem/s", n as f64 / (s.median_ns * 1e-9))
            }
            Some(Throughput::Bytes(n)) => {
                format!("  {:>8.1} MB/s", n as f64 / (s.median_ns * 1e-9) / 1e6)
            }
            None => String::new(),
        };
        println!(
            "  {id:<28} median {:>12} mean {:>12} min {:>12}{rate}  ({} × {} iters)",
            format_ns(s.median_ns),
            format_ns(s.mean_ns),
            format_ns(s.min_ns),
            s.samples,
            s.iters_per_sample,
        );
        self
    }

    /// Like [`BenchmarkGroup::bench_function`], with an explicit input
    /// reference and an id suffix (Criterion's `BenchmarkId::new` shape).
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: &str,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (prints a trailing newline for readability).
    pub fn finish(&mut self) {
        println!();
    }
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Harness {}

impl Harness {
    /// Creates the harness.
    #[must_use]
    pub fn new() -> Self {
        Harness {}
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("{name}:");
        BenchmarkGroup {
            name: name.to_owned(),
            sample_count: 15,
            throughput: None,
        }
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something_positive() {
        let mut b = Bencher {
            sample_count: 3,
            result: None,
        };
        b.iter(|| std::hint::black_box(1u64.wrapping_mul(3)));
        let s = b.result.expect("iter stores a result");
        assert!(s.median_ns > 0.0);
        assert!(s.min_ns <= s.median_ns);
        assert_eq!(s.samples, 3);
    }

    #[test]
    fn group_runs_and_records_metric() {
        let mut h = Harness::new();
        let mut g = h.benchmark_group("harness_selftest");
        g.sample_size(3);
        g.bench_function("noop", |b| b.iter(|| 1 + 1));
        g.finish();
        let snap = gps_telemetry::snapshot();
        assert!(
            snap.histograms
                .iter()
                .any(|h| h.name == "bench.harness_selftest.noop"),
            "bench result recorded into telemetry registry"
        );
    }

    #[test]
    fn format_ns_scales_units() {
        assert!(format_ns(12.0).ends_with("ns"));
        assert!(format_ns(12_000.0).ends_with("µs"));
        assert!(format_ns(12_000_000.0).ends_with("ms"));
        assert!(format_ns(12_000_000_000.0).ends_with("s"));
    }
}
