//! Shared fixtures and the timing harness for the benchmarks.
//!
//! Each bench regenerates the workload of one paper table/figure (or one
//! ablation from DESIGN.md). The fixtures here build realistic epochs
//! once, outside the measured region; [`harness`] provides the
//! dependency-free measurement loop the benches run on.

pub mod harness;

use gps_core::Measurement;
use gps_obs::{paper_stations, DataSet, DatasetGenerator};
use gps_sim::{select_subset, to_measurements};

/// A small but representative dataset for station `idx` (0..4): one hour
/// at 30 s cadence with the standard error budget.
#[must_use]
pub fn fixture_dataset(idx: usize, seed: u64) -> DataSet {
    DatasetGenerator::new(seed)
        .epoch_interval_s(30.0)
        .epoch_count(120)
        .elevation_mask_deg(5.0)
        .generate(&paper_stations()[idx])
}

/// Measurement sets with exactly `m` satellites, one per epoch that has
/// enough in view, drawn from the SRZN fixture.
#[must_use]
pub fn fixture_epochs(m: usize, seed: u64) -> Vec<Vec<Measurement>> {
    let data = fixture_dataset(0, seed);
    let station = data.station().position();
    data.epochs()
        .iter()
        .filter(|e| e.observations().len() >= m)
        .map(|e| to_measurements(&select_subset(station, e, m)))
        .collect()
}

/// Like [`fixture_epochs`], but over the multi-GNSS space segment so
/// `m` can reach ≈ 40 (the GPS-only fixture tops out near 14 visible).
/// Used by the large-constellation sweeps of the GLS ablation.
#[must_use]
pub fn fixture_epochs_multi(m: usize, seed: u64) -> Vec<Vec<Measurement>> {
    let data = DatasetGenerator::new(seed)
        .epoch_interval_s(30.0)
        .epoch_count(120)
        .elevation_mask_deg(5.0)
        .constellation(gps_orbits::Constellation::multi_gnss_nominal())
        .generate(&paper_stations()[0]);
    let station = data.station().position();
    data.epochs()
        .iter()
        .filter(|e| e.observations().len() >= m)
        .map(|e| to_measurements(&select_subset(station, e, m)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_are_nonempty_and_sized() {
        let epochs = fixture_epochs(8, 1);
        assert!(!epochs.is_empty());
        assert!(epochs.iter().all(|e| e.len() == 8));
    }

    #[test]
    fn multi_gnss_fixture_reaches_m_40() {
        let epochs = fixture_epochs_multi(40, 1);
        assert!(!epochs.is_empty(), "no epoch reached m = 40");
        assert!(epochs.iter().all(|e| e.len() == 40));
    }

    #[test]
    fn dataset_fixture_covers_all_stations() {
        for idx in 0..4 {
            let data = fixture_dataset(idx, 2);
            assert_eq!(data.epochs().len(), 120);
        }
    }
}
