//! Parallel batch positioning: an epoch stream sharded across a
//! [`gps_pool::ThreadPool`].
//!
//! Epochs are independent — nothing a solver computes at epoch *i*
//! feeds epoch *i+1* — so a batch of them is embarrassingly parallel.
//! [`ParallelEngine`] exploits that while preserving the serial
//! [`Engine`](crate::Engine)'s semantics exactly:
//!
//! * **Sharding.** `N` worker loops (one pool job each) pull epoch
//!   indices from a shared atomic cursor. Dynamic pulling, not static
//!   chunking: a slow epoch (NR needing extra iterations, a RAIM-ish
//!   pathological geometry) delays only its own worker.
//! * **Warm per-worker scratch.** Every worker owns one
//!   [`WorkerLanes`]: a private clone of each solver plus one
//!   [`SolveContext`] per lane. After a worker's first epoch its
//!   buffers are warm, so the steady-state solve path allocates
//!   nothing (pinned by `crates/bench/tests/zero_alloc.rs`).
//! * **Deterministic merge.** Each result is stamped with its epoch
//!   sequence number and sent over an `mpsc` channel; the caller
//!   reassembles them into epoch order. Because the `Solver` contract
//!   guarantees solves are deterministic and independent of context
//!   history, the merged output is **bit-for-bit identical** to the
//!   serial engine's for any worker count (pinned by
//!   `tests/parallel_parity.rs`).
//!
//! Timing caveat: [`LaneStats::total_time`] aggregated from a parallel
//! run sums *per-worker* wall-clock and therefore depends on
//! scheduling; the solved/failed/epoch counts and every `Solution` do
//! not.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use gps_pool::ThreadPool;
use gps_telemetry::recorder::{self, RecordKind};

use crate::{
    Bancroft, Dlg, Dlo, Epoch, EpochBlock, LaneStats, Measurement, NewtonRaphson, Solution,
    SolveContext, SolveError, Solver,
};

/// One owned epoch of a batch stream: the measurements plus the
/// predicted receiver range bias (metres) that a serial caller would
/// pass to [`Engine::run_epoch`](crate::Engine::run_epoch).
#[derive(Debug, Clone)]
pub struct EpochJob {
    /// Satellite positions and pseudoranges for this epoch.
    pub measurements: Vec<Measurement>,
    /// Externally predicted receiver range bias `ε̂ᴿ`, metres.
    pub predicted_receiver_bias_m: f64,
}

impl EpochJob {
    /// Bundles one epoch's measurements with its clock prediction.
    #[must_use]
    pub fn new(measurements: Vec<Measurement>, predicted_receiver_bias_m: f64) -> Self {
        EpochJob {
            measurements,
            predicted_receiver_bias_m,
        }
    }
}

/// One worker's private solver state: a clone of every lane's solver
/// plus a warm [`SolveContext`] per lane and per-lane accumulated
/// solve time.
///
/// This is the unit the zero-allocation probe drives: once
/// [`WorkerLanes::solve_into`] has run at the stream's maximum
/// satellite count, subsequent calls perform no heap allocation
/// (given an output buffer with warm capacity).
#[derive(Debug)]
pub struct WorkerLanes {
    lanes: Vec<(Box<dyn Solver>, SolveContext)>,
    lane_time: Vec<Duration>,
    /// Per-lane observability handles, cached at construction so the
    /// solve path records with atomics only.
    lane_meta: Vec<LaneMeta>,
}

/// Cached per-lane telemetry handles: the exact-tail latency histogram
/// `core.lane_solve_us.<solver>` plus the flight-recorder name tag.
#[derive(Debug)]
struct LaneMeta {
    latency_us: gps_telemetry::Histogram,
    tag: u64,
}

impl WorkerLanes {
    /// Builds fresh per-worker state from a solver roster.
    #[must_use]
    pub fn new(solvers: &[Box<dyn Solver>]) -> Self {
        WorkerLanes {
            lanes: solvers
                .iter()
                .map(|s| (s.clone_box(), SolveContext::new()))
                .collect(),
            lane_time: vec![Duration::ZERO; solvers.len()],
            lane_meta: solvers
                .iter()
                .map(|s| LaneMeta {
                    latency_us: gps_telemetry::histogram(&format!(
                        "core.lane_solve_us.{}",
                        s.name()
                    )),
                    tag: recorder::tag(s.name()),
                })
                .collect(),
        }
    }

    /// Number of solver lanes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lanes.len()
    }

    /// `true` when no solvers were configured.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lanes.is_empty()
    }

    /// Wall-clock spent inside each lane's solver so far, lane order.
    #[must_use]
    pub fn lane_time(&self) -> &[Duration] {
        &self.lane_time
    }

    /// Runs one epoch through every lane, clearing `out` and pushing
    /// one result per lane in lane order. Epoch id 0 in flight records;
    /// see [`WorkerLanes::solve_epoch_into`] for id-stamped streams.
    // lint: no_alloc
    pub fn solve_into(&mut self, epoch: &Epoch<'_>, out: &mut Vec<Result<Solution, SolveError>>) {
        self.solve_epoch_into(epoch, 0, out);
    }

    /// Like [`WorkerLanes::solve_into`] with the stream position
    /// stamped into every flight record for this epoch.
    ///
    /// Steady-state allocation-free: the contexts reuse their warm
    /// buffers, `out` is only written within its existing capacity once
    /// it has held a full lane set before, and every observability hook
    /// (the `core.lane_solve_us.*` exact-tail histograms, the
    /// flight-recorder lane records) touches atomics only. Per-lane
    /// timing uses chained timestamps (`n + 1` clock reads for `n`
    /// lanes).
    // lint: no_alloc
    pub fn solve_epoch_into(
        &mut self,
        epoch: &Epoch<'_>,
        epoch_id: u32,
        out: &mut Vec<Result<Solution, SolveError>>,
    ) {
        out.clear();
        recorder::record_current(RecordKind::EpochStart, epoch.len() as u16, epoch_id, 0, 0);
        let mut stamp = Instant::now();
        for (((solver, ctx), time), meta) in self
            .lanes
            .iter_mut()
            .zip(self.lane_time.iter_mut())
            .zip(self.lane_meta.iter())
        {
            let result = solver.solve(epoch, ctx);
            let now = Instant::now();
            let took = now - stamp;
            *time += took;
            meta.latency_us.record(took.as_secs_f64() * 1e6);
            let took_ns = took.as_nanos() as u64;
            match &result {
                Ok(_) => {
                    recorder::record_current(RecordKind::LaneSolve, 0, epoch_id, meta.tag, took_ns)
                }
                Err(e) => recorder::record_current(
                    RecordKind::LaneError,
                    e.code(),
                    epoch_id,
                    meta.tag,
                    took_ns,
                ),
            }
            out.push(result);
            stamp = now;
        }
    }

    /// Runs one same-shape [`EpochBlock`] through every lane, filling
    /// `per_lane[lane]` with one result per block epoch (lane order
    /// outer, epoch order inner). `per_lane.len()` must equal
    /// [`WorkerLanes::len`].
    ///
    /// Block-mode observability is coarser than the per-epoch path:
    /// one flight record and one `core.lane_solve_us.*` sample (the
    /// block's mean per-epoch latency) per lane per block, stamped with
    /// the block's first epoch id.
    // lint: no_alloc
    pub fn solve_block_into(
        &mut self,
        block: &EpochBlock<'_>,
        first_epoch_id: u32,
        per_lane: &mut [Vec<Result<Solution, SolveError>>],
    ) {
        debug_assert_eq!(per_lane.len(), self.lanes.len());
        crate::instrument::block_lanes().record(block.lanes() as f64);
        recorder::record_current(
            RecordKind::EpochStart,
            block.measurements_per_epoch() as u16,
            first_epoch_id,
            0,
            0,
        );
        let lanes_f = block.lanes() as f64;
        let mut stamp = Instant::now();
        for ((((solver, ctx), time), meta), out) in self
            .lanes
            .iter_mut()
            .zip(self.lane_time.iter_mut())
            .zip(self.lane_meta.iter())
            .zip(per_lane.iter_mut())
        {
            out.clear();
            solver.solve_block(block, ctx, out);
            let now = Instant::now();
            let took = now - stamp;
            *time += took;
            meta.latency_us.record(took.as_secs_f64() * 1e6 / lanes_f);
            recorder::record_current(
                RecordKind::LaneSolve,
                block.lanes() as u16,
                first_epoch_id,
                meta.tag,
                took.as_nanos() as u64,
            );
            stamp = now;
        }
    }
}

/// What one worker did during a [`ParallelEngine::run`].
#[derive(Debug, Clone)]
pub struct WorkerReport {
    /// Worker index, `0..jobs`.
    pub worker: usize,
    /// Epochs this worker claimed and solved.
    pub epochs: u64,
    /// Wall-clock the worker spent solving (all lanes).
    pub busy: Duration,
    /// Busy time split per lane, lane order.
    pub lane_time: Vec<Duration>,
}

impl WorkerReport {
    /// Fraction of `elapsed` this worker spent solving, in `[0, 1]`-ish
    /// (can exceed 1 marginally through clock granularity).
    #[must_use]
    pub fn utilization(&self, elapsed: Duration) -> f64 {
        if elapsed.is_zero() {
            0.0
        } else {
            self.busy.as_secs_f64() / elapsed.as_secs_f64()
        }
    }
}

/// The merged outcome of one parallel batch run.
#[derive(Debug, Clone)]
pub struct ParallelRun {
    /// Per-epoch, per-lane results, in epoch order then lane order —
    /// exactly what a serial [`Engine`](crate::Engine) would have
    /// recorded epoch by epoch.
    pub outcomes: Vec<Vec<Result<Solution, SolveError>>>,
    /// Lane (solver) names, lane order.
    pub lane_names: Vec<&'static str>,
    /// Aggregated per-lane statistics. Counts are deterministic;
    /// `total_time` sums per-worker clocks and is scheduling-dependent.
    pub lane_stats: Vec<LaneStats>,
    /// Per-worker activity, sorted by worker index.
    pub workers: Vec<WorkerReport>,
    /// Wall-clock of the whole batch (shard + solve + merge).
    pub elapsed: Duration,
}

impl ParallelRun {
    /// Epochs in the batch.
    #[must_use]
    pub fn epochs(&self) -> usize {
        self.outcomes.len()
    }

    /// Successful fixes per second for one lane (lane solved count over
    /// the batch wall-clock).
    #[must_use]
    pub fn lane_fixes_per_sec(&self, lane: usize) -> f64 {
        let elapsed = self.elapsed.as_secs_f64();
        if elapsed <= 0.0 {
            0.0
        } else {
            self.lane_stats[lane].solved as f64 / elapsed
        }
    }

    /// Successful fixes per second across all lanes.
    #[must_use]
    pub fn total_fixes_per_sec(&self) -> f64 {
        let elapsed = self.elapsed.as_secs_f64();
        if elapsed <= 0.0 {
            0.0
        } else {
            self.lane_stats.iter().map(|s| s.solved).sum::<u64>() as f64 / elapsed
        }
    }
}

/// Parallel counterpart of the batched [`Engine`](crate::Engine): the
/// same solver roster, run over a whole epoch stream at once across a
/// [`ThreadPool`].
///
/// # Example
///
/// ```
/// use gps_core::{EpochJob, Measurement, ParallelEngine};
/// use gps_geodesy::Ecef;
/// use gps_pool::ThreadPool;
///
/// let truth = Ecef::new(6.371e6, 1.0e5, -2.0e5);
/// let sats = [
///     Ecef::new(2.0e7, 0.0, 1.7e7),
///     Ecef::new(1.5e7, 1.8e7, 0.9e7),
///     Ecef::new(1.6e7, -1.7e7, 1.0e7),
///     Ecef::new(2.5e7, 0.4e7, -0.6e7),
///     Ecef::new(0.8e7, 1.4e7, 2.0e7),
/// ];
/// let meas: Vec<Measurement> = sats
///     .iter()
///     .map(|&s| Measurement::new(s, s.distance_to(truth)))
///     .collect();
/// let stream: Vec<EpochJob> = (0..32).map(|_| EpochJob::new(meas.clone(), 0.0)).collect();
///
/// let pool = ThreadPool::new(2);
/// let run = ParallelEngine::all_solvers().run(&pool, stream);
/// assert_eq!(run.epochs(), 32);
/// for stats in &run.lane_stats {
///     assert_eq!(stats.solved, 32);
/// }
/// ```
#[derive(Debug, Clone, Default)]
pub struct ParallelEngine {
    solvers: Vec<Box<dyn Solver>>,
}

impl ParallelEngine {
    /// Creates an engine with no lanes.
    #[must_use]
    pub fn new() -> Self {
        ParallelEngine::default()
    }

    /// Creates an engine with one lane per paper solver
    /// (NR, DLO, DLG, Bancroft) — the same roster as
    /// [`Engine::all_solvers`](crate::Engine::all_solvers).
    #[must_use]
    pub fn all_solvers() -> Self {
        ParallelEngine::new()
            .with_solver(Box::new(NewtonRaphson::default()))
            .with_solver(Box::new(Dlo::default()))
            .with_solver(Box::new(Dlg::default()))
            .with_solver(Box::new(Bancroft))
    }

    /// Adds a lane for `solver`.
    #[must_use]
    pub fn with_solver(mut self, solver: Box<dyn Solver>) -> Self {
        self.solvers.push(solver);
        self
    }

    /// The configured solver roster, lane order.
    #[must_use]
    pub fn solvers(&self) -> &[Box<dyn Solver>] {
        &self.solvers
    }

    /// Runs the whole `stream` across `pool`, returning per-epoch
    /// results merged back into epoch order plus aggregated lane and
    /// worker statistics.
    ///
    /// Worker count is `min(pool.jobs(), stream.len())`; an empty
    /// stream or empty roster returns an empty run without touching
    /// the pool.
    #[must_use]
    pub fn run(&self, pool: &ThreadPool, stream: Vec<EpochJob>) -> ParallelRun {
        self.run_shared(pool, Arc::new(stream))
    }

    /// Like [`ParallelEngine::run`] for an already-shared stream, so
    /// repeated runs over the same batch (benchmarks, sweeps across
    /// worker counts) pay no per-run copy of the epochs.
    #[must_use]
    pub fn run_shared(&self, pool: &ThreadPool, stream: Arc<Vec<EpochJob>>) -> ParallelRun {
        let started = Instant::now();
        let lane_names: Vec<&'static str> = self.solvers.iter().map(|s| s.name()).collect();
        let total = stream.len();
        if total == 0 || self.solvers.is_empty() {
            return ParallelRun {
                outcomes: stream.iter().map(|_| Vec::new()).collect(),
                lane_names,
                lane_stats: vec![LaneStats::default(); self.solvers.len()],
                workers: Vec::new(),
                elapsed: started.elapsed(),
            };
        }
        let cursor = Arc::new(AtomicUsize::new(0));
        let (result_tx, result_rx) = mpsc::channel::<(usize, Vec<Result<Solution, SolveError>>)>();
        let (report_tx, report_rx) = mpsc::channel::<WorkerReport>();
        let jobs = pool.jobs().min(total);
        for worker in 0..jobs {
            let stream = Arc::clone(&stream);
            let cursor = Arc::clone(&cursor);
            let result_tx = result_tx.clone();
            let report_tx = report_tx.clone();
            let mut lanes = WorkerLanes::new(&self.solvers);
            pool.submit(move || {
                let mut processed = 0u64;
                let mut busy = Duration::ZERO;
                loop {
                    let index = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(job) = stream.get(index) else { break };
                    let epoch = Epoch::new(&job.measurements, job.predicted_receiver_bias_m);
                    let mut out = Vec::with_capacity(lanes.len());
                    let start = Instant::now();
                    lanes.solve_epoch_into(&epoch, index as u32, &mut out);
                    busy += start.elapsed();
                    processed += 1;
                    // Sequence-stamped send; the receiver reorders.
                    if result_tx.send((index, out)).is_err() {
                        break; // collector bailed out — stop producing
                    }
                }
                let _ = report_tx.send(WorkerReport {
                    worker,
                    epochs: processed,
                    busy,
                    lane_time: lanes.lane_time().to_vec(),
                });
            });
        }
        drop(result_tx);
        drop(report_tx);
        self.collect_run(lane_names, total, result_rx, report_rx, started)
    }

    /// Block-mode [`ParallelEngine::run_shared`]: workers claim
    /// `block_size` consecutive epochs per cursor bump, split each
    /// claim into same-shape [`EpochBlock`]s and solve them lock-step
    /// via [`WorkerLanes::solve_block_into`]. Results are still sent
    /// and merged **per epoch**, so the returned [`ParallelRun`] is
    /// bit-for-bit identical to [`ParallelEngine::run_shared`]'s for
    /// any `block_size` and worker count (pinned by
    /// `tests/parallel_parity.rs`).
    ///
    /// `block_size` is clamped to at least 1; values above
    /// [`crate::BLOCK_LANES`] coarsen only the claim granularity (each
    /// claim then yields several blocks).
    #[must_use]
    pub fn run_blocked(
        &self,
        pool: &ThreadPool,
        stream: Arc<Vec<EpochJob>>,
        block_size: usize,
    ) -> ParallelRun {
        let started = Instant::now();
        let lane_names: Vec<&'static str> = self.solvers.iter().map(|s| s.name()).collect();
        let total = stream.len();
        if total == 0 || self.solvers.is_empty() {
            return ParallelRun {
                outcomes: stream.iter().map(|_| Vec::new()).collect(),
                lane_names,
                lane_stats: vec![LaneStats::default(); self.solvers.len()],
                workers: Vec::new(),
                elapsed: started.elapsed(),
            };
        }
        let block_size = block_size.max(1);
        let cursor = Arc::new(AtomicUsize::new(0));
        let (result_tx, result_rx) = mpsc::channel::<(usize, Vec<Result<Solution, SolveError>>)>();
        let (report_tx, report_rx) = mpsc::channel::<WorkerReport>();
        let jobs = pool.jobs().min(total.div_ceil(block_size));
        for worker in 0..jobs {
            let stream = Arc::clone(&stream);
            let cursor = Arc::clone(&cursor);
            let result_tx = result_tx.clone();
            let report_tx = report_tx.clone();
            let mut lanes = WorkerLanes::new(&self.solvers);
            pool.submit(move || {
                let mut processed = 0u64;
                let mut busy = Duration::ZERO;
                // Warm per-lane result scratch, reused across blocks.
                let mut per_lane: Vec<Vec<Result<Solution, SolveError>>> =
                    (0..lanes.len()).map(|_| Vec::new()).collect();
                'claims: loop {
                    let start = cursor.fetch_add(block_size, Ordering::Relaxed);
                    if start >= total {
                        break;
                    }
                    let end = (start + block_size).min(total);
                    let mut chunk = &stream[start..end];
                    let mut offset = start;
                    let claimed = Instant::now();
                    while let Some((block, tail)) = EpochBlock::split_first(chunk, block_size) {
                        lanes.solve_block_into(&block, offset as u32, &mut per_lane);
                        // Per-epoch sequence-stamped sends: the merge is
                        // the same as the per-epoch run's.
                        for e in 0..block.lanes() {
                            let out: Vec<Result<Solution, SolveError>> = per_lane
                                .iter()
                                .map(|lane_out| lane_out[e].clone())
                                .collect();
                            if result_tx.send((offset + e, out)).is_err() {
                                break 'claims; // collector bailed out
                            }
                        }
                        processed += block.lanes() as u64;
                        offset += block.lanes();
                        chunk = tail;
                    }
                    busy += claimed.elapsed();
                }
                let _ = report_tx.send(WorkerReport {
                    worker,
                    epochs: processed,
                    busy,
                    lane_time: lanes.lane_time().to_vec(),
                });
            });
        }
        drop(result_tx);
        drop(report_tx);
        self.collect_run(lane_names, total, result_rx, report_rx, started)
    }

    /// Drains the result and report channels of a sharded run and
    /// assembles the deterministic [`ParallelRun`] — shared by
    /// [`ParallelEngine::run_shared`] and
    /// [`ParallelEngine::run_blocked`], whose worker loops differ only
    /// in claim granularity.
    fn collect_run(
        &self,
        lane_names: Vec<&'static str>,
        total: usize,
        result_rx: mpsc::Receiver<(usize, Vec<Result<Solution, SolveError>>)>,
        report_rx: mpsc::Receiver<WorkerReport>,
        started: Instant,
    ) -> ParallelRun {
        // Reassemble in epoch order: slot `seq` takes message `seq`.
        let mut slots: Vec<Option<Vec<Result<Solution, SolveError>>>> =
            (0..total).map(|_| None).collect();
        for _ in 0..total {
            let (index, out) = result_rx
                .recv()
                .expect("a pool worker died before draining the stream");
            slots[index] = Some(out);
        }
        let outcomes: Vec<Vec<Result<Solution, SolveError>>> = slots
            .into_iter()
            .map(|s| s.expect("every epoch index sent exactly once"))
            .collect();

        let mut workers: Vec<WorkerReport> = report_rx.iter().collect();
        workers.sort_by_key(|w| w.worker);

        // Aggregate lane statistics in deterministic epoch order;
        // lane wall-clock comes from the per-worker clocks.
        let mut lane_stats = vec![LaneStats::default(); self.solvers.len()];
        for epoch in &outcomes {
            for (stats, result) in lane_stats.iter_mut().zip(epoch) {
                stats.epochs += 1;
                if result.is_ok() {
                    stats.solved += 1;
                } else {
                    stats.failed += 1;
                }
            }
        }
        for report in &workers {
            for (stats, time) in lane_stats.iter_mut().zip(&report.lane_time) {
                stats.total_time += *time;
            }
        }

        let run = ParallelRun {
            outcomes,
            lane_names,
            lane_stats,
            workers,
            elapsed: started.elapsed(),
        };
        if gps_telemetry::enabled(gps_telemetry::Level::Debug) {
            gps_telemetry::Event::new(
                gps_telemetry::Level::Debug,
                "core.parallel",
                "batch complete",
            )
            .with("epochs", run.epochs())
            .with("workers", run.workers.len())
            .with("elapsed_us", run.elapsed.as_secs_f64() * 1e6)
            .emit();
        }
        run
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Engine;
    use gps_geodesy::Ecef;

    fn truth() -> Ecef {
        Ecef::new(6.371e6, 1.0e5, -2.0e5)
    }

    fn measurements(extra: f64) -> Vec<Measurement> {
        [
            Ecef::new(2.0e7, 0.0, 1.7e7),
            Ecef::new(1.5e7, 1.8e7, 0.9e7),
            Ecef::new(1.6e7, -1.7e7, 1.0e7),
            Ecef::new(2.5e7, 0.4e7, -0.6e7),
            Ecef::new(1.9e7, 0.9e7, 1.6e7),
            Ecef::new(0.8e7, 1.4e7, 2.0e7),
        ]
        .iter()
        .map(|&s| Measurement::new(s, s.distance_to(truth()) + extra))
        .collect()
    }

    fn stream(n: usize) -> Vec<EpochJob> {
        (0..n)
            .map(|i| {
                // Vary the noise slightly so every epoch is distinct and
                // an ordering mistake cannot hide behind identical inputs.
                EpochJob::new(measurements(1e-3 * i as f64), 1e-3 * i as f64)
            })
            .collect()
    }

    #[test]
    fn parallel_matches_serial_for_any_worker_count() {
        let jobs_list = [1usize, 2, 4];
        let input = stream(60);

        // Serial reference: run the same epochs through Engine.
        let mut engine = Engine::all_solvers();
        let mut reference: Vec<Vec<Result<Solution, SolveError>>> = Vec::new();
        for job in &input {
            engine.run_epoch(&job.measurements, job.predicted_receiver_bias_m);
            reference.push(
                engine
                    .lanes()
                    .iter()
                    .map(|lane| lane.last().unwrap().clone())
                    .collect(),
            );
        }

        for jobs in jobs_list {
            let pool = ThreadPool::new(jobs);
            let run = ParallelEngine::all_solvers().run(&pool, input.clone());
            assert_eq!(run.epochs(), 60);
            assert_eq!(run.outcomes, reference, "jobs={jobs}");
            for (lane, stats) in run.lane_stats.iter().enumerate() {
                assert_eq!(stats.epochs, 60, "lane {lane}");
                assert_eq!(
                    stats.solved,
                    engine.lanes()[lane].stats().solved,
                    "lane {lane}"
                );
                assert_eq!(
                    stats.failed,
                    engine.lanes()[lane].stats().failed,
                    "lane {lane}"
                );
            }
        }
    }

    #[test]
    fn blocked_run_matches_per_epoch_run() {
        // Mixed shapes force block splits mid-claim; a short epoch is
        // below every solver's minimum so error lanes round-trip too.
        let base = measurements(0.0);
        let mut input = stream(30);
        for (i, job) in input.iter_mut().enumerate() {
            job.measurements.truncate([6, 6, 5, 6, 4, 6][i % 6]);
        }
        input.insert(7, EpochJob::new(base[..3].to_vec(), 0.0));

        let pool = ThreadPool::new(2);
        let engine = ParallelEngine::all_solvers();
        let shared = Arc::new(input);
        let reference = engine.run_shared(&pool, Arc::clone(&shared));
        for block_size in [1usize, 4, 8] {
            let blocked = engine.run_blocked(&pool, Arc::clone(&shared), block_size);
            assert_eq!(blocked.outcomes, reference.outcomes, "bs={block_size}");
            for (b, r) in blocked.lane_stats.iter().zip(&reference.lane_stats) {
                assert_eq!(b.epochs, r.epochs, "bs={block_size}");
                assert_eq!(b.solved, r.solved, "bs={block_size}");
                assert_eq!(b.failed, r.failed, "bs={block_size}");
            }
            let claimed: u64 = blocked.workers.iter().map(|w| w.epochs).sum();
            assert_eq!(claimed, shared.len() as u64, "bs={block_size}");
        }
    }

    #[test]
    fn worker_reports_cover_the_stream() {
        let pool = ThreadPool::new(3);
        let run = ParallelEngine::all_solvers().run(&pool, stream(40));
        assert!(!run.workers.is_empty());
        assert!(run.workers.len() <= 3);
        let claimed: u64 = run.workers.iter().map(|w| w.epochs).sum();
        assert_eq!(claimed, 40);
        for w in &run.workers {
            assert_eq!(w.lane_time.len(), 4);
            assert!(w.utilization(run.elapsed) >= 0.0);
        }
        assert!(run.elapsed > Duration::ZERO);
        assert!(run.total_fixes_per_sec() > 0.0);
        assert!(run.lane_fixes_per_sec(1) > 0.0);
    }

    #[test]
    fn failures_are_tallied_like_serial() {
        // Three satellites: below every solver's minimum.
        let few = EpochJob::new(measurements(0.0)[..3].to_vec(), 0.0);
        let mut input = stream(10);
        input.insert(5, few);
        let pool = ThreadPool::new(2);
        let run = ParallelEngine::all_solvers().run(&pool, input);
        for stats in &run.lane_stats {
            assert_eq!(stats.epochs, 11);
            assert_eq!(stats.solved, 10);
            assert_eq!(stats.failed, 1);
        }
        assert!(run.outcomes[5].iter().all(Result::is_err));
    }

    #[test]
    fn empty_stream_and_empty_roster_are_fine() {
        let pool = ThreadPool::new(2);
        let run = ParallelEngine::all_solvers().run(&pool, Vec::new());
        assert_eq!(run.epochs(), 0);
        assert!(run.workers.is_empty());

        let run = ParallelEngine::new().run(&pool, stream(3));
        assert_eq!(run.epochs(), 3);
        assert!(run.lane_stats.is_empty());
        assert!(run.outcomes.iter().all(Vec::is_empty));
    }

    #[test]
    fn worker_lanes_report_names_and_times() {
        let engine = ParallelEngine::all_solvers();
        let mut lanes = WorkerLanes::new(engine.solvers());
        assert_eq!(lanes.len(), 4);
        assert!(!lanes.is_empty());
        let meas = measurements(0.0);
        let mut out = Vec::new();
        lanes.solve_into(&Epoch::new(&meas, 0.0), &mut out);
        assert_eq!(out.len(), 4);
        assert!(out.iter().all(Result::is_ok));
        assert!(lanes.lane_time().iter().all(|t| *t > Duration::ZERO));
    }
}
