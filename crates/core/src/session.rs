//! Per-receiver session state for the long-running positioning
//! service.
//!
//! A batch run owns one solver for one dataset; a *service* keeps one
//! warm [`Session`] per receiver across its whole connection lifetime:
//! the [`ResilientSolver`] (and through it the warm `SolveContext` and
//! `PvFilter`), a per-receiver clock-bias model in the paper's
//! eq. 4-3 form (`Δt̂ = D + r·tᵉ`, scaled to metres), and the running
//! outcome digest the crash-safe journal verifies replays against.
//!
//! Sessions are also where the service's load-shedding policy gets its
//! signal: [`Session::shed_priority`] scores how much accuracy the
//! fleet loses by dropping this receiver's next epoch, combining the
//! last fix quality with a DOP penalty — the Bayesian-DOP idea
//! (Koulouri et al., PAPERS.md) of treating dilution-of-precision as a
//! posterior quality weight rather than a hard gate. Under overload
//! the service sheds the *lowest* score first: receivers already in
//! holdover with poor geometry lose little by missing one more epoch,
//! receivers tracking nominally keep their stream.

use crate::error::SolveError;
use crate::measurement::Measurement;
use crate::nr::NewtonRaphson;
use crate::resilient::{FixQuality, ResilientFix, ResilientSolver};
use crate::solver::{Epoch, SolveContext, Solver};
use gps_telemetry::journal::fnv1a_words;

/// Clock-model correction gains: the fraction of each epoch's bias
/// innovation folded into the offset `D` and (time-normalized) drift
/// `r`. Small enough to smooth measurement noise, large enough to
/// track the generator's ~1e-7 s/s drifts within a few epochs.
const CLOCK_OFFSET_GAIN: f64 = 0.5;
const CLOCK_DRIFT_GAIN: f64 = 0.1;

/// Epochs spent calibrating the clock model with an NR pre-solve
/// (paper §4: the direct solvers need `D`/`r` fitted before their
/// bias prediction is trustworthy).
const CALIBRATION_EPOCHS: u64 = 8;

/// One receiver's warm state inside the positioning service.
///
/// Deterministic by construction: the same epoch stream fed in the
/// same order produces bit-identical fixes, clock-model states, and
/// [`Session::digest`] chains — which is exactly what `replay` checks
/// after a crash.
#[derive(Debug, Clone)]
pub struct Session {
    id: u64,
    solver: ResilientSolver,
    /// NR used for the calibration pre-solve (it estimates its own
    /// bias, so it works before the clock model exists).
    calibrator: NewtonRaphson,
    cal_ctx: SolveContext,
    /// First calibration sample `(t, bias_m)`; the drift slope is
    /// fitted against it as the baseline grows.
    cal_anchor: Option<(f64, f64)>,
    /// Clock offset `D`, metres of range bias.
    d_m: f64,
    /// Clock drift `r`, metres of range bias per second.
    r_mps: f64,
    /// Session-relative time, seconds since the first epoch.
    t_s: f64,
    last_quality: Option<FixQuality>,
    last_gdop: Option<f64>,
    seq: u64,
    last_active_round: u64,
    digest: u64,
}

impl Session {
    /// Fresh session state for receiver `id` with the default
    /// resilient pipeline and a zero clock model.
    #[must_use]
    pub fn new(id: u64) -> Self {
        Session {
            id,
            solver: ResilientSolver::new(),
            calibrator: NewtonRaphson::default(),
            cal_ctx: SolveContext::new(),
            cal_anchor: None,
            d_m: 0.0,
            r_mps: 0.0,
            t_s: 0.0,
            last_quality: None,
            last_gdop: None,
            seq: 0,
            last_active_round: 0,
            digest: 0,
        }
    }

    /// Receiver id this session serves.
    #[must_use]
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Epochs absorbed so far (processed + deadline-expired).
    #[must_use]
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// The running FNV-1a digest over every outcome this session
    /// produced. Two sessions fed the same stream with the same
    /// dispositions end at the same digest — the journal's bit-for-bit
    /// replay check.
    #[must_use]
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// Predicted receiver range bias at the session's current time,
    /// `D + r·t` (paper eq. 4-3, metres).
    #[must_use]
    pub fn predicted_bias_m(&self) -> f64 {
        self.d_m + self.r_mps * self.t_s
    }

    /// Quality of the most recent outcome (`None` before the first
    /// epoch or after a failed one).
    #[must_use]
    pub fn last_quality(&self) -> Option<FixQuality> {
        self.last_quality
    }

    /// Round stamp of the last epoch this session absorbed; the
    /// service's idle-eviction clock.
    #[must_use]
    pub fn last_active_round(&self) -> u64 {
        self.last_active_round
    }

    /// Marks the session active in `round` (for idle eviction).
    pub fn touch(&mut self, round: u64) {
        self.last_active_round = round;
    }

    /// Load-shedding score: **lower sheds first**. The fix-quality
    /// term dominates (no-fix 0 < holdover 1 < degraded 2 < nominal
    /// 3); the fractional DOP penalty orders sessions inside one
    /// quality tier, so among two degraded receivers the one with the
    /// worse geometry — whose next fix carries the least information —
    /// is dropped first.
    #[must_use]
    pub fn shed_priority(&self) -> f64 {
        let quality = match self.last_quality {
            Some(FixQuality::Nominal) => 3.0,
            Some(FixQuality::Degraded) => 2.0,
            Some(FixQuality::Holdover) => 1.0,
            None => 0.0,
        };
        // GDOP ≥ 30 is already unusable geometry; clamp so the penalty
        // stays inside the unit gap between quality tiers.
        let dop_penalty = self.last_gdop.map_or(0.5, |g| g.clamp(0.0, 30.0) / 30.0);
        quality - 0.9 * dop_penalty
    }

    /// Runs one epoch through the session's resilient pipeline with
    /// its own clock prediction, then folds the solved bias back into
    /// the `D`/`r` model (deterministic fixed-gain update).
    ///
    /// # Errors
    ///
    /// Propagates the pipeline error when every rung fails and
    /// holdover is unavailable or exhausted.
    pub fn process(
        &mut self,
        measurements: &[Measurement],
        dt_s: f64,
    ) -> Result<ResilientFix, SolveError> {
        let dt_s = sanitize_dt(dt_s);
        self.t_s += dt_s;
        // Calibration phase (paper §4): an NR pre-solve estimates the
        // receiver bias directly, fitting `D` and the drift slope `r`
        // before the ladder's direct solvers consume the prediction.
        // Deterministic, so replay reproduces the same model states.
        if self.seq < CALIBRATION_EPOCHS && !measurements.is_empty() {
            let epoch = Epoch::new(measurements, self.predicted_bias_m());
            if let Ok(solution) = self.calibrator.solve(&epoch, &mut self.cal_ctx) {
                if let Some(bias) = solution.receiver_bias_m {
                    self.calibrate(bias);
                }
            }
        }
        let predicted = self.predicted_bias_m();
        let result = self.solver.solve_epoch(measurements, predicted, dt_s);
        match &result {
            Ok(fix) => {
                if let Some(solved) = fix.receiver_bias_m {
                    let innovation = solved - predicted;
                    self.d_m += CLOCK_OFFSET_GAIN * innovation;
                    self.r_mps += CLOCK_DRIFT_GAIN * innovation / self.t_s.max(1.0);
                }
                self.last_quality = Some(fix.quality);
                if fix.gdop.is_some() {
                    self.last_gdop = fix.gdop;
                }
                self.absorb_fix(fix);
            }
            Err(e) => {
                self.last_quality = None;
                self.absorb_error(e.code());
            }
        }
        self.seq += 1;
        result
    }

    /// The deadline path: the epoch's budget expired before a solver
    /// could run, so the measurements are dropped and the session
    /// falls to holdover — the kinematic model propagates the last
    /// good state. When holdover is exhausted too, the outcome is
    /// [`SolveError::DeadlineExceeded`].
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::DeadlineExceeded`] when no holdover fix
    /// is available.
    pub fn expire_deadline(
        &mut self,
        dt_s: f64,
        budget_us: u64,
    ) -> Result<ResilientFix, SolveError> {
        let dt_s = sanitize_dt(dt_s);
        self.t_s += dt_s;
        let predicted = self.predicted_bias_m();
        // An empty measurement set walks the ladder (instant
        // too-few-satellites per rung) straight into the holdover
        // path, reusing its budget accounting and telemetry.
        let outcome = match self.solver.solve_epoch(&[], predicted, dt_s) {
            Ok(fix) => {
                self.last_quality = Some(fix.quality);
                self.absorb_fix(&fix);
                Ok(fix)
            }
            Err(_) => {
                self.last_quality = None;
                let err = SolveError::DeadlineExceeded { budget_us };
                self.absorb_error(err.code());
                Err(err)
            }
        };
        self.seq += 1;
        outcome
    }

    /// Folds one calibration bias sample into the `D`/`r` model: the
    /// first sample anchors the offset; later samples fit the drift
    /// slope against the anchor and re-anchor the offset on the
    /// freshest estimate.
    fn calibrate(&mut self, bias_m: f64) {
        match self.cal_anchor {
            None => {
                self.cal_anchor = Some((self.t_s, bias_m));
                self.d_m = bias_m - self.r_mps * self.t_s;
            }
            Some((t0, b0)) if self.t_s > t0 => {
                self.r_mps = (bias_m - b0) / (self.t_s - t0);
                self.d_m = bias_m - self.r_mps * self.t_s;
            }
            Some(_) => {}
        }
    }

    fn absorb_fix(&mut self, fix: &ResilientFix) {
        self.digest = fnv1a_words(
            self.digest,
            &[
                1,
                u64::from(fix.quality.code()),
                fix.position.x.to_bits(),
                fix.position.y.to_bits(),
                fix.position.z.to_bits(),
            ],
        );
    }

    fn absorb_error(&mut self, code: u16) {
        self.digest = fnv1a_words(self.digest, &[0, u64::from(code)]);
    }
}

/// The solver asserts `dt > 0`; a service fed a zero/negative/NaN
/// inter-epoch gap must degrade, not die.
fn sanitize_dt(dt_s: f64) -> f64 {
    if dt_s.is_finite() && dt_s > 0.0 {
        dt_s
    } else {
        1e-3
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gps_geodesy::Ecef;

    fn good_epoch(truth: Ecef, bias_m: f64) -> Vec<Measurement> {
        let sats = [
            Ecef::new(2.0e7, 0.0, 1.7e7),
            Ecef::new(1.5e7, 1.8e7, 0.9e7),
            Ecef::new(1.6e7, -1.7e7, 1.0e7),
            Ecef::new(2.5e7, 0.4e7, -0.6e7),
            Ecef::new(1.9e7, 0.9e7, 1.6e7),
            Ecef::new(0.8e7, 1.4e7, 2.0e7),
        ];
        sats.iter()
            .map(|&s| Measurement::new(s, s.distance_to(truth) + bias_m))
            .collect()
    }

    const TRUTH: Ecef = Ecef {
        x: 6.371e6,
        y: 1.0e5,
        z: -2.0e5,
    };

    #[test]
    fn tracks_a_clean_stream_and_learns_the_clock() {
        let mut session = Session::new(42);
        for epoch in 0..10 {
            let bias = 120.0 + 0.4 * epoch as f64; // D = 120 m, r = 0.4 m/s at 1 Hz
            let fix = session.process(&good_epoch(TRUTH, bias), 1.0).expect("fix");
            assert!(fix.position.distance_to(TRUTH) < 1.0);
        }
        assert_eq!(session.seq(), 10);
        // The fixed-gain model converges towards the injected ramp.
        let predicted = session.predicted_bias_m();
        assert!(
            (predicted - 124.0).abs() < 5.0,
            "clock model should track the ramp, predicted {predicted}"
        );
    }

    #[test]
    fn deadline_expiry_falls_to_holdover_then_errors_out() {
        let mut session = Session::new(7);
        session
            .process(&good_epoch(TRUTH, 50.0), 1.0)
            .expect("warmup");
        // Holdover budget (default 5) absorbs the first expiries…
        for _ in 0..5 {
            let fix = session.expire_deadline(1.0, 2_000).expect("holdover");
            assert_eq!(fix.quality, FixQuality::Holdover);
            assert!(fix.position.distance_to(TRUTH) < 10.0);
        }
        // …then the session reports the typed deadline error.
        let err = session.expire_deadline(1.0, 2_000).expect_err("exhausted");
        assert_eq!(err, SolveError::DeadlineExceeded { budget_us: 2_000 });
        assert_eq!(err.code(), 7);
    }

    #[test]
    fn deadline_expiry_without_prior_fix_is_a_deadline_error() {
        let mut session = Session::new(9);
        let err = session.expire_deadline(1.0, 500).expect_err("no prior fix");
        assert!(matches!(err, SolveError::DeadlineExceeded { .. }));
    }

    #[test]
    fn shed_priority_orders_quality_tiers() {
        let fresh = Session::new(1); // never fixed: shed first
        let mut holdover = Session::new(2);
        holdover.process(&good_epoch(TRUTH, 0.0), 1.0).expect("fix");
        let _ = holdover.expire_deadline(1.0, 100);
        let mut nominal = Session::new(3);
        nominal.process(&good_epoch(TRUTH, 0.0), 1.0).expect("fix");

        assert!(fresh.shed_priority() < holdover.shed_priority());
        assert!(holdover.shed_priority() < nominal.shed_priority());
    }

    #[test]
    fn identical_streams_produce_identical_digests() {
        let mut a = Session::new(5);
        let mut b = Session::new(5);
        for epoch in 0..6 {
            let meas = good_epoch(TRUTH, 30.0 + epoch as f64);
            if epoch == 3 {
                let _ = a.expire_deadline(1.0, 1_000);
                let _ = b.expire_deadline(1.0, 1_000);
            } else {
                let _ = a.process(&meas, 1.0);
                let _ = b.process(&meas, 1.0);
            }
        }
        assert_eq!(a.digest(), b.digest());
        assert_ne!(a.digest(), 0);
        // A diverging disposition diverges the digest.
        let mut c = Session::new(5);
        for epoch in 0..6 {
            let _ = c.process(&good_epoch(TRUTH, 30.0 + epoch as f64), 1.0);
        }
        assert_ne!(a.digest(), c.digest());
    }

    #[test]
    fn pathological_dt_is_sanitized_not_fatal() {
        let mut session = Session::new(11);
        let meas = good_epoch(TRUTH, 0.0);
        session.process(&meas, 0.0).expect("dt=0 must not panic");
        session
            .process(&meas, f64::NAN)
            .expect("NaN dt must not panic");
        session
            .process(&meas, -5.0)
            .expect("negative dt must not panic");
        assert_eq!(session.seq(), 3);
    }
}
