//! Structure-of-arrays epoch batching: several same-shape epochs solved
//! lock-step.
//!
//! The per-epoch [`Solver`](crate::Solver) hot path is already
//! allocation-free, but it is *latency*-shaped: one epoch in, one fix
//! out. Batch consumers — the throughput bench, the parallel engine's
//! workers, the positioning service draining a deep queue — hand the
//! solvers many independent epochs at once, and when those epochs share
//! a satellite count the whole batch can be gathered into a
//! structure-of-arrays layout and solved **lock-step**: the normal
//! equation accumulators become `[f64; BLOCK_LANES]` arrays, the hot
//! loops iterate lane-inner, and the compiler autovectorizes across
//! epochs instead of within one (the per-epoch systems are too small —
//! 3 unknowns, ≲16 rows — for any meaningful within-epoch SIMD).
//!
//! [`EpochBlock`] is the unit of that batching: a validated view over
//! `1..=`[`BLOCK_LANES`] consecutive [`EpochJob`]s with identical
//! measurement counts. [`crate::Solver::solve_block`] consumes one;
//! the default implementation just loops the scalar path (so every
//! solver supports block feeding), while [`crate::Dlo`] overrides it
//! with the SoA kernel. Per-lane results are **bit-for-bit identical**
//! to the per-epoch path — the SoA loop interchange reorders operations
//! *across* lanes, never within one, and IEEE-754 arithmetic is
//! deterministic — so block mode is purely a throughput knob (pinned by
//! `tests/parallel_parity.rs` and the engine block tests).

use crate::{Epoch, EpochJob};

/// Maximum epochs an [`EpochBlock`] carries. Eight lanes of `f64` fill
/// a 512-bit vector register exactly and keep the SoA gather of the
/// largest shape (`STACK_M_CAP` rows) within a few KiB of stack.
pub const BLOCK_LANES: usize = 8;

/// A validated view over consecutive same-shape epochs: every job has
/// the same measurement count and there are `1..=BLOCK_LANES` of them.
///
/// The invariant is what makes lock-step solving possible: all lanes
/// share one geometry shape, so one row loop serves every epoch.
#[derive(Debug, Clone, Copy)]
pub struct EpochBlock<'a> {
    jobs: &'a [EpochJob],
}

impl<'a> EpochBlock<'a> {
    /// Wraps `jobs` as a block if they satisfy the invariant:
    /// `1..=BLOCK_LANES` epochs, all with the same measurement count.
    /// Returns `None` otherwise.
    #[must_use]
    pub fn new(jobs: &'a [EpochJob]) -> Option<Self> {
        if jobs.is_empty() || jobs.len() > BLOCK_LANES {
            return None;
        }
        let m = jobs[0].measurements.len();
        if jobs.iter().any(|j| j.measurements.len() != m) {
            return None;
        }
        Some(EpochBlock { jobs })
    }

    /// Splits the longest valid block off the front of `stream`:
    /// consecutive epochs sharing the first epoch's measurement count,
    /// capped at `min(max_lanes, BLOCK_LANES)`. Returns the block and
    /// the untouched tail, or `None` for an empty stream.
    ///
    /// Driving this in a loop partitions any stream into blocks without
    /// reordering or copying epochs — mixed-shape streams just produce
    /// shorter blocks at the shape boundaries.
    #[must_use]
    pub fn split_first(stream: &'a [EpochJob], max_lanes: usize) -> Option<(Self, &'a [EpochJob])> {
        let first = stream.first()?;
        let m = first.measurements.len();
        let cap = max_lanes.clamp(1, BLOCK_LANES);
        let lanes = stream
            .iter()
            .take(cap)
            .take_while(|j| j.measurements.len() == m)
            .count();
        Some((
            EpochBlock {
                jobs: &stream[..lanes],
            },
            &stream[lanes..],
        ))
    }

    /// Number of epochs (lanes) in the block, `1..=BLOCK_LANES`.
    #[must_use]
    pub fn lanes(&self) -> usize {
        self.jobs.len()
    }

    /// The shared per-epoch measurement count.
    #[must_use]
    pub fn measurements_per_epoch(&self) -> usize {
        self.jobs[0].measurements.len()
    }

    /// The underlying jobs, lane order.
    #[must_use]
    pub fn jobs(&self) -> &'a [EpochJob] {
        self.jobs
    }

    /// Lane `lane` as a borrowed [`Epoch`].
    ///
    /// # Panics
    ///
    /// Panics if `lane >= self.lanes()`.
    #[must_use]
    pub fn epoch(&self, lane: usize) -> Epoch<'a> {
        let job = &self.jobs[lane];
        Epoch::new(&job.measurements, job.predicted_receiver_bias_m)
    }

    /// Iterates the lanes as borrowed [`Epoch`]s, lane order.
    pub fn epochs(&self) -> impl Iterator<Item = Epoch<'a>> + '_ {
        self.jobs
            .iter()
            .map(|job| Epoch::new(&job.measurements, job.predicted_receiver_bias_m))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Measurement;
    use gps_geodesy::Ecef;

    fn job(m: usize, bias: f64) -> EpochJob {
        let truth = Ecef::new(6.371e6, 1.0e5, -2.0e5);
        let sats = [
            Ecef::new(2.0e7, 0.0, 1.7e7),
            Ecef::new(1.5e7, 1.8e7, 0.9e7),
            Ecef::new(1.6e7, -1.7e7, 1.0e7),
            Ecef::new(2.5e7, 0.4e7, -0.6e7),
            Ecef::new(1.9e7, 0.9e7, 1.6e7),
            Ecef::new(0.8e7, 1.4e7, 2.0e7),
        ];
        let meas: Vec<Measurement> = sats
            .iter()
            .take(m)
            .map(|&s| Measurement::new(s, s.distance_to(truth)))
            .collect();
        EpochJob::new(meas, bias)
    }

    #[test]
    fn new_enforces_the_invariant() {
        let jobs: Vec<EpochJob> = (0..4).map(|i| job(6, i as f64)).collect();
        let block = EpochBlock::new(&jobs).unwrap();
        assert_eq!(block.lanes(), 4);
        assert_eq!(block.measurements_per_epoch(), 6);
        assert_eq!(block.jobs().len(), 4);
        assert_eq!(block.epoch(2).predicted_receiver_bias_m, 2.0);
        assert_eq!(block.epochs().count(), 4);

        assert!(EpochBlock::new(&[]).is_none());
        let mixed = vec![job(6, 0.0), job(5, 0.0)];
        assert!(EpochBlock::new(&mixed).is_none());
        let too_many: Vec<EpochJob> = (0..BLOCK_LANES + 1).map(|_| job(4, 0.0)).collect();
        assert!(EpochBlock::new(&too_many).is_none());
    }

    #[test]
    fn split_first_partitions_at_shape_boundaries() {
        let stream = vec![job(6, 0.0), job(6, 1.0), job(5, 2.0), job(5, 3.0)];
        let (block, rest) = EpochBlock::split_first(&stream, 8).unwrap();
        assert_eq!(block.lanes(), 2);
        assert_eq!(block.measurements_per_epoch(), 6);
        assert_eq!(rest.len(), 2);
        let (block, rest) = EpochBlock::split_first(rest, 8).unwrap();
        assert_eq!(block.lanes(), 2);
        assert_eq!(block.measurements_per_epoch(), 5);
        assert!(rest.is_empty());
        assert!(EpochBlock::split_first(rest, 8).is_none());
    }

    #[test]
    fn split_first_honors_the_lane_cap() {
        let stream: Vec<EpochJob> = (0..BLOCK_LANES + 4).map(|_| job(6, 0.0)).collect();
        let (block, rest) = EpochBlock::split_first(&stream, 4).unwrap();
        assert_eq!(block.lanes(), 4);
        assert_eq!(rest.len(), BLOCK_LANES);
        // A zero or oversized cap clamps to the valid range.
        let (block, _) = EpochBlock::split_first(&stream, 0).unwrap();
        assert_eq!(block.lanes(), 1);
        let (block, _) = EpochBlock::split_first(&stream, 999).unwrap();
        assert_eq!(block.lanes(), BLOCK_LANES);
    }
}
