//! The long-running positioning service: sharded sessions on the
//! thread pool, wrapped in deadlines, backpressure, and a crash-safe
//! journal.
//!
//! This is ROADMAP item 1's runtime layer. Where [`ParallelEngine`]
//! answers "solve this `Vec` of epochs fast", [`PositioningService`]
//! answers "keep answering, whatever happens":
//!
//! * **Sessions, sharded.** Each receiver id maps to one shard
//!   (`receiver % shards`); a shard owns its sessions and its bounded
//!   queue behind one mutex, so one pool job per shard per round
//!   touches each lock once and receivers never contend across
//!   shards. Sessions idle for `idle_eviction_rounds` are evicted.
//! * **Deadlines.** Every queued epoch carries its enqueue timestamp;
//!   a worker that dequeues it past the deadline budget drops the
//!   measurements and routes the session through
//!   [`Session::expire_deadline`] — holdover while the budget lasts,
//!   a typed [`SolveError::DeadlineExceeded`] after — so a stalled
//!   shard degrades per-receiver instead of blocking the round.
//! * **Backpressure.** [`PositioningService::ingest`] refuses to grow
//!   a shard queue past `queue_capacity`: the epoch belonging to the
//!   session with the *lowest* [`Session::shed_priority`] (worst
//!   Bayesian-DOP fix-quality score) is shed, counted in
//!   `service.shed_total`.
//! * **Journal.** With a journal attached, every processed epoch
//!   appends one `GPSJRNL1` record — inputs, disposition, outcome
//!   bits, and the session digest after — so [`replay_journal`]
//!   can rebuild all session state after a SIGKILL and verify each
//!   recomputed outcome bit-for-bit against what the live run logged.
//! * **Chaos hooks.** [`PositioningService::set_chaos`] injects a
//!   stall or a panic into a specific shard's job in a specific round;
//!   with the pool's `inject_worker_exit` these drive the chaos
//!   campaign without any special-cased production code paths.
//!
//! A worker panic mid-round leaves the un-dequeued tail of that
//! shard's queue in place: the collector times out the missing
//! completion (`service.round_failures`), and the next round processes
//! the leftovers — usually as deadline expiries. Nothing is silently
//! lost; every epoch ends as a fix, a typed error, or a counted shed.
//!
//! [`ParallelEngine`]: crate::ParallelEngine

use std::collections::HashMap;
use std::collections::VecDeque;
use std::io;
use std::path::Path;
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use gps_pool::{SupervisorConfig, ThreadPool};
use gps_telemetry::journal::{JournalReader, JournalWriter};
use gps_telemetry::{Counter, Gauge, Histogram};

use crate::error::SolveError;
use crate::measurement::Measurement;
use crate::resilient::ResilientFix;
use crate::session::Session;

/// Service tuning. `Default` is sized for tests and smokes; the CLI
/// scales it up.
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Pool worker threads.
    pub workers: usize,
    /// Session shards (defaults to `workers`).
    pub shards: usize,
    /// Per-shard queue bound; ingest beyond it sheds.
    pub queue_capacity: usize,
    /// Per-epoch latency budget from ingest to dequeue.
    pub deadline: Duration,
    /// Sessions untouched for this many rounds are evicted.
    pub idle_eviction_rounds: u64,
    /// Journal fsync batch (records per `sync_data`).
    pub journal_fsync_every: usize,
    /// How long a round waits for its shard jobs before declaring the
    /// missing ones failed.
    pub round_timeout: Duration,
    /// Supervisor tuning for the underlying pool.
    pub supervisor: SupervisorConfig,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 4,
            shards: 4,
            queue_capacity: 64,
            deadline: Duration::from_millis(50),
            idle_eviction_rounds: 64,
            journal_fsync_every: 32,
            round_timeout: Duration::from_secs(10),
            supervisor: SupervisorConfig::default(),
        }
    }
}

/// One receiver epoch submitted to the service.
#[derive(Debug, Clone)]
pub struct SessionEpoch {
    /// Receiver id (also the shard key).
    pub receiver: u64,
    /// Seconds since this receiver's previous epoch.
    pub dt_s: f64,
    /// The epoch's measurements.
    pub measurements: Vec<Measurement>,
}

/// What [`PositioningService::ingest`] did with an epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IngestResult {
    /// Queued on its shard.
    Queued,
    /// Shed under backpressure; the named receiver's epoch was dropped
    /// (it may be the one just submitted).
    Shed {
        /// Receiver whose epoch was dropped.
        receiver: u64,
    },
}

/// How an epoch left the queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disposition {
    /// Dequeued within budget and solved (or failed) normally.
    Solved,
    /// Budget expired before a solver ran; measurements dropped.
    DeadlineExpired,
}

impl Disposition {
    fn to_word(self) -> u64 {
        match self {
            Disposition::Solved => 0,
            Disposition::DeadlineExpired => 1,
        }
    }

    fn from_word(word: u64) -> Option<Self> {
        match word {
            0 => Some(Disposition::Solved),
            1 => Some(Disposition::DeadlineExpired),
            _ => None,
        }
    }
}

/// One epoch's outcome from a processing round.
#[derive(Debug, Clone)]
pub struct EpochOutcome {
    /// Receiver the epoch belonged to.
    pub receiver: u64,
    /// The session's epoch sequence number.
    pub seq: u64,
    /// How the epoch was treated.
    pub disposition: Disposition,
    /// The session's fix or typed error.
    pub result: Result<ResilientFix, SolveError>,
    /// Ingest-to-outcome latency, microseconds.
    pub latency_us: u64,
}

/// Summary of one [`PositioningService::process_round`] call.
#[derive(Debug, Clone)]
pub struct RoundResult {
    /// Per-epoch outcomes, sorted by (receiver, seq).
    pub outcomes: Vec<EpochOutcome>,
    /// Shard jobs that reported completion.
    pub completed_shards: usize,
    /// Shard jobs submitted this round.
    pub expected_shards: usize,
    /// Sessions evicted for idleness at the end of the round.
    pub evicted: usize,
}

/// Chaos injection for one (round, shard) job — exercised by the
/// chaos campaign, compiled unconditionally so the campaign tests the
/// *production* code paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosOp {
    /// Sleep this long before processing the shard (stall injection).
    Stall(Duration),
    /// Panic the shard job before it touches the queue (worker-panic
    /// storm; the pool catches it, the round counts the failure).
    Panic,
}

struct Queued {
    epoch: SessionEpoch,
    enqueued: Instant,
}

struct Shard {
    sessions: HashMap<u64, Session>,
    queue: VecDeque<Queued>,
}

struct ServiceMetrics {
    ingested: Counter,
    shed_total: Counter,
    deadline_expired: Counter,
    sessions_evicted: Counter,
    round_failures: Counter,
    journal_records: Counter,
    journal_bytes: Gauge,
    batch_drains: Counter,
    latency_us: Histogram,
}

impl ServiceMetrics {
    fn new() -> Self {
        ServiceMetrics {
            ingested: gps_telemetry::counter("service.ingested"),
            shed_total: gps_telemetry::counter("service.shed_total"),
            deadline_expired: gps_telemetry::counter("service.deadline_expired"),
            sessions_evicted: gps_telemetry::counter("service.sessions_evicted"),
            round_failures: gps_telemetry::counter("service.round_failures"),
            journal_records: gps_telemetry::counter("service.journal_records"),
            journal_bytes: gps_telemetry::gauge("service.journal_bytes"),
            batch_drains: gps_telemetry::counter("service.batch_drains"),
            latency_us: gps_telemetry::histogram("service.latency_us"),
        }
    }
}

/// The hardened fleet-scale positioning service. See the
/// [module docs](self) for the design.
pub struct PositioningService {
    pool: ThreadPool,
    shards: Vec<Arc<Mutex<Shard>>>,
    config: ServiceConfig,
    journal: Option<Arc<Mutex<JournalWriter>>>,
    metrics: Arc<ServiceMetrics>,
    chaos: Arc<Mutex<HashMap<(u64, usize), ChaosOp>>>,
    round: u64,
}

impl std::fmt::Debug for PositioningService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PositioningService")
            .field("shards", &self.shards.len())
            .field("round", &self.round)
            .field("journaling", &self.journal.is_some())
            .finish()
    }
}

impl PositioningService {
    /// Builds the service: a supervised pool of `config.workers` and
    /// `config.shards` empty shards. No journal — attach one with
    /// [`PositioningService::with_journal`].
    #[must_use]
    pub fn new(config: ServiceConfig) -> Self {
        let shards = config.shards.max(1);
        PositioningService {
            pool: ThreadPool::supervised(config.workers.max(1), config.supervisor),
            shards: (0..shards)
                .map(|_| {
                    Arc::new(Mutex::new(Shard {
                        sessions: HashMap::new(),
                        queue: VecDeque::new(),
                    }))
                })
                .collect(),
            config,
            journal: None,
            metrics: Arc::new(ServiceMetrics::new()),
            chaos: Arc::new(Mutex::new(HashMap::new())),
            round: 0,
        }
    }

    /// Attaches a crash-safe journal at `path` (truncates any existing
    /// file).
    ///
    /// # Errors
    ///
    /// Propagates journal creation errors.
    pub fn with_journal(mut self, path: &Path) -> io::Result<Self> {
        let writer = JournalWriter::create(path, self.config.journal_fsync_every)?;
        self.journal = Some(Arc::new(Mutex::new(writer)));
        Ok(self)
    }

    /// The underlying pool (chaos campaigns use this to inject worker
    /// exits).
    #[must_use]
    pub fn pool(&self) -> &ThreadPool {
        &self.pool
    }

    /// Rounds processed so far.
    #[must_use]
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Live session count across all shards.
    #[must_use]
    pub fn sessions(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).sessions.len())
            .sum()
    }

    /// Arms a chaos injection for shard `shard` in round `round`
    /// (rounds are 1-based: the next `process_round` is
    /// `self.round() + 1`).
    pub fn set_chaos(&self, round: u64, shard: usize, op: ChaosOp) {
        self.chaos
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert((round, shard), op);
    }

    /// Admits one epoch, creating the receiver's session on first
    /// sight. On a full shard queue the epoch belonging to the
    /// lowest-[`shed_priority`](Session::shed_priority) session is
    /// shed — possibly the incoming one.
    pub fn ingest(&self, epoch: SessionEpoch) -> IngestResult {
        self.metrics.ingested.inc();
        let shard_index = (epoch.receiver % self.shards.len() as u64) as usize;
        let Some(shard) = self.shards.get(shard_index) else {
            // Unreachable by construction (modulo bound), but sheds
            // rather than panics if it ever weren't.
            self.metrics.shed_total.inc();
            return IngestResult::Shed {
                receiver: epoch.receiver,
            };
        };
        let mut shard = shard.lock().unwrap_or_else(|e| e.into_inner());
        shard
            .sessions
            .entry(epoch.receiver)
            .or_insert_with(|| Session::new(epoch.receiver));
        if shard.queue.len() < self.config.queue_capacity {
            shard.queue.push_back(Queued {
                epoch,
                enqueued: Instant::now(),
            });
            return IngestResult::Queued;
        }
        // Backpressure: find the queued epoch with the lowest shed
        // priority and compare it against the incoming one.
        let incoming_priority = shard
            .sessions
            .get(&epoch.receiver)
            .map_or(0.0, Session::shed_priority);
        let mut victim: Option<(usize, f64)> = None;
        for (i, queued) in shard.queue.iter().enumerate() {
            let priority = shard
                .sessions
                .get(&queued.epoch.receiver)
                .map_or(0.0, Session::shed_priority);
            if victim.is_none_or(|(_, best)| priority < best) {
                victim = Some((i, priority));
            }
        }
        self.metrics.shed_total.inc();
        match victim {
            Some((index, priority)) if priority < incoming_priority => {
                let Some(dropped) = shard.queue.remove(index) else {
                    return IngestResult::Shed {
                        receiver: epoch.receiver,
                    };
                };
                shard.queue.push_back(Queued {
                    epoch,
                    enqueued: Instant::now(),
                });
                IngestResult::Shed {
                    receiver: dropped.epoch.receiver,
                }
            }
            _ => IngestResult::Shed {
                receiver: epoch.receiver,
            },
        }
    }

    /// Processes every shard's queue across the pool: one job per
    /// non-empty shard, collected with a round timeout so a dead or
    /// stalled worker costs `service.round_failures`, never a hang.
    pub fn process_round(&mut self) -> RoundResult {
        self.round += 1;
        let round = self.round;
        let (tx, rx) = mpsc::channel::<RoundMessage>();
        let mut expected = 0usize;
        for (shard_index, shard) in self.shards.iter().enumerate() {
            let has_work = !shard
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .queue
                .is_empty();
            if !has_work {
                continue;
            }
            expected += 1;
            let shard = Arc::clone(shard);
            let tx = tx.clone();
            let metrics = Arc::clone(&self.metrics);
            let journal = self.journal.clone();
            let chaos = self.chaos.lock().unwrap_or_else(|e| e.into_inner());
            let chaos_op = chaos.get(&(round, shard_index)).copied();
            drop(chaos);
            let deadline = self.config.deadline;
            self.pool.submit(move || {
                run_shard_round(
                    &shard,
                    round,
                    deadline,
                    chaos_op,
                    journal.as_deref(),
                    &metrics,
                    &tx,
                );
            });
        }
        drop(tx);

        let mut outcomes = Vec::new();
        let mut completed = 0usize;
        let wait_until = Instant::now() + self.config.round_timeout;
        while completed < expected {
            let remaining = wait_until.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                break;
            }
            match rx.recv_timeout(remaining) {
                Ok(RoundMessage::Outcome(outcome)) => outcomes.push(outcome),
                Ok(RoundMessage::ShardDone) => completed += 1,
                Err(mpsc::RecvTimeoutError::Timeout) => break,
                // All senders gone without every Done: panicked job(s).
                Err(mpsc::RecvTimeoutError::Disconnected) => break,
            }
        }
        if completed < expected {
            self.metrics
                .round_failures
                .add((expected - completed) as u64);
        }
        outcomes.sort_by_key(|o| (o.receiver, o.seq));

        // Idle eviction: a session that hasn't absorbed an epoch for
        // `idle_eviction_rounds` releases its warm state.
        let mut evicted = 0usize;
        if round > self.config.idle_eviction_rounds {
            let horizon = round - self.config.idle_eviction_rounds;
            for shard in &self.shards {
                let mut shard = shard.lock().unwrap_or_else(|e| e.into_inner());
                let queued: Vec<u64> = shard.queue.iter().map(|q| q.epoch.receiver).collect();
                let before = shard.sessions.len();
                shard
                    .sessions
                    .retain(|id, s| s.last_active_round() >= horizon || queued.contains(id));
                evicted += before - shard.sessions.len();
            }
        }
        if evicted > 0 {
            self.metrics.sessions_evicted.add(evicted as u64);
        }

        RoundResult {
            outcomes,
            completed_shards: completed,
            expected_shards: expected,
            evicted,
        }
    }

    /// Per-receiver outcome digests, sorted by receiver id.
    #[must_use]
    pub fn session_digests(&self) -> Vec<(u64, u64)> {
        let mut digests: Vec<(u64, u64)> = self
            .shards
            .iter()
            .flat_map(|shard| {
                shard
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .sessions
                    .values()
                    .map(|s| (s.id(), s.digest()))
                    .collect::<Vec<_>>()
            })
            .collect();
        digests.sort_unstable();
        digests
    }

    /// Flushes the journal's outstanding fsync batch.
    ///
    /// # Errors
    ///
    /// Propagates the underlying sync error.
    pub fn sync_journal(&self) -> io::Result<()> {
        if let Some(journal) = &self.journal {
            journal.lock().unwrap_or_else(|e| e.into_inner()).sync()?;
        }
        Ok(())
    }
}

enum RoundMessage {
    Outcome(EpochOutcome),
    ShardDone,
}

/// One dequeued epoch, fully processed inside the shard lock and
/// carried out to the lock-free journaling/report phase of
/// [`run_shard_round`]'s batch drain.
struct DrainedEpoch {
    receiver: u64,
    seq: u64,
    disposition: Disposition,
    dt_s: f64,
    predicted_bias_m: f64,
    measurements: Vec<Measurement>,
    result: Result<ResilientFix, SolveError>,
    digest: u64,
    enqueued: Instant,
}

/// One shard's work for one round: drain the queue, route each epoch
/// by deadline, journal, and report. Runs inside a pool job. With a
/// shallow queue the lock is taken per epoch so `ingest` interleaves
/// cleanly; once the queue is at least [`crate::BLOCK_LANES`] deep the
/// round drains a block's worth per lock acquisition instead —
/// latency is backlog-dominated at that point, so amortizing the lock
/// (and feeding the solvers back-to-back epochs) is pure win. Epoch
/// outcomes are identical either way: FIFO order and per-epoch session
/// processing are preserved, only the lock cadence changes.
fn run_shard_round(
    shard: &Mutex<Shard>,
    round: u64,
    deadline: Duration,
    chaos: Option<ChaosOp>,
    journal: Option<&Mutex<JournalWriter>>,
    metrics: &ServiceMetrics,
    tx: &mpsc::Sender<RoundMessage>,
) {
    match chaos {
        Some(ChaosOp::Stall(pause)) => std::thread::sleep(pause),
        Some(ChaosOp::Panic) => {
            // A controlled "job crashed" for the chaos campaign —
            // resume_unwind skips the panic hook, so storms don't spam
            // stderr, but the pool's catch_unwind still counts it and
            // the round's collector still sees the missing completion.
            std::panic::resume_unwind(Box::new("chaos: injected shard panic"));
        }
        None => {}
    }
    // Reused batch scratch: epochs processed under one lock hold,
    // journaled and reported after it drops.
    let mut drained: Vec<DrainedEpoch> = Vec::with_capacity(crate::BLOCK_LANES);
    loop {
        let mut guard = shard.lock().unwrap_or_else(|e| e.into_inner());
        let depth = guard.queue.len();
        if depth == 0 {
            break;
        }
        // Deep queue → batch drain (see fn docs); shallow → one epoch
        // per lock so ingest interleaves.
        let batch = if depth >= crate::BLOCK_LANES {
            metrics.batch_drains.inc();
            crate::BLOCK_LANES
        } else {
            1
        };
        drained.clear();
        for _ in 0..batch {
            let Some(queued) = guard.queue.pop_front() else {
                break;
            };
            let Queued { epoch, enqueued } = queued;
            let waited = enqueued.elapsed();
            let session = guard
                .sessions
                .entry(epoch.receiver)
                .or_insert_with(|| Session::new(epoch.receiver));
            session.touch(round);
            let seq = session.seq();
            let predicted_bias_m = session.predicted_bias_m();
            let (disposition, result) = if waited > deadline {
                metrics.deadline_expired.inc();
                (
                    Disposition::DeadlineExpired,
                    session.expire_deadline(epoch.dt_s, deadline.as_micros() as u64),
                )
            } else {
                (
                    Disposition::Solved,
                    session.process(&epoch.measurements, epoch.dt_s),
                )
            };
            let digest = session.digest();
            drained.push(DrainedEpoch {
                receiver: epoch.receiver,
                seq,
                disposition,
                dt_s: epoch.dt_s,
                predicted_bias_m,
                measurements: epoch.measurements,
                result,
                digest,
                enqueued,
            });
        }
        drop(guard);

        for epoch in drained.drain(..) {
            if let Some(journal) = journal {
                let record = JournalRecord {
                    receiver: epoch.receiver,
                    seq: epoch.seq,
                    disposition: epoch.disposition,
                    dt_s: epoch.dt_s,
                    predicted_bias_m: epoch.predicted_bias_m,
                    measurements: epoch.measurements,
                    outcome: OutcomeBits::from_result(&epoch.result),
                    digest: epoch.digest,
                };
                let mut writer = journal.lock().unwrap_or_else(|e| e.into_inner());
                if writer.append(&record.encode()).is_ok() {
                    metrics.journal_records.inc();
                    metrics.journal_bytes.set(writer.bytes_written() as f64);
                }
            }

            let latency_us = epoch.enqueued.elapsed().as_micros() as u64;
            metrics.latency_us.record(latency_us as f64);
            let outcome = EpochOutcome {
                receiver: epoch.receiver,
                seq: epoch.seq,
                disposition: epoch.disposition,
                result: epoch.result,
                latency_us,
            };
            if tx.send(RoundMessage::Outcome(outcome)).is_err() {
                return; // collector gave up on this round
            }
        }
    }
    let _ = tx.send(RoundMessage::ShardDone);
}

/// The journaled outcome, reduced to comparable bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct OutcomeBits {
    /// 0 for an error, otherwise the `FixQuality` code.
    kind: u64,
    /// `SolveError::code` when `kind == 0`.
    err_code: u64,
    position_bits: [u64; 3],
}

impl OutcomeBits {
    fn from_result(result: &Result<ResilientFix, SolveError>) -> Self {
        match result {
            Ok(fix) => OutcomeBits {
                kind: u64::from(fix.quality.code()),
                err_code: 0,
                position_bits: [
                    fix.position.x.to_bits(),
                    fix.position.y.to_bits(),
                    fix.position.z.to_bits(),
                ],
            },
            Err(e) => OutcomeBits {
                kind: 0,
                err_code: u64::from(e.code()),
                position_bits: [0; 3],
            },
        }
    }
}

/// One journal record: everything needed to re-run the epoch plus
/// everything needed to verify the re-run matched.
struct JournalRecord {
    receiver: u64,
    seq: u64,
    disposition: Disposition,
    dt_s: f64,
    predicted_bias_m: f64,
    measurements: Vec<Measurement>,
    outcome: OutcomeBits,
    digest: u64,
}

impl JournalRecord {
    // lint: wire_format
    fn encode(&self) -> Vec<u64> {
        let mut words =
            Vec::with_capacity(self.measurements.len().saturating_mul(5).saturating_add(12));
        words.push(self.receiver);
        words.push(self.seq);
        words.push(self.disposition.to_word());
        words.push(self.dt_s.to_bits());
        words.push(self.predicted_bias_m.to_bits());
        words.push(self.measurements.len() as u64);
        for m in &self.measurements {
            words.push(m.position.x.to_bits());
            words.push(m.position.y.to_bits());
            words.push(m.position.z.to_bits());
            words.push(m.pseudorange.to_bits());
            // Elevation feeds solver weighting, so replay needs it;
            // NaN bits encode "unknown".
            words.push(m.elevation.unwrap_or(f64::NAN).to_bits());
        }
        words.push(self.outcome.kind);
        words.push(self.outcome.err_code);
        words.extend_from_slice(&self.outcome.position_bits);
        words.push(self.digest);
        words
    }

    // lint: wire_format
    fn decode(words: &[u64]) -> Option<Self> {
        let mut it = words.iter().copied();
        let receiver = it.next()?;
        let seq = it.next()?;
        let disposition = Disposition::from_word(it.next()?)?;
        let dt_s = f64::from_bits(it.next()?);
        let predicted_bias_m = f64::from_bits(it.next()?);
        let n = it.next()? as usize;
        // `n` comes off the wire: checked math so a hostile count
        // cannot overflow the expected-length comparison.
        let expected = n.checked_mul(5).and_then(|w| w.checked_add(12))?;
        if words.len() != expected {
            return None;
        }
        let mut measurements = Vec::with_capacity(n);
        for _ in 0..n {
            let x = f64::from_bits(it.next()?);
            let y = f64::from_bits(it.next()?);
            let z = f64::from_bits(it.next()?);
            let pr = f64::from_bits(it.next()?);
            let elevation = f64::from_bits(it.next()?);
            let mut m = Measurement::new(gps_geodesy::Ecef::new(x, y, z), pr);
            if elevation.is_finite() {
                m = m.with_elevation(elevation);
            }
            measurements.push(m);
        }
        let kind = it.next()?;
        let err_code = it.next()?;
        let position_bits = [it.next()?, it.next()?, it.next()?];
        let digest = it.next()?;
        Some(JournalRecord {
            receiver,
            seq,
            disposition,
            dt_s,
            predicted_bias_m,
            measurements,
            outcome: OutcomeBits {
                kind,
                err_code,
                position_bits,
            },
            digest,
        })
    }
}

/// Result of replaying a service journal.
#[derive(Debug, Clone)]
pub struct ReplayReport {
    /// Complete records decoded.
    pub records: usize,
    /// Whether the journal ended in a torn tail (SIGKILL mid-append).
    pub truncated: bool,
    /// Records the decoder skipped as structurally invalid.
    pub malformed: usize,
    /// Recomputed outcomes that differed from the journaled bits
    /// (position, quality, digest, or clock prediction).
    pub mismatches: usize,
    /// Per-receiver final digests after the rebuild, sorted by id.
    pub digests: Vec<(u64, u64)>,
}

impl ReplayReport {
    /// Bit-for-bit success: every record replayed to identical bits.
    #[must_use]
    pub fn verified(&self) -> bool {
        self.mismatches == 0 && self.malformed == 0
    }
}

/// Rebuilds session state from a `GPSJRNL1` journal, re-running every
/// record through a fresh [`Session`] and verifying the recomputed
/// outcome bits, clock prediction, and digest chain against what the
/// live run journaled. Tolerates a torn tail (reported, not fatal).
///
/// # Errors
///
/// Returns an error only for IO failures or a non-journal file.
pub fn replay_journal(path: &Path) -> io::Result<ReplayReport> {
    let reader = JournalReader::open(path)?;
    let mut sessions: HashMap<u64, Session> = HashMap::new();
    let mut malformed = 0usize;
    let mut mismatches = 0usize;
    for words in reader.records() {
        let Some(record) = JournalRecord::decode(words) else {
            malformed += 1;
            continue;
        };
        let session = sessions
            .entry(record.receiver)
            .or_insert_with(|| Session::new(record.receiver));
        let mut clean = record.seq == session.seq();
        let predicted = session.predicted_bias_m();
        let result = match record.disposition {
            Disposition::Solved => session.process(&record.measurements, record.dt_s),
            Disposition::DeadlineExpired => {
                // The journaled budget lives in the outcome's error
                // code only; reconstruct with a zero budget — the code
                // and digest are budget-independent.
                session.expire_deadline(record.dt_s, 0)
            }
        };
        clean &= predicted.to_bits() == record.predicted_bias_m.to_bits();
        clean &= OutcomeBits::from_result(&result) == record.outcome;
        clean &= session.digest() == record.digest;
        if !clean {
            mismatches += 1;
        }
    }
    let mut digests: Vec<(u64, u64)> = sessions.values().map(|s| (s.id(), s.digest())).collect();
    digests.sort_unstable();
    Ok(ReplayReport {
        records: reader.records().len(),
        truncated: reader.truncated(),
        malformed,
        mismatches,
        digests,
    })
}

/// Collapses per-receiver digests into one fleet digest (order
/// normalized by sorting), for one-line parity checks between a live
/// run and its replay.
#[must_use]
pub fn fleet_digest(digests: &[(u64, u64)]) -> u64 {
    let mut sorted: Vec<(u64, u64)> = digests.to_vec();
    sorted.sort_unstable();
    let words: Vec<u64> = sorted.iter().flat_map(|&(id, d)| [id, d]).collect();
    gps_telemetry::journal::fnv1a_words(0, &words)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resilient::FixQuality;
    use gps_geodesy::Ecef;

    const TRUTH: Ecef = Ecef {
        x: 6.371e6,
        y: 1.0e5,
        z: -2.0e5,
    };

    fn good_epoch(receiver: u64, bias_m: f64) -> SessionEpoch {
        let sats = [
            Ecef::new(2.0e7, 0.0, 1.7e7),
            Ecef::new(1.5e7, 1.8e7, 0.9e7),
            Ecef::new(1.6e7, -1.7e7, 1.0e7),
            Ecef::new(2.5e7, 0.4e7, -0.6e7),
            Ecef::new(1.9e7, 0.9e7, 1.6e7),
            Ecef::new(0.8e7, 1.4e7, 2.0e7),
        ];
        SessionEpoch {
            receiver,
            dt_s: 1.0,
            measurements: sats
                .iter()
                .map(|&s| Measurement::new(s, s.distance_to(TRUTH) + bias_m))
                .collect(),
        }
    }

    fn quick_config() -> ServiceConfig {
        ServiceConfig {
            workers: 2,
            shards: 2,
            queue_capacity: 8,
            deadline: Duration::from_secs(5),
            ..ServiceConfig::default()
        }
    }

    #[test]
    fn serves_a_fleet_round_with_fixes() {
        let mut service = PositioningService::new(quick_config());
        for receiver in 0..6u64 {
            assert_eq!(
                service.ingest(good_epoch(receiver, 10.0)),
                IngestResult::Queued
            );
        }
        let round = service.process_round();
        assert_eq!(round.expected_shards, 2);
        assert_eq!(round.completed_shards, 2);
        assert_eq!(round.outcomes.len(), 6);
        for outcome in &round.outcomes {
            assert_eq!(outcome.disposition, Disposition::Solved);
            let fix = outcome.result.as_ref().expect("fix");
            assert_eq!(fix.quality, FixQuality::Nominal);
            assert!(fix.position.distance_to(TRUTH) < 1.0);
        }
        assert_eq!(service.sessions(), 6);
    }

    #[test]
    fn zero_deadline_routes_every_epoch_to_expiry() {
        let mut config = quick_config();
        config.deadline = Duration::from_nanos(0);
        let mut service = PositioningService::new(config);
        // Warm each session so expiry has holdover to fall to.
        for receiver in 0..2u64 {
            let _ = service.ingest(good_epoch(receiver, 0.0));
        }
        // With a zero budget even the warmup expires — so the *first*
        // outcomes are deadline errors (no prior fix), and later ones
        // stay typed deadline errors since holdover never initializes.
        let round = service.process_round();
        for outcome in &round.outcomes {
            assert_eq!(outcome.disposition, Disposition::DeadlineExpired);
            assert!(matches!(
                outcome.result,
                Err(SolveError::DeadlineExceeded { .. })
            ));
        }
    }

    #[test]
    fn deadline_expiry_after_warmup_falls_to_holdover() {
        let mut config = quick_config();
        let mut service = PositioningService::new(config);
        let _ = service.ingest(good_epoch(0, 0.0));
        let round = service.process_round();
        assert!(round.outcomes.iter().all(|o| o.result.is_ok()));
        // Second round: expire everything.
        config.deadline = Duration::from_nanos(0);
        service.config = config;
        let _ = service.ingest(good_epoch(0, 0.0));
        let round = service.process_round();
        let outcome = round.outcomes.first().expect("one outcome");
        assert_eq!(outcome.disposition, Disposition::DeadlineExpired);
        let fix = outcome.result.as_ref().expect("holdover fix");
        assert_eq!(fix.quality, FixQuality::Holdover);
    }

    #[test]
    fn full_queue_sheds_lowest_priority_first() {
        let mut config = quick_config();
        config.shards = 1;
        config.queue_capacity = 2;
        let mut service = PositioningService::new(config);
        // Establish quality tiers: receiver 0 nominal, receiver 1
        // fresh (never fixed → priority 0).
        let _ = service.ingest(good_epoch(0, 0.0));
        let _ = service.process_round();

        // Fill the queue: [fresh-1, nominal-0], then push another
        // nominal-0 epoch. The fresh receiver must be the victim.
        assert_eq!(service.ingest(good_epoch(1, 0.0)), IngestResult::Queued);
        assert_eq!(service.ingest(good_epoch(0, 0.0)), IngestResult::Queued);
        let shed = service.ingest(good_epoch(0, 0.0));
        assert_eq!(shed, IngestResult::Shed { receiver: 1 });

        // Now the queue holds two nominal-0 epochs; an incoming epoch
        // from a never-fixed receiver sheds itself.
        let shed = service.ingest(good_epoch(5, 0.0));
        assert_eq!(shed, IngestResult::Shed { receiver: 5 });
    }

    #[test]
    fn deep_queue_batch_drain_preserves_fifo_sessions() {
        // A queue deeper than BLOCK_LANES triggers the batch drain path;
        // outcomes must be indistinguishable from per-epoch draining:
        // every epoch solved, per-receiver seqs strictly in order.
        let mut config = quick_config();
        config.shards = 1;
        config.queue_capacity = 2 * crate::BLOCK_LANES + 4;
        let mut service = PositioningService::new(config);
        let total = 2 * crate::BLOCK_LANES + 3; // odd tail exercises batch=1
        for i in 0..total as u64 {
            assert_eq!(service.ingest(good_epoch(i % 3, 5.0)), IngestResult::Queued);
        }
        let round = service.process_round();
        assert_eq!(round.completed_shards, 1);
        assert_eq!(round.outcomes.len(), total);
        let mut next_seq = [0u64; 3];
        for outcome in &round.outcomes {
            assert_eq!(outcome.disposition, Disposition::Solved);
            assert!(outcome.result.is_ok());
            let r = outcome.receiver as usize;
            assert_eq!(outcome.seq, next_seq[r], "per-receiver FIFO broken");
            next_seq[r] += 1;
        }
    }

    #[test]
    fn chaos_panic_fails_the_round_but_work_survives() {
        let mut config = quick_config();
        config.shards = 1;
        config.round_timeout = Duration::from_millis(500);
        let mut service = PositioningService::new(config);
        let _ = service.ingest(good_epoch(0, 0.0));
        service.set_chaos(1, 0, ChaosOp::Panic);
        let round = service.process_round();
        assert_eq!(round.completed_shards, 0);
        assert_eq!(round.expected_shards, 1);
        assert!(round.outcomes.is_empty());
        // The queue kept the epoch; the next round serves it.
        let round = service.process_round();
        assert_eq!(round.outcomes.len(), 1);
        assert_eq!(round.completed_shards, 1);
    }

    #[test]
    fn journal_replay_is_bit_for_bit() {
        let path =
            std::env::temp_dir().join(format!("gps_service_journal_{}.bin", std::process::id()));
        let digests_live;
        {
            let mut service = PositioningService::new(quick_config())
                .with_journal(&path)
                .expect("journal");
            for round in 0..4 {
                for receiver in 0..5u64 {
                    let _ = service.ingest(good_epoch(receiver, 20.0 + round as f64));
                }
                let result = service.process_round();
                assert_eq!(result.outcomes.len(), 5);
            }
            service.sync_journal().expect("sync");
            digests_live = service.session_digests();
        }
        let report = replay_journal(&path).expect("replay");
        assert_eq!(report.records, 20);
        assert!(!report.truncated);
        assert!(report.verified(), "replay must match bit-for-bit");
        assert_eq!(report.digests, digests_live);
        assert_eq!(fleet_digest(&report.digests), fleet_digest(&digests_live));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_journal_replays_the_intact_prefix() {
        let path = std::env::temp_dir().join(format!(
            "gps_service_journal_torn_{}.bin",
            std::process::id()
        ));
        {
            let mut service = PositioningService::new(quick_config())
                .with_journal(&path)
                .expect("journal");
            for _ in 0..3 {
                for receiver in 0..4u64 {
                    let _ = service.ingest(good_epoch(receiver, 5.0));
                }
                let _ = service.process_round();
            }
            service.sync_journal().expect("sync");
        }
        // SIGKILL mid-append: chop the file mid-record.
        let bytes = std::fs::read(&path).expect("read");
        std::fs::write(&path, &bytes[..bytes.len() - 37]).expect("truncate");
        let report = replay_journal(&path).expect("replay");
        assert!(report.truncated, "torn tail must be reported");
        assert!(report.records < 12, "the torn record must be dropped");
        assert_eq!(report.mismatches, 0, "intact prefix must verify");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn idle_sessions_are_evicted() {
        let mut config = quick_config();
        config.idle_eviction_rounds = 2;
        let mut service = PositioningService::new(config);
        let _ = service.ingest(good_epoch(0, 0.0));
        let _ = service.ingest(good_epoch(1, 0.0));
        let _ = service.process_round();
        assert_eq!(service.sessions(), 2);
        // Keep receiver 0 active; let receiver 1 idle out.
        for _ in 0..4 {
            let _ = service.ingest(good_epoch(0, 0.0));
            let _ = service.process_round();
        }
        assert_eq!(service.sessions(), 1, "idle session must be evicted");
    }
}
