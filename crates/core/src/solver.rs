//! The unified [`Solver`] trait and its zero-allocation [`SolveContext`].
//!
//! The paper's whole contribution is a *comparison* of solvers (NR vs
//! DLO vs DLG, §3.4–§4.5), so every harness in this repository needs to
//! sweep `{NR, DLO, DLG, Bancroft}` uniformly — and a production
//! receiver needs to do so without paying a heap allocation per fix.
//! This module provides both halves:
//!
//! * [`Solver`] is the dispatch surface: one `solve(&Epoch, &mut
//!   SolveContext)` entry point plus capability metadata
//!   ([`Solver::estimates_bias`], [`Solver::is_iterative`]), object-safe
//!   so ladders and engines can hold `Vec<Box<dyn Solver>>`.
//! * [`SolveContext`] owns every scratch buffer the four solvers need
//!   (geometry matrix, right-hand sides, GLS covariance, normal
//!   equations, RAIM workspaces). Buffers are resized in place with
//!   [`Matrix::resize_zeroed`]/[`Vector::resize_zeroed`], so after the
//!   first epoch warms the capacities up, the steady-state hot path
//!   performs **zero heap allocations** (with detail telemetry off —
//!   condition-number observation is gated behind
//!   [`gps_telemetry::detail`] precisely because it allocates).
//!
//! The pre-existing [`PositionSolver`] trait remains the simple
//! allocating API: a blanket impl forwards it to [`Solver`] with a
//! fresh context per call, so `solver.solve(&measurements, bias)` keeps
//! working everywhere.

use std::fmt;

use gps_linalg::lstsq::LstsqScratch;
use gps_linalg::{Matrix, Vector};

use crate::block::EpochBlock;
use crate::{Measurement, PositionSolver, Solution, SolveError};

/// One epoch of solver input: a borrowed slice of satellite
/// measurements plus the externally predicted receiver range bias
/// `ε̂ᴿ = c·Δt̂` in metres (paper eq. 4-4).
///
/// * [`crate::Dlo`]/[`crate::Dlg`] subtract the prediction from every
///   pseudorange (eq. 4-1) — their accuracy depends on its quality;
/// * [`crate::NewtonRaphson`] uses it only as an initial guess;
/// * [`crate::Bancroft`] ignores it (the bias is one of its unknowns).
#[derive(Debug, Clone, Copy)]
pub struct Epoch<'a> {
    /// Satellite positions and pseudoranges for this epoch.
    pub measurements: &'a [Measurement],
    /// Externally predicted receiver range bias `ε̂ᴿ`, metres.
    pub predicted_receiver_bias_m: f64,
}

impl<'a> Epoch<'a> {
    /// Bundles one epoch of measurements with its clock prediction.
    #[must_use]
    pub fn new(measurements: &'a [Measurement], predicted_receiver_bias_m: f64) -> Self {
        Epoch {
            measurements,
            predicted_receiver_bias_m,
        }
    }

    /// Number of measurements in the epoch.
    #[must_use]
    pub fn len(&self) -> usize {
        self.measurements.len()
    }

    /// Returns `true` when the epoch carries no measurements.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.measurements.is_empty()
    }
}

/// Reusable scratch space for RAIM's subset re-solves (indices of the
/// still-active satellites plus the measurement copies handed to the
/// inner solver). Owned by [`SolveContext`] and `mem::take`n by
/// [`crate::Raim::solve_with`] so the context itself stays free for the
/// inner solver during the exclusion loop.
#[derive(Debug, Clone, Default)]
pub(crate) struct RaimScratch {
    /// Indices (into the original slice) still trusted.
    pub(crate) active: Vec<usize>,
    /// Measurement copy for the current active subset.
    pub(crate) subset: Vec<Measurement>,
    /// Measurement copy for the current leave-one-out candidate.
    pub(crate) loo: Vec<Measurement>,
}

/// Owned scratch buffers for the [`Solver`] hot path.
///
/// One context serves any number of solvers sequentially (the buffers
/// are resized per call), but a context must not be shared *between
/// concurrent* solves — give each lane/thread its own. Buffer ownership
/// rules:
///
/// * The solver may leave buffers in any state; callers must not read
///   results out of the context (the returned [`Solution`] is the only
///   output).
/// * Buffers only grow. After the first call at a given satellite
///   count, subsequent calls at the same or smaller counts allocate
///   nothing.
/// * `Default`/[`SolveContext::new`] starts with zero capacity: the
///   first epoch pays the allocations once ("warm-up").
#[derive(Debug, Clone, Default)]
pub struct SolveContext {
    /// Design matrix: NR Jacobian (m×4), DLO/DLG differenced geometry
    /// ((m−1)×3), Bancroft `B` (m×4).
    pub(crate) geometry: Matrix,
    /// Primary right-hand side (NR `−P`, DLO/DLG `Dᵉ`, Bancroft `r`).
    pub(crate) rhs: Vector,
    /// Secondary right-hand side (Bancroft's all-ones vector).
    pub(crate) rhs_aux: Vector,
    /// Primary least-squares solution buffer.
    pub(crate) step: Vector,
    /// Secondary solution buffer (Bancroft's `B⁺e`).
    pub(crate) step_aux: Vector,
    /// Per-measurement weights (NR elevation weighting).
    pub(crate) weights: Vec<f64>,
    /// Clock-corrected pseudoranges `ρᴱᵢ` (eq. 4-1), input order.
    pub(crate) corrected_ranges: Vec<f64>,
    /// Elevation annotations, input order.
    pub(crate) elevations: Vec<Option<f64>>,
    /// DLG covariance `Ψ` (eq. 4-26), factored in place by GLS
    /// (dense ablation lanes only — the structured default never builds it).
    pub(crate) covariance: Matrix,
    /// Diagonal part of the structured Ψ decomposition
    /// `Ψ = ρ₁²·𝟙𝟙ᵀ + diag(d)` (DLG's Sherman–Morrison lane).
    pub(crate) cov_diag: Vec<f64>,
    /// Normal equations / whitening scratch for `gps_linalg::lstsq`.
    pub(crate) lstsq: LstsqScratch,
    /// RAIM fault-exclusion workspaces.
    pub(crate) raim: RaimScratch,
    /// When set, solves take the heap lane even under the stack kernels'
    /// m-cap. Default unset: the stack lane is on (the two lanes are
    /// bit-identical, so this is purely a performance/measurement knob).
    heap_only: bool,
}

impl SolveContext {
    /// Creates an empty context; the first solve sizes the buffers.
    #[must_use]
    pub fn new() -> Self {
        SolveContext::default()
    }

    /// Whether the stack-kernel fast lane is enabled (default: yes).
    ///
    /// With the lane enabled, solvers route epochs of at most
    /// [`gps_linalg::STACK_M_CAP`] measurements through the
    /// const-generic stack kernels of [`gps_linalg::stack`] — no heap
    /// traffic at all, not even warm-up — and fall back to the heap
    /// scratch buffers above the cap. Results are bit-for-bit identical
    /// either way; disabling the lane exists for benchmarks that measure
    /// the heap path and for parity tests.
    #[must_use]
    pub fn stack_kernels(&self) -> bool {
        !self.heap_only
    }

    /// Enables or disables the stack-kernel fast lane.
    pub fn set_stack_kernels(&mut self, enabled: bool) {
        self.heap_only = !enabled;
    }

    /// Builder-style [`SolveContext::set_stack_kernels`].
    #[must_use]
    pub fn with_stack_kernels(mut self, enabled: bool) -> Self {
        self.set_stack_kernels(enabled);
        self
    }
}

/// Lane dispatch shared by the four solvers: the stack fast lane runs
/// when the context allows it, the epoch fits under the
/// [`gps_linalg::STACK_M_CAP`] cap, and detail telemetry is off (the
/// detail observations — condition numbers, covariance-assembly timing —
/// are wired to the heap buffers; both lanes are bit-identical, so
/// falling back costs nothing but speed).
pub(crate) fn stack_lane(ctx: &SolveContext, m: usize) -> bool {
    ctx.stack_kernels() && m <= gps_linalg::STACK_M_CAP && !gps_telemetry::detail()
}

/// Common hot-path interface over the positioning algorithms.
///
/// Object-safe: harnesses hold `Box<dyn Solver>` ladders and dispatch
/// without per-solver match arms. Implemented by
/// [`crate::NewtonRaphson`], [`crate::Dlo`], [`crate::Dlg`] and
/// [`crate::Bancroft`]; a blanket impl derives the allocating
/// [`PositionSolver`] API from any `Solver`, so the two traits never
/// need separate implementations.
pub trait Solver: fmt::Debug + Send + Sync {
    /// Estimates the receiver position for one epoch, using `ctx` for
    /// every intermediate so the steady-state call allocates nothing.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError`] if there are too few satellites, the
    /// geometry is degenerate, the input is non-finite, or (iterative
    /// solvers) the iteration fails to converge.
    fn solve(&self, epoch: &Epoch<'_>, ctx: &mut SolveContext) -> Result<Solution, SolveError>;

    /// Solves every lane of a same-shape [`EpochBlock`], appending one
    /// result per lane to `out` in lane order (callers clear `out`).
    ///
    /// The default implementation loops [`Solver::solve`], so every
    /// solver accepts block feeding; solvers with a structure-of-arrays
    /// lock-step kernel ([`crate::Dlo`]) override it. Either way each
    /// lane's result is **bit-for-bit identical** to a per-epoch
    /// [`Solver::solve`] of the same lane — block mode is a throughput
    /// knob, never a semantics knob.
    // lint: no_alloc
    fn solve_block(
        &self,
        block: &EpochBlock<'_>,
        ctx: &mut SolveContext,
        out: &mut Vec<Result<Solution, SolveError>>,
    ) {
        crate::instrument::block_fallback().inc();
        for epoch in block.epochs() {
            out.push(self.solve(&epoch, ctx));
        }
    }

    /// Short algorithm name for reports ("NR", "DLO", "DLG", "Bancroft").
    fn name(&self) -> &'static str;

    /// The minimum number of satellites this algorithm needs.
    fn min_satellites(&self) -> usize;

    /// Whether the solver estimates the receiver clock bias itself
    /// (NR, Bancroft) rather than consuming the epoch's prediction.
    fn estimates_bias(&self) -> bool {
        false
    }

    /// Whether the solver iterates (NR) or is closed-form.
    fn is_iterative(&self) -> bool {
        false
    }

    /// Clones the solver behind a fresh box, so `Box<dyn Solver>`
    /// ladders are `Clone` despite type erasure.
    fn clone_box(&self) -> Box<dyn Solver>;
}

impl Clone for Box<dyn Solver> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

impl<S: Solver + ?Sized> Solver for &S {
    fn solve(&self, epoch: &Epoch<'_>, ctx: &mut SolveContext) -> Result<Solution, SolveError> {
        (**self).solve(epoch, ctx)
    }

    // Forwarded explicitly: the provided default would loop `solve` and
    // silently bypass the inner solver's SoA override.
    fn solve_block(
        &self,
        block: &EpochBlock<'_>,
        ctx: &mut SolveContext,
        out: &mut Vec<Result<Solution, SolveError>>,
    ) {
        (**self).solve_block(block, ctx, out);
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn min_satellites(&self) -> usize {
        (**self).min_satellites()
    }

    fn estimates_bias(&self) -> bool {
        (**self).estimates_bias()
    }

    fn is_iterative(&self) -> bool {
        (**self).is_iterative()
    }

    fn clone_box(&self) -> Box<dyn Solver> {
        (**self).clone_box()
    }
}

impl<S: Solver + ?Sized> Solver for Box<S> {
    fn solve(&self, epoch: &Epoch<'_>, ctx: &mut SolveContext) -> Result<Solution, SolveError> {
        (**self).solve(epoch, ctx)
    }

    // Forwarded explicitly: the provided default would loop `solve` and
    // silently bypass the inner solver's SoA override.
    fn solve_block(
        &self,
        block: &EpochBlock<'_>,
        ctx: &mut SolveContext,
        out: &mut Vec<Result<Solution, SolveError>>,
    ) {
        (**self).solve_block(block, ctx, out);
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn min_satellites(&self) -> usize {
        (**self).min_satellites()
    }

    fn estimates_bias(&self) -> bool {
        (**self).estimates_bias()
    }

    fn is_iterative(&self) -> bool {
        (**self).is_iterative()
    }

    fn clone_box(&self) -> Box<dyn Solver> {
        (**self).clone_box()
    }
}

/// Every [`Solver`] is a [`PositionSolver`]: the simple API allocates a
/// fresh context per call and forwards. Sweeps, examples and tests keep
/// their `solver.solve(&measurements, bias)` calls; hot loops migrate
/// to [`Solver::solve`] with a reused context.
impl<S: Solver> PositionSolver for S {
    fn solve(
        &self,
        measurements: &[Measurement],
        predicted_receiver_bias_m: f64,
    ) -> Result<Solution, SolveError> {
        let mut ctx = SolveContext::new();
        Solver::solve(
            self,
            &Epoch::new(measurements, predicted_receiver_bias_m),
            &mut ctx,
        )
    }

    fn name(&self) -> &'static str {
        Solver::name(self)
    }

    fn min_satellites(&self) -> usize {
        Solver::min_satellites(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Bancroft, Dlg, Dlo, NewtonRaphson};
    use gps_geodesy::Ecef;

    fn measurements() -> Vec<Measurement> {
        let truth = Ecef::new(6.371e6, 1.0e5, -2.0e5);
        [
            Ecef::new(2.0e7, 0.0, 1.7e7),
            Ecef::new(1.5e7, 1.8e7, 0.9e7),
            Ecef::new(1.6e7, -1.7e7, 1.0e7),
            Ecef::new(2.5e7, 0.4e7, -0.6e7),
            Ecef::new(1.9e7, 0.9e7, 1.6e7),
            Ecef::new(0.8e7, 1.4e7, 2.0e7),
        ]
        .iter()
        .map(|&s| Measurement::new(s, s.distance_to(truth)))
        .collect()
    }

    #[test]
    fn epoch_accessors() {
        let meas = measurements();
        let epoch = Epoch::new(&meas, 12.5);
        assert_eq!(epoch.len(), 6);
        assert!(!epoch.is_empty());
        assert_eq!(epoch.predicted_receiver_bias_m, 12.5);
        assert!(Epoch::new(&[], 0.0).is_empty());
    }

    #[test]
    fn trait_objects_dispatch_and_clone() {
        let ladder: Vec<Box<dyn Solver>> = vec![
            Box::new(Dlg::default()),
            Box::new(Dlo::default()),
            Box::new(NewtonRaphson::default()),
            Box::new(Bancroft),
        ];
        let cloned = ladder.clone();
        let meas = measurements();
        let epoch = Epoch::new(&meas, 0.0);
        let mut ctx = SolveContext::new();
        let truth = Ecef::new(6.371e6, 1.0e5, -2.0e5);
        for (a, b) in ladder.iter().zip(&cloned) {
            assert_eq!(Solver::name(a), Solver::name(b));
            let fix = Solver::solve(a, &epoch, &mut ctx).unwrap();
            assert!(
                fix.position.distance_to(truth) < 1e-2,
                "{}",
                Solver::name(a)
            );
        }
    }

    #[test]
    fn capability_metadata() {
        assert!(Solver::is_iterative(&NewtonRaphson::default()));
        assert!(Solver::estimates_bias(&NewtonRaphson::default()));
        assert!(!Solver::is_iterative(&Dlo::default()));
        assert!(!Solver::estimates_bias(&Dlg::default()));
        assert!(Solver::estimates_bias(&Bancroft));
        assert_eq!(Solver::min_satellites(&Bancroft), 4);
    }

    #[test]
    fn context_reuse_matches_fresh_context() {
        let meas = measurements();
        let epoch = Epoch::new(&meas, 0.0);
        let mut reused = SolveContext::new();
        for solver in [
            &Dlg::default() as &dyn Solver,
            &Dlo::default(),
            &NewtonRaphson::default(),
            &Bancroft,
        ] {
            // Warm the context with a different solver's shapes first,
            // then check the answer is bit-identical to a fresh context.
            let warm = Solver::solve(&solver, &epoch, &mut reused).unwrap();
            let fresh = Solver::solve(&solver, &epoch, &mut SolveContext::new()).unwrap();
            assert_eq!(warm, fresh, "{}", Solver::name(&solver));
        }
    }

    #[test]
    fn blanket_position_solver_matches_context_path() {
        let meas = measurements();
        let epoch = Epoch::new(&meas, 0.0);
        let mut ctx = SolveContext::new();
        let via_trait = Solver::solve(&Dlo::default(), &epoch, &mut ctx).unwrap();
        let via_simple = PositionSolver::solve(&Dlo::default(), &meas, 0.0).unwrap();
        assert_eq!(via_trait, via_simple);
    }
}
