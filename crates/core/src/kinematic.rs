//! Kinematic position filtering for moving receivers.
//!
//! The paper's motivation (§1) is positioning objects that "move at a
//! high speed" in real time. The closed-form solvers deliver the raw
//! per-epoch fix quickly; a moving platform then usually smooths those
//! fixes through a constant-velocity Kalman filter, trading a little
//! latency-free smoothing for substantially lower noise. [`PvFilter`] is
//! that filter: a 6-state (position, velocity) estimator consuming the
//! position fixes any [`crate::PositionSolver`] produces.

use gps_geodesy::Ecef;
use gps_linalg::{LinalgError, Matrix, Vector};

/// A constant-velocity (PV) Kalman filter over ECEF position fixes.
///
/// State `x = [p, v] ∈ R⁶` with dynamics `p ← p + v·dt`, white
/// acceleration process noise (spectral density `q_accel`, (m/s²)²/Hz),
/// and per-axis position measurements with variance `r_pos` (m²).
///
/// # Example
///
/// ```
/// use gps_core::PvFilter;
/// use gps_geodesy::Ecef;
///
/// let mut filter = PvFilter::new(1.0, 25.0);
/// // Feed fixes of a receiver moving +100 m/s in x, 1 Hz:
/// for k in 0..30 {
///     let fix = Ecef::new(100.0 * k as f64, 0.0, 0.0);
///     filter.update(fix, 1.0).unwrap();
/// }
/// let v = filter.velocity().unwrap();
/// assert!((v.x - 100.0).abs() < 5.0);
/// ```
#[derive(Debug, Clone)]
pub struct PvFilter {
    /// State [px, py, pz, vx, vy, vz].
    state: Vector,
    /// 6×6 covariance.
    p: Matrix,
    /// White-acceleration spectral density, (m/s²)²/Hz.
    q_accel: f64,
    /// Position measurement variance per axis, m².
    r_pos: f64,
    initialized: bool,
}

impl PvFilter {
    /// Creates a filter from the white-acceleration density
    /// (`q_accel`, (m/s²)²/Hz; ~1 for a maneuvering vehicle, ~0.01 for a
    /// cruising aircraft) and the per-axis fix variance (`r_pos`, m²).
    ///
    /// # Panics
    ///
    /// Panics if either parameter is not strictly positive.
    #[must_use]
    pub fn new(q_accel: f64, r_pos: f64) -> Self {
        assert!(q_accel > 0.0, "process noise must be positive");
        assert!(r_pos > 0.0, "measurement noise must be positive");
        PvFilter {
            state: Vector::zeros(6),
            p: Matrix::identity(6).scaled(1e12),
            q_accel,
            r_pos,
            initialized: false,
        }
    }

    /// Returns `true` once at least one fix has been absorbed.
    #[must_use]
    pub fn is_initialized(&self) -> bool {
        self.initialized
    }

    /// Current position estimate, or `None` before initialization.
    #[must_use]
    pub fn position(&self) -> Option<Ecef> {
        self.initialized
            .then(|| Ecef::new(self.state[0], self.state[1], self.state[2]))
    }

    /// Current velocity estimate (m/s), or `None` before initialization.
    #[must_use]
    pub fn velocity(&self) -> Option<Ecef> {
        self.initialized
            .then(|| Ecef::new(self.state[3], self.state[4], self.state[5]))
    }

    /// Predicts the position `dt` seconds ahead without mutating the
    /// filter, or `None` before initialization.
    #[must_use]
    pub fn predict_position(&self, dt: f64) -> Option<Ecef> {
        self.position()
            .zip(self.velocity())
            .map(|(p, v)| p + v * dt)
    }

    /// Absorbs one position fix taken `dt` seconds after the previous one.
    ///
    /// The first call initializes the position states directly.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError`] if the innovation covariance cannot be
    /// factored (cannot happen with valid `r_pos`, kept for robustness).
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not strictly positive or `fix` is non-finite.
    pub fn update(&mut self, fix: Ecef, dt: f64) -> Result<(), LinalgError> {
        assert!(dt > 0.0, "dt must be positive");
        assert!(fix.is_finite(), "fix must be finite");
        if !self.initialized {
            self.state = Vector::from_slice(&[fix.x, fix.y, fix.z, 0.0, 0.0, 0.0]);
            // Position known to fix accuracy; velocity unknown.
            self.p =
                Matrix::from_diagonal(&[self.r_pos, self.r_pos, self.r_pos, 1.0e6, 1.0e6, 1.0e6]);
            self.initialized = true;
            return Ok(());
        }

        // --- Predict: x ← F x, P ← F P Fᵀ + Q ---
        let mut f = Matrix::identity(6);
        for axis in 0..3 {
            f[(axis, axis + 3)] = dt;
        }
        self.state = f.matvec(&self.state)?;
        let fp = f.matmul(&self.p)?;
        let mut p_pred = fp.matmul(&f.transpose())?;
        // Discrete white-acceleration Q per axis:
        // [[dt³/3, dt²/2], [dt²/2, dt]] · q.
        let q3 = self.q_accel * dt * dt * dt / 3.0;
        let q2 = self.q_accel * dt * dt / 2.0;
        let q1 = self.q_accel * dt;
        for axis in 0..3 {
            p_pred[(axis, axis)] += q3;
            p_pred[(axis, axis + 3)] += q2;
            p_pred[(axis + 3, axis)] += q2;
            p_pred[(axis + 3, axis + 3)] += q1;
        }
        self.p = p_pred;

        // --- Update with H = [I₃ 0₃]: per-axis scalar-block update ---
        // S = H P Hᵀ + R (3×3), K = P Hᵀ S⁻¹ (6×3).
        let s = Matrix::from_fn(3, 3, |r, c| {
            self.p[(r, c)] + if r == c { self.r_pos } else { 0.0 }
        });
        let s_chol = gps_linalg::Cholesky::new(&s)?;
        let p_ht = Matrix::from_fn(6, 3, |r, c| self.p[(r, c)]);
        // K = P Hᵀ S⁻¹ → solve Sᵀ Kᵀ = (P Hᵀ)ᵀ; S symmetric.
        let k_t = s_chol.solve_matrix(&p_ht.transpose())?; // 3×6
        let k = k_t.transpose(); // 6×3

        let innovation = Vector::from_slice(&[
            fix.x - self.state[0],
            fix.y - self.state[1],
            fix.z - self.state[2],
        ]);
        let correction = k.matvec(&innovation)?;
        self.state = &self.state + &correction;

        // P ← (I − K H) P.
        let mut kh = Matrix::zeros(6, 6);
        for r in 0..6 {
            for c in 0..3 {
                kh[(r, c)] = k[(r, c)];
            }
        }
        let i_kh = &Matrix::identity(6) - &kh;
        self.p = i_kh.matmul(&self.p)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initialization_from_first_fix() {
        let mut f = PvFilter::new(1.0, 25.0);
        assert!(!f.is_initialized());
        assert!(f.position().is_none());
        assert!(f.velocity().is_none());
        f.update(Ecef::new(1.0, 2.0, 3.0), 1.0).unwrap();
        assert!(f.is_initialized());
        assert_eq!(f.position().unwrap(), Ecef::new(1.0, 2.0, 3.0));
        assert_eq!(f.velocity().unwrap(), Ecef::ORIGIN);
    }

    #[test]
    fn learns_constant_velocity() {
        let mut f = PvFilter::new(0.1, 25.0);
        for k in 0..60 {
            let truth = Ecef::new(50.0 * k as f64, -20.0 * k as f64, 5.0 * k as f64);
            f.update(truth, 1.0).unwrap();
        }
        let v = f.velocity().unwrap();
        assert!((v.x - 50.0).abs() < 2.0, "vx {}", v.x);
        assert!((v.y + 20.0).abs() < 2.0, "vy {}", v.y);
        assert!((v.z - 5.0).abs() < 2.0, "vz {}", v.z);
    }

    #[test]
    fn smooths_noisy_fixes() {
        // Static receiver, ±10 m alternating noise: the filtered position
        // must beat the raw fixes.
        let truth = Ecef::new(6.371e6, 0.0, 0.0);
        let mut f = PvFilter::new(0.01, 100.0);
        let mut filtered_err = 0.0;
        let mut raw_err = 0.0;
        let mut count = 0;
        for k in 0..200 {
            let noise = if k % 2 == 0 { 10.0 } else { -10.0 };
            let fix = truth + Ecef::new(noise, -noise, noise * 0.5);
            f.update(fix, 1.0).unwrap();
            if k >= 20 {
                filtered_err += f.position().unwrap().distance_to(truth);
                raw_err += fix.distance_to(truth);
                count += 1;
            }
        }
        assert!(
            filtered_err / f64::from(count) < 0.3 * raw_err / f64::from(count),
            "filtered {filtered_err} vs raw {raw_err}"
        );
    }

    #[test]
    fn prediction_extrapolates_velocity() {
        let mut f = PvFilter::new(0.1, 1.0);
        for k in 0..40 {
            f.update(Ecef::new(10.0 * k as f64, 0.0, 0.0), 1.0).unwrap();
        }
        let ahead = f.predict_position(5.0).unwrap();
        let now = f.position().unwrap();
        assert!((ahead.x - now.x - 50.0).abs() < 5.0);
    }

    #[test]
    fn tracks_maneuver_with_high_process_noise() {
        let mut f = PvFilter::new(10.0, 25.0);
        // Constant velocity then a turn.
        let mut pos = Ecef::ORIGIN;
        for _ in 0..30 {
            pos += Ecef::new(100.0, 0.0, 0.0);
            f.update(pos, 1.0).unwrap();
        }
        for _ in 0..30 {
            pos += Ecef::new(0.0, 100.0, 0.0);
            f.update(pos, 1.0).unwrap();
        }
        let v = f.velocity().unwrap();
        assert!(v.y > 80.0, "vy {} after the turn", v.y);
        assert!(v.x < 20.0, "vx {} after the turn", v.x);
    }

    #[test]
    #[should_panic(expected = "dt must be positive")]
    fn rejects_non_positive_dt() {
        let mut f = PvFilter::new(1.0, 1.0);
        f.update(Ecef::ORIGIN, 0.0).unwrap();
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_non_finite_fix() {
        let mut f = PvFilter::new(1.0, 1.0);
        f.update(Ecef::new(f64::NAN, 0.0, 0.0), 1.0).unwrap();
    }

    #[test]
    #[should_panic(expected = "process noise")]
    fn rejects_bad_parameters() {
        let _ = PvFilter::new(0.0, 1.0);
    }
}
