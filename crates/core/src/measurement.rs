use gps_geodesy::Ecef;

/// One satellite's input to a positioning solve: its ECEF position and the
/// measured pseudorange, optionally annotated with the elevation angle.
///
/// This is the entire per-satellite content of a "data item" in the
/// paper's datasets (§5.2.1). The elevation annotation is not used by the
/// solvers' mathematics — only by [`crate::BaseSelection`] strategies (the
/// paper's §6 "good satellite" extension) and by diagnostic weighting.
///
/// # Example
///
/// ```
/// use gps_core::Measurement;
/// use gps_geodesy::Ecef;
///
/// let m = Measurement::new(Ecef::new(2.0e7, 0.0, 1.0e7), 2.1e7);
/// assert_eq!(m.pseudorange, 2.1e7);
/// assert!(m.elevation.is_none());
/// let annotated = m.with_elevation(0.7);
/// assert_eq!(annotated.elevation, Some(0.7));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measurement {
    /// Satellite ECEF position `(xᵢ, yᵢ, zᵢ)`, metres.
    pub position: Ecef,
    /// Measured pseudorange `ρᵉᵢ`, metres.
    pub pseudorange: f64,
    /// Elevation above the receiver's horizon, radians, if known.
    pub elevation: Option<f64>,
}

impl Measurement {
    /// Creates a measurement without elevation annotation.
    #[must_use]
    pub fn new(position: Ecef, pseudorange: f64) -> Self {
        Measurement {
            position,
            pseudorange,
            elevation: None,
        }
    }

    /// Returns a copy annotated with the elevation angle (radians).
    #[must_use]
    pub fn with_elevation(mut self, elevation_rad: f64) -> Self {
        self.elevation = Some(elevation_rad);
        self
    }

    /// Returns `true` if position and pseudorange are finite.
    #[must_use]
    pub fn is_finite(&self) -> bool {
        self.position.is_finite()
            && self.pseudorange.is_finite()
            && self.elevation.is_none_or(f64::is_finite)
    }
}

/// Validates a measurement batch: finiteness and minimum count.
pub(crate) fn validate(measurements: &[Measurement], need: usize) -> Result<(), crate::SolveError> {
    if measurements.len() < need {
        return Err(crate::SolveError::TooFewSatellites {
            got: measurements.len(),
            need,
        });
    }
    if measurements.iter().any(|m| !m.is_finite()) {
        return Err(crate::SolveError::NonFinite);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SolveError;

    fn m(p: f64) -> Measurement {
        Measurement::new(Ecef::new(p, 0.0, 0.0), p)
    }

    #[test]
    fn finite_checks() {
        assert!(m(1.0).is_finite());
        assert!(!Measurement::new(Ecef::new(f64::NAN, 0.0, 0.0), 1.0).is_finite());
        assert!(!Measurement::new(Ecef::ORIGIN, f64::INFINITY).is_finite());
        assert!(!m(1.0).with_elevation(f64::NAN).is_finite());
    }

    #[test]
    fn validate_count() {
        let ms = vec![m(1.0), m(2.0)];
        assert_eq!(
            validate(&ms, 4).unwrap_err(),
            SolveError::TooFewSatellites { got: 2, need: 4 }
        );
        assert!(validate(&ms, 2).is_ok());
    }

    #[test]
    fn validate_finiteness() {
        let ms = vec![m(1.0), Measurement::new(Ecef::ORIGIN, f64::NAN)];
        assert_eq!(validate(&ms, 1).unwrap_err(), SolveError::NonFinite);
    }
}
