use std::fmt;

use gps_geodesy::Ecef;

/// The result of one positioning solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Solution {
    /// Estimated receiver position `(xᵉ, yᵉ, zᵉ)`, metres ECEF.
    pub position: Ecef,
    /// Estimated receiver range bias `εᴿ` (metres), for algorithms that
    /// solve for it (NR, Bancroft). `None` for DLO/DLG, which consume an
    /// external prediction instead.
    pub receiver_bias_m: Option<f64>,
    /// Iterations performed (1 for the closed-form algorithms).
    pub iterations: usize,
    /// RMS of the post-fit measurement residuals, metres. For NR this is
    /// the RMS of the residual function `Pᵢ` at the accepted iterate; for
    /// the direct methods it is the RMS of the linear-system residual.
    pub residual_rms: f64,
}

impl Solution {
    /// Creates a solution record.
    #[must_use]
    pub fn new(
        position: Ecef,
        receiver_bias_m: Option<f64>,
        iterations: usize,
        residual_rms: f64,
    ) -> Self {
        Solution {
            position,
            receiver_bias_m,
            iterations,
            residual_rms,
        }
    }
}

impl fmt::Display for Solution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "position {} ({} iter, residual {:.3} m",
            self.position, self.iterations, self.residual_rms
        )?;
        if let Some(b) = self.receiver_bias_m {
            write!(f, ", clock bias {b:.3} m")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_with_and_without_bias() {
        let s = Solution::new(Ecef::new(1.0, 2.0, 3.0), Some(4.5), 6, 0.25);
        let text = s.to_string();
        assert!(text.contains("6 iter"));
        assert!(text.contains("4.500"));
        let s2 = Solution::new(Ecef::ORIGIN, None, 1, 0.0);
        assert!(!s2.to_string().contains("clock bias"));
    }
}
