//! Carrier-smoothed pseudoranges (the Hatch filter).
//!
//! Code pseudoranges are noisy (metre-level) but unambiguous; carrier
//! phase is ~100× quieter but carries an unknown integer ambiguity. The
//! classic Hatch filter combines them: propagate the smoothed range with
//! the precise *change* in carrier phase, and pull it slowly toward the
//! noisy code measurement:
//!
//! `ρ̄ₖ = (1/N)·ρₖ + (N−1)/N · (ρ̄ₖ₋₁ + (φₖ − φₖ₋₁))`
//!
//! Feeding smoothed pseudoranges to any of the paper's solvers reduces
//! the per-epoch error without touching the algorithms — an orthogonal
//! accuracy lever that a production receiver always applies.

/// A per-satellite Hatch (carrier-smoothing) filter.
///
/// One instance smooths one satellite's channel; reset it on loss of
/// lock (cycle slip). The window `N` caps the code weight at `1/N`
/// (typical: 100 at 1 Hz).
///
/// # Example
///
/// ```
/// use gps_core::HatchFilter;
///
/// let mut hatch = HatchFilter::new(50);
/// // Static geometry: code wobbles ±2 m, phase is steady.
/// let mut last = 0.0;
/// for k in 0..200 {
///     let code = 2.0e7 + if k % 2 == 0 { 2.0 } else { -2.0 };
///     last = hatch.update(code, 2.0e7);
/// }
/// assert!((last - 2.0e7).abs() < 0.5); // wobble averaged away
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HatchFilter {
    window: u32,
    /// Current smoothed pseudorange, metres.
    smoothed: f64,
    /// Phase-range at the previous update, metres.
    previous_phase: f64,
    /// Updates absorbed so far (saturates at `window`).
    count: u32,
}

impl HatchFilter {
    /// Creates a filter with the given smoothing window (epochs).
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    #[must_use]
    pub fn new(window: u32) -> Self {
        assert!(window > 0, "smoothing window must be positive");
        HatchFilter {
            window,
            smoothed: 0.0,
            previous_phase: 0.0,
            count: 0,
        }
    }

    /// Number of updates absorbed since the last reset (saturates at the
    /// window length).
    #[must_use]
    pub fn count(&self) -> u32 {
        self.count
    }

    /// Resets the filter (call on loss of lock / detected cycle slip).
    pub fn reset(&mut self) {
        self.count = 0;
    }

    /// Absorbs one epoch: the measured code pseudorange and the carrier
    /// phase-range (phase in metres, ambiguity included — only its
    /// *change* is used). Returns the smoothed pseudorange.
    ///
    /// # Panics
    ///
    /// Panics if either input is non-finite.
    pub fn update(&mut self, code_pseudorange: f64, phase_range: f64) -> f64 {
        assert!(
            code_pseudorange.is_finite() && phase_range.is_finite(),
            "measurements must be finite"
        );
        if self.count == 0 {
            self.smoothed = code_pseudorange;
        } else {
            let n = f64::from(self.count.min(self.window - 1) + 1);
            let propagated = self.smoothed + (phase_range - self.previous_phase);
            self.smoothed = code_pseudorange / n + propagated * (n - 1.0) / n;
        }
        self.previous_phase = phase_range;
        self.count = self.count.saturating_add(1).min(self.window);
        self.smoothed
    }

    /// Detects a probable cycle slip: the code-minus-phase divergence
    /// jumped by more than `threshold_m` between epochs. Callers should
    /// [`HatchFilter::reset`] when this returns `true`.
    #[must_use]
    pub fn slip_detected(&self, code_pseudorange: f64, phase_range: f64, threshold_m: f64) -> bool {
        if self.count == 0 {
            return false;
        }
        let predicted = self.smoothed + (phase_range - self.previous_phase);
        (code_pseudorange - predicted).abs() > threshold_m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_update_passes_code_through() {
        let mut h = HatchFilter::new(10);
        assert_eq!(h.update(2.2e7, 1.0e7), 2.2e7);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn static_noise_is_averaged_down() {
        let mut h = HatchFilter::new(100);
        let truth = 2.0e7;
        let mut last = 0.0;
        for k in 0..300 {
            let noise = if k % 2 == 0 { 3.0 } else { -3.0 };
            last = h.update(truth + noise, truth);
        }
        assert!((last - truth).abs() < 0.2, "smoothed err {}", last - truth);
    }

    #[test]
    fn tracks_moving_geometry_through_phase() {
        // Range ramps 100 m/epoch; phase tracks it exactly, code is noisy.
        let mut h = HatchFilter::new(50);
        let mut last = 0.0;
        for k in 0..200 {
            let range = 2.0e7 + 100.0 * k as f64;
            let noise = if k % 2 == 0 { 2.5 } else { -2.5 };
            last = h.update(range + noise, range);
        }
        let final_range = 2.0e7 + 100.0 * 199.0;
        assert!(
            (last - final_range).abs() < 0.5,
            "lag {}",
            last - final_range
        );
    }

    #[test]
    fn code_phase_divergence_biases_slowly() {
        // Ionosphere moves code and phase in opposite directions; the
        // filter follows the code with at most window-scale lag.
        let mut h = HatchFilter::new(20);
        let mut last = 0.0;
        for k in 0..100 {
            let iono = 0.01 * k as f64;
            last = h.update(2.0e7 + iono, 2.0e7 - iono);
        }
        // Final code value is 2.0e7 + 0.99; smoothed lags behind by
        // roughly 2·iono-rate·window.
        let err = (last - (2.0e7 + 0.99)).abs();
        assert!(err < 1.0, "divergence err {err}");
    }

    #[test]
    fn slip_detection_and_reset() {
        let mut h = HatchFilter::new(30);
        for k in 0..10 {
            h.update(2.0e7 + k as f64, 2.0e7 + k as f64);
        }
        // Normal next epoch: no slip.
        assert!(!h.slip_detected(2.0e7 + 10.0, 2.0e7 + 10.0, 5.0));
        // Phase jumped by 30 m (code did not): slip.
        assert!(h.slip_detected(2.0e7 + 10.0, 2.0e7 + 40.0, 5.0));
        h.reset();
        assert_eq!(h.count(), 0);
        assert!(!h.slip_detected(2.0e7, 2.0e7 + 40.0, 5.0));
    }

    #[test]
    fn window_caps_code_weight() {
        // After saturation the filter keeps working (no overflow /
        // degeneration) and stays near truth.
        let mut h = HatchFilter::new(5);
        let mut last = 0.0;
        for k in 0..50 {
            let noise = if k % 2 == 0 { 1.0 } else { -1.0 };
            last = h.update(1.0e7 + noise, 1.0e7);
        }
        assert_eq!(h.count(), 5);
        assert!((last - 1.0e7).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "window")]
    fn zero_window_rejected() {
        let _ = HatchFilter::new(0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_rejected() {
        let mut h = HatchFilter::new(10);
        h.update(f64::NAN, 0.0);
    }
}
