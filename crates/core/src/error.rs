use std::error::Error;
use std::fmt;

use gps_linalg::LinalgError;

/// Error returned by the positioning solvers.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SolveError {
    /// Fewer satellites than the algorithm requires.
    TooFewSatellites {
        /// Number of measurements supplied.
        got: usize,
        /// Minimum the algorithm needs.
        need: usize,
    },
    /// Satellite geometry is degenerate (e.g. coplanar satellites, or two
    /// measurements from the same position), making the underlying linear
    /// system singular.
    DegenerateGeometry(LinalgError),
    /// A pseudorange or satellite coordinate was NaN/∞.
    NonFinite,
    /// The Newton–Raphson iteration did not converge.
    NonConvergence {
        /// Iterations performed before giving up.
        iterations: usize,
        /// Residual norm at the final iterate, metres.
        residual: f64,
    },
    /// Bancroft's quadratic had no real root (inconsistent measurements).
    NoRealRoot,
    /// RAIM detected an inconsistency it could not isolate: the residual
    /// test still failed after every permitted exclusion (or no
    /// leave-one-out subset solved), so no integrity-assured solution
    /// exists for this epoch.
    IntegrityFault {
        /// Measurement indices (into the original slice) excluded before
        /// giving up. Empty when identification never succeeded at all.
        excluded: Vec<usize>,
        /// Residual RMS of the last full-set solve, metres.
        residual: f64,
    },
    /// The epoch's deadline budget expired before a solver ran: the
    /// service dropped the job rather than block its shard, and the
    /// session fell to holdover (or reported no fix when holdover was
    /// exhausted).
    DeadlineExceeded {
        /// The deadline budget that expired, microseconds.
        budget_us: u64,
    },
}

impl SolveError {
    /// Compact wire code for flight-recorder records (stable across
    /// releases; new variants append).
    #[must_use]
    pub fn code(&self) -> u16 {
        match self {
            SolveError::TooFewSatellites { .. } => 1,
            SolveError::DegenerateGeometry(_) => 2,
            SolveError::NonFinite => 3,
            SolveError::NonConvergence { .. } => 4,
            SolveError::NoRealRoot => 5,
            SolveError::IntegrityFault { .. } => 6,
            SolveError::DeadlineExceeded { .. } => 7,
        }
    }

    /// Short stable name for a [`SolveError::code`] read back from a
    /// flight-recorder dump; `None` for unknown codes.
    #[must_use]
    pub fn code_name(code: u16) -> Option<&'static str> {
        match code {
            1 => Some("too_few_satellites"),
            2 => Some("degenerate_geometry"),
            3 => Some("non_finite"),
            4 => Some("non_convergence"),
            5 => Some("no_real_root"),
            6 => Some("integrity_fault"),
            7 => Some("deadline_exceeded"),
            _ => None,
        }
    }
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::TooFewSatellites { got, need } => {
                write!(f, "too few satellites: got {got}, need at least {need}")
            }
            SolveError::DegenerateGeometry(e) => {
                write!(f, "degenerate satellite geometry: {e}")
            }
            SolveError::NonFinite => write!(f, "measurement contains a non-finite value"),
            SolveError::NonConvergence {
                iterations,
                residual,
            } => write!(
                f,
                "iteration failed to converge after {iterations} steps (residual {residual:.3} m)"
            ),
            SolveError::NoRealRoot => {
                write!(f, "closed-form quadratic has no real root")
            }
            SolveError::IntegrityFault { excluded, residual } => write!(
                f,
                "integrity fault: residual {residual:.3} m still fails the test after excluding {} satellite(s) {excluded:?}",
                excluded.len()
            ),
            SolveError::DeadlineExceeded { budget_us } => {
                write!(f, "deadline exceeded: {budget_us} µs budget expired")
            }
        }
    }
}

impl Error for SolveError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SolveError::DegenerateGeometry(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for SolveError {
    fn from(e: LinalgError) -> Self {
        match e {
            LinalgError::NonFinite => SolveError::NonFinite,
            other => SolveError::DegenerateGeometry(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let cases: Vec<(SolveError, &str)> = vec![
            (SolveError::TooFewSatellites { got: 2, need: 4 }, "too few"),
            (
                SolveError::DegenerateGeometry(LinalgError::Singular),
                "degenerate",
            ),
            (SolveError::NonFinite, "non-finite"),
            (
                SolveError::NonConvergence {
                    iterations: 25,
                    residual: 1.5,
                },
                "converge",
            ),
            (SolveError::NoRealRoot, "real root"),
            (
                SolveError::IntegrityFault {
                    excluded: vec![2, 5],
                    residual: 48.0,
                },
                "integrity",
            ),
            (SolveError::DeadlineExceeded { budget_us: 500 }, "deadline"),
        ];
        for (e, needle) in cases {
            assert!(e.to_string().contains(needle), "{e}");
        }
    }

    #[test]
    fn linalg_conversion() {
        assert_eq!(
            SolveError::from(LinalgError::NonFinite),
            SolveError::NonFinite
        );
        assert!(matches!(
            SolveError::from(LinalgError::Singular),
            SolveError::DegenerateGeometry(LinalgError::Singular)
        ));
    }

    #[test]
    fn source_chains_to_linalg() {
        let e = SolveError::DegenerateGeometry(LinalgError::Singular);
        assert!(e.source().is_some());
        assert!(SolveError::NonFinite.source().is_none());
        assert!(SolveError::IntegrityFault {
            excluded: vec![],
            residual: 1.0,
        }
        .source()
        .is_none());
    }

    #[test]
    fn codes_are_distinct_and_named() {
        let errors = [
            SolveError::TooFewSatellites { got: 2, need: 4 },
            SolveError::DegenerateGeometry(LinalgError::Singular),
            SolveError::NonFinite,
            SolveError::NonConvergence {
                iterations: 25,
                residual: 1.5,
            },
            SolveError::NoRealRoot,
            SolveError::IntegrityFault {
                excluded: vec![],
                residual: 1.0,
            },
            SolveError::DeadlineExceeded { budget_us: 500 },
        ];
        let mut seen = std::collections::HashSet::new();
        for e in &errors {
            let code = e.code();
            assert!(seen.insert(code), "duplicate code {code}");
            assert!(SolveError::code_name(code).is_some(), "unnamed code {code}");
        }
        assert_eq!(SolveError::code_name(0), None);
        assert_eq!(SolveError::code_name(999), None);
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SolveError>();
    }
}
