use gps_geodesy::Ecef;
use gps_linalg::{lstsq, Matrix, Vector};

use crate::instrument;
use crate::measurement::validate;
use crate::{BaseSelection, Measurement, Solution, SolveError};
use gps_telemetry::{Event, Level};

/// The directly linearized trilateration system `A·Xᵉ = Dᵉ` of the paper's
/// eq. 4-8, before any least-squares estimator is applied.
///
/// Shared by [`Dlo`] (OLS, eq. 4-12) and [`crate::Dlg`] (GLS, eq. 4-21);
/// exposed publicly so callers can inspect the geometry or plug in their
/// own estimator.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearSystem {
    /// The `(m−1) × 3` design matrix of eq. 4-9: row `j` is
    /// `(xⱼ − x₁, yⱼ − y₁, zⱼ − z₁)`.
    pub a: Matrix,
    /// The right-hand side of eq. 4-11.
    pub d: Vector,
    /// Which input measurement served as the base (index into the original
    /// slice).
    pub base_index: usize,
    /// Clock-corrected pseudoranges `ρᴱᵢ = ρᵉᵢ − ε̂ᴿ` (eq. 4-1), in input
    /// order. The DLG covariance (eq. 4-26) is built from these.
    pub corrected_ranges: Vec<f64>,
    /// Elevation annotations in input order (used by the elevation-scaled
    /// covariance variant; `None` where unannotated).
    pub elevations: Vec<Option<f64>>,
}

/// Builds the direct linearization of eq. 4-6/4-7: subtracts the base
/// equation from every other equation, eliminating the quadratic terms
/// `xᵉ² + yᵉ² + zᵉ²` because their coefficients are identical in every
/// equation.
///
/// `predicted_receiver_bias_m` is `ε̂ᴿ` (metres); it is subtracted from
/// every pseudorange first (eq. 4-1).
///
/// # Errors
///
/// * [`SolveError::TooFewSatellites`] for fewer than 4 measurements (the
///   paper requires `m > 3`).
/// * [`SolveError::NonFinite`] for NaN/∞ input.
pub fn linearize(
    measurements: &[Measurement],
    predicted_receiver_bias_m: f64,
    base: BaseSelection,
) -> Result<LinearSystem, SolveError> {
    let mut a = Matrix::default();
    let mut d = Vector::default();
    let mut corrected_ranges = Vec::new();
    let mut elevations = Vec::new();
    let base_index = linearize_into(
        measurements,
        predicted_receiver_bias_m,
        base,
        &mut a,
        &mut d,
        &mut corrected_ranges,
        &mut elevations,
    )?;
    Ok(LinearSystem {
        a,
        d,
        base_index,
        corrected_ranges,
        elevations,
    })
}

/// [`linearize`] with caller-provided buffers: fills `a`, `d`,
/// `corrected_ranges` and `elevations` in place (reusing their
/// capacity) and returns the selected base index. The hot path behind
/// both direct solvers' [`crate::Solver`] impls.
pub(crate) fn linearize_into(
    measurements: &[Measurement],
    predicted_receiver_bias_m: f64,
    base: BaseSelection,
    a: &mut Matrix,
    d: &mut Vector,
    corrected_ranges: &mut Vec<f64>,
    elevations: &mut Vec<Option<f64>>,
) -> Result<usize, SolveError> {
    validate(measurements, 4)?;
    if !predicted_receiver_bias_m.is_finite() {
        return Err(SolveError::NonFinite);
    }
    let base_index = base.select(measurements);
    let m = measurements.len();
    if gps_telemetry::detail() {
        instrument::base_index().record(base_index as f64);
    }

    corrected_ranges.clear();
    corrected_ranges.extend(
        measurements
            .iter()
            .map(|meas| meas.pseudorange - predicted_receiver_bias_m),
    );
    elevations.clear();
    elevations.extend(measurements.iter().map(|m| m.elevation));

    let s1 = measurements[base_index].position;
    let rho1 = corrected_ranges[base_index];
    let s1_norm_sq = s1.norm_squared();

    a.resize_zeroed(m - 1, 3);
    d.resize_zeroed(m - 1);
    let mut row = 0;
    for (j, meas) in measurements.iter().enumerate() {
        if j == base_index {
            continue;
        }
        let sj = meas.position;
        let rhoj = corrected_ranges[j];
        let r = a.row_mut(row);
        r[0] = sj.x - s1.x;
        r[1] = sj.y - s1.y;
        r[2] = sj.z - s1.z;
        d[row] = 0.5 * ((sj.norm_squared() - s1_norm_sq) - (rhoj * rhoj - rho1 * rho1));
        row += 1;
    }
    Ok(base_index)
}

/// RMS of the linear-system residual `A·x − d`, normalized to a
/// per-equation range-domain scale.
///
/// The raw residual lives in the squared-range domain of eq. 4-11
/// (`dⱼ` is built from `ρⱼ²`), so its magnitude scales with the
/// pseudoranges themselves: a δ-metre measurement error perturbs row `j`
/// by `∂dⱼ/∂ρⱼ·δ = −ρⱼ·δ`. Dividing each component by its row's
/// corrected range converts the residual back to equivalent metres of
/// pseudorange, making [`crate::Solution::residual_rms`] comparable
/// across NR, Bancroft and the direct methods — which is what RAIM
/// thresholds and validation gates assume.
/// Operates on the raw linearization buffers (row `r` of `a`/`d`
/// corresponds to input measurement `r` when `r < base_index`, else
/// `r + 1`) and performs no allocation.
pub(crate) fn residual_rms_scaled(
    a: &Matrix,
    d: &Vector,
    corrected_ranges: &[f64],
    base_index: usize,
    x: Ecef,
) -> f64 {
    let rows = a.rows();
    let mut sum = 0.0;
    for r in 0..rows {
        let row = a.row(r);
        let component = d[r] - (row[0] * x.x + row[1] * x.y + row[2] * x.z);
        let j = if r < base_index { r } else { r + 1 };
        let scale = corrected_ranges[j].abs().max(1.0);
        sum += (component / scale).powi(2);
    }
    (sum / rows as f64).sqrt()
}

/// Algorithm **DLO**: Direct Linearization with the Ordinary Least Squares
/// method (paper §4.5).
///
/// The three steps of the paper's pseudo-code:
///
/// 1. `ε̂ᴿ` is calculated externally (a clock-bias predictor, eq. 4-4) and
///    passed in;
/// 2. the pseudoranges are corrected (`ρᴱᵢ`, eq. 4-1) and the system is
///    linearized by base-equation subtraction ([`linearize`], eq. 4-8);
/// 3. the closed-form OLS solution `Xᵉ = (AᵀA)⁻¹AᵀDᵉ` (eq. 4-12) is
///    returned. **One shot — no iteration**, which is where the paper's
///    ~5× speedup over NR comes from.
///
/// # Example
///
/// See the crate-level example, which exercises exactly this type.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Dlo {
    base: BaseSelection,
}

impl Dlo {
    /// Creates a DLO solver with the paper's base choice (the first
    /// satellite as supplied).
    #[must_use]
    pub fn new() -> Self {
        Dlo::default()
    }

    /// Sets the base-satellite selection strategy (the paper's §6 first
    /// extension).
    #[must_use]
    pub fn with_base_selection(mut self, base: BaseSelection) -> Self {
        self.base = base;
        self
    }

    /// The configured base selection.
    #[must_use]
    pub fn base_selection(&self) -> BaseSelection {
        self.base
    }
}

// Implemented without importing `Solver`, so `.solve(&meas, bias)` in
// this module (and in `use super::*` tests) still resolves through
// `PositionSolver` unambiguously.
impl crate::Solver for Dlo {
    // lint: no_alloc
    fn solve(
        &self,
        epoch: &crate::Epoch<'_>,
        ctx: &mut crate::SolveContext,
    ) -> Result<Solution, SolveError> {
        let base_index = linearize_into(
            epoch.measurements,
            epoch.predicted_receiver_bias_m,
            self.base,
            &mut ctx.geometry,
            &mut ctx.rhs,
            &mut ctx.corrected_ranges,
            &mut ctx.elevations,
        )?;
        lstsq::ols_into(&ctx.geometry, &ctx.rhs, &mut ctx.lstsq, &mut ctx.step)?;
        let position = Ecef::new(ctx.step[0], ctx.step[1], ctx.step[2]);
        let rms = residual_rms_scaled(
            &ctx.geometry,
            &ctx.rhs,
            &ctx.corrected_ranges,
            base_index,
            position,
        );
        instrument::dlo_solves().inc();
        // The eigendecomposition behind the condition number costs more
        // than the solve itself (and allocates); only observe it when
        // detail is on.
        if gps_telemetry::detail() {
            if let Some(kappa) = instrument::design_condition_number(&ctx.geometry) {
                instrument::dlo_condition().record(kappa);
                if gps_telemetry::enabled(Level::Debug) {
                    Event::new(Level::Debug, "core.dlo", "solved")
                        .with("condition_number", kappa)
                        .with("base_index", base_index)
                        .with("residual_rms_m", rms)
                        .emit();
                }
            }
        }
        Ok(Solution::new(position, None, 1, rms))
    }

    fn name(&self) -> &'static str {
        "DLO"
    }

    fn min_satellites(&self) -> usize {
        4
    }

    fn clone_box(&self) -> Box<dyn crate::Solver> {
        Box::new(*self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PositionSolver;

    fn sats() -> Vec<Ecef> {
        vec![
            Ecef::new(2.0e7, 0.0, 1.7e7),
            Ecef::new(1.5e7, 1.8e7, 0.9e7),
            Ecef::new(1.6e7, -1.7e7, 1.0e7),
            Ecef::new(2.5e7, 0.4e7, -0.6e7),
            Ecef::new(1.9e7, 0.9e7, 1.6e7),
            Ecef::new(0.8e7, 1.4e7, 2.0e7),
            Ecef::new(1.2e7, -0.4e7, 2.2e7),
        ]
    }

    fn exact(truth: Ecef, bias: f64, n: usize) -> Vec<Measurement> {
        sats()
            .into_iter()
            .take(n)
            .map(|s| Measurement::new(s, s.distance_to(truth) + bias))
            .collect()
    }

    #[test]
    fn exact_recovery_no_bias() {
        let truth = Ecef::new(6.371e6, -2.0e5, 3.0e5);
        for n in 4..=7 {
            let fix = Dlo::new().solve(&exact(truth, 0.0, n), 0.0).unwrap();
            assert!(
                fix.position.distance_to(truth) < 1e-3,
                "n={n}: err {}",
                fix.position.distance_to(truth)
            );
            assert_eq!(fix.iterations, 1);
            assert!(fix.receiver_bias_m.is_none());
        }
    }

    #[test]
    fn exact_recovery_with_perfect_bias_prediction() {
        let truth = Ecef::new(3.6e6, -5.2e6, 6.0e5);
        let bias = 333.0;
        let meas = exact(truth, bias, 6);
        let fix = Dlo::new().solve(&meas, bias).unwrap();
        assert!(fix.position.distance_to(truth) < 1e-3);
    }

    #[test]
    fn unpredicted_bias_degrades_solution() {
        let truth = Ecef::new(6.371e6, 0.0, 0.0);
        let bias = 300.0;
        let meas = exact(truth, bias, 6);
        let with_prediction = Dlo::new().solve(&meas, bias).unwrap();
        let without = Dlo::new().solve(&meas, 0.0).unwrap();
        assert!(without.position.distance_to(truth) > with_prediction.position.distance_to(truth));
        // 300 m of uncorrected common bias leaks into the position at
        // roughly the same order of magnitude.
        assert!(without.position.distance_to(truth) > 50.0);
    }

    #[test]
    fn linearize_produces_expected_shapes() {
        let truth = Ecef::new(6.371e6, 0.0, 0.0);
        let meas = exact(truth, 0.0, 6);
        let sys = linearize(&meas, 0.0, BaseSelection::First).unwrap();
        assert_eq!(sys.a.shape(), (5, 3));
        assert_eq!(sys.d.len(), 5);
        assert_eq!(sys.base_index, 0);
        assert_eq!(sys.corrected_ranges.len(), 6);
        // The true position satisfies the system exactly.
        // The D entries are ~10¹⁴ m², so machine-epsilon cancellation
        // leaves residuals of a few cm in range units; assert relative
        // smallness.
        let xv = Vector::from_slice(&[truth.x, truth.y, truth.z]);
        let r = lstsq::residual(&sys.a, &sys.d, &xv).unwrap();
        assert!(
            r.norm_inf() / sys.d.norm_inf() < 1e-13,
            "relative residual {}",
            r.norm_inf() / sys.d.norm_inf()
        );
    }

    #[test]
    fn base_selection_changes_base_row() {
        let truth = Ecef::new(6.371e6, 0.0, 0.0);
        let meas: Vec<Measurement> = exact(truth, 0.0, 5)
            .into_iter()
            .enumerate()
            .map(|(k, m)| m.with_elevation(k as f64 * 0.1))
            .collect();
        let sys = linearize(&meas, 0.0, BaseSelection::HighestElevation).unwrap();
        assert_eq!(sys.base_index, 4);
        // Solution unchanged (exact data): any base works.
        let fix = Dlo::new()
            .with_base_selection(BaseSelection::HighestElevation)
            .solve(&meas, 0.0)
            .unwrap();
        assert!(fix.position.distance_to(truth) < 1e-3);
    }

    #[test]
    fn rejects_too_few_and_non_finite() {
        let truth = Ecef::new(6.371e6, 0.0, 0.0);
        assert_eq!(
            Dlo::new().solve(&exact(truth, 0.0, 3), 0.0).unwrap_err(),
            SolveError::TooFewSatellites { got: 3, need: 4 }
        );
        let meas = exact(truth, 0.0, 4);
        assert_eq!(
            Dlo::new().solve(&meas, f64::NAN).unwrap_err(),
            SolveError::NonFinite
        );
    }

    #[test]
    fn degenerate_geometry_detected() {
        // All satellites on a line through the base: A is rank-deficient.
        let meas: Vec<Measurement> = (0..5)
            .map(|k| {
                let s = Ecef::new(2.0e7 + k as f64 * 1.0e6, 0.0, 0.0);
                Measurement::new(s, 1.5e7)
            })
            .collect();
        assert!(matches!(
            Dlo::new().solve(&meas, 0.0).unwrap_err(),
            SolveError::DegenerateGeometry(_)
        ));
    }

    #[test]
    fn residual_rms_zero_for_exact_data() {
        let truth = Ecef::new(6.371e6, 1.0e5, 2.0e5);
        let fix = Dlo::new().solve(&exact(truth, 0.0, 7), 0.0).unwrap();
        assert!(fix.residual_rms < 1.0, "rms {}", fix.residual_rms);
    }

    #[test]
    fn trait_metadata() {
        let dlo = Dlo::new();
        assert_eq!(dlo.name(), "DLO");
        assert_eq!(dlo.min_satellites(), 4);
        assert_eq!(dlo.base_selection(), BaseSelection::First);
    }
}
