use gps_geodesy::Ecef;
use gps_linalg::stack::{self, SMat, SVec};
use gps_linalg::{lstsq, Matrix, Vector, STACK_M_CAP};

use crate::instrument;
use crate::measurement::validate;
use crate::{BaseSelection, Measurement, Solution, SolveError};
use gps_telemetry::{Event, Level};

/// The directly linearized trilateration system `A·Xᵉ = Dᵉ` of the paper's
/// eq. 4-8, before any least-squares estimator is applied.
///
/// Shared by [`Dlo`] (OLS, eq. 4-12) and [`crate::Dlg`] (GLS, eq. 4-21);
/// exposed publicly so callers can inspect the geometry or plug in their
/// own estimator.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearSystem {
    /// The `(m−1) × 3` design matrix of eq. 4-9: row `j` is
    /// `(xⱼ − x₁, yⱼ − y₁, zⱼ − z₁)`.
    pub a: Matrix,
    /// The right-hand side of eq. 4-11.
    pub d: Vector,
    /// Which input measurement served as the base (index into the original
    /// slice).
    pub base_index: usize,
    /// Clock-corrected pseudoranges `ρᴱᵢ = ρᵉᵢ − ε̂ᴿ` (eq. 4-1), in input
    /// order. The DLG covariance (eq. 4-26) is built from these.
    pub corrected_ranges: Vec<f64>,
    /// Elevation annotations in input order (used by the elevation-scaled
    /// covariance variant; `None` where unannotated).
    pub elevations: Vec<Option<f64>>,
}

/// Builds the direct linearization of eq. 4-6/4-7: subtracts the base
/// equation from every other equation, eliminating the quadratic terms
/// `xᵉ² + yᵉ² + zᵉ²` because their coefficients are identical in every
/// equation.
///
/// `predicted_receiver_bias_m` is `ε̂ᴿ` (metres); it is subtracted from
/// every pseudorange first (eq. 4-1).
///
/// # Errors
///
/// * [`SolveError::TooFewSatellites`] for fewer than 4 measurements (the
///   paper requires `m > 3`).
/// * [`SolveError::NonFinite`] for NaN/∞ input.
pub fn linearize(
    measurements: &[Measurement],
    predicted_receiver_bias_m: f64,
    base: BaseSelection,
) -> Result<LinearSystem, SolveError> {
    let mut a = Matrix::default();
    let mut d = Vector::default();
    let mut corrected_ranges = Vec::new();
    let mut elevations = Vec::new();
    let base_index = linearize_into(
        measurements,
        predicted_receiver_bias_m,
        base,
        &mut a,
        &mut d,
        &mut corrected_ranges,
        &mut elevations,
    )?;
    Ok(LinearSystem {
        a,
        d,
        base_index,
        corrected_ranges,
        elevations,
    })
}

/// [`linearize`] with caller-provided buffers: fills `a`, `d`,
/// `corrected_ranges` and `elevations` in place (reusing their
/// capacity) and returns the selected base index. The hot path behind
/// both direct solvers' [`crate::Solver`] impls.
pub(crate) fn linearize_into(
    measurements: &[Measurement],
    predicted_receiver_bias_m: f64,
    base: BaseSelection,
    a: &mut Matrix,
    d: &mut Vector,
    corrected_ranges: &mut Vec<f64>,
    elevations: &mut Vec<Option<f64>>,
) -> Result<usize, SolveError> {
    validate(measurements, 4)?;
    if !predicted_receiver_bias_m.is_finite() {
        return Err(SolveError::NonFinite);
    }
    let base_index = base.select(measurements);
    let m = measurements.len();
    if gps_telemetry::detail() {
        instrument::base_index().record(base_index as f64);
    }

    corrected_ranges.clear();
    corrected_ranges.extend(
        measurements
            .iter()
            .map(|meas| meas.pseudorange - predicted_receiver_bias_m),
    );
    elevations.clear();
    elevations.extend(measurements.iter().map(|m| m.elevation));

    let s1 = measurements[base_index].position;
    let rho1 = corrected_ranges[base_index];
    let s1_norm_sq = s1.norm_squared();

    a.resize_zeroed(m - 1, 3);
    d.resize_zeroed(m - 1);
    let mut row = 0;
    for (j, meas) in measurements.iter().enumerate() {
        if j == base_index {
            continue;
        }
        let sj = meas.position;
        let rhoj = corrected_ranges[j];
        let r = a.row_mut(row);
        r[0] = sj.x - s1.x;
        r[1] = sj.y - s1.y;
        r[2] = sj.z - s1.z;
        d[row] = 0.5 * ((sj.norm_squared() - s1_norm_sq) - (rhoj * rhoj - rho1 * rho1));
        row += 1;
    }
    Ok(base_index)
}

/// The direct linearization gathered into stack storage: the fast-lane
/// counterpart of [`linearize_into`] for epochs under the
/// [`STACK_M_CAP`] satellite cap. `Copy`, a few hundred bytes, no heap
/// traffic at any point.
#[derive(Debug, Clone, Copy)]
pub(crate) struct StackLinearization {
    /// The `(m−1) × 3` design matrix of eq. 4-9.
    pub(crate) a: SMat<STACK_M_CAP, 3>,
    /// The right-hand side of eq. 4-11.
    pub(crate) d: SVec<STACK_M_CAP>,
    /// Clock-corrected pseudoranges, input order (`m` active entries).
    pub(crate) corrected: [f64; STACK_M_CAP],
    /// Elevation annotations, input order (`m` active entries).
    pub(crate) elevations: [Option<f64>; STACK_M_CAP],
    /// Which input measurement served as the base.
    pub(crate) base_index: usize,
}

/// Stack mirror of [`linearize_into`]: identical validation order and
/// identical per-entry arithmetic, so the gathered system is bit-equal
/// to the heap one. Callers guarantee `measurements.len() ≤
/// STACK_M_CAP` (the lane dispatch does).
// lint: no_alloc
pub(crate) fn linearize_stack(
    measurements: &[Measurement],
    predicted_receiver_bias_m: f64,
    base: BaseSelection,
) -> Result<StackLinearization, SolveError> {
    validate(measurements, 4)?;
    if !predicted_receiver_bias_m.is_finite() {
        return Err(SolveError::NonFinite);
    }
    let base_index = base.select(measurements);
    let m = measurements.len();

    let mut sys = StackLinearization {
        a: SMat::zeroed(m - 1),
        d: SVec::zeroed(m - 1),
        corrected: [0.0; STACK_M_CAP],
        elevations: [None; STACK_M_CAP],
        base_index,
    };
    for (i, meas) in measurements.iter().enumerate() {
        sys.corrected[i] = meas.pseudorange - predicted_receiver_bias_m;
        sys.elevations[i] = meas.elevation;
    }

    let s1 = measurements[base_index].position;
    let rho1 = sys.corrected[base_index];
    let s1_norm_sq = s1.norm_squared();

    let mut row = 0;
    for (j, meas) in measurements.iter().enumerate() {
        if j == base_index {
            continue;
        }
        let sj = meas.position;
        let rhoj = sys.corrected[j];
        let r = sys.a.row_mut(row);
        r[0] = sj.x - s1.x;
        r[1] = sj.y - s1.y;
        r[2] = sj.z - s1.z;
        sys.d.as_mut_slice()[row] =
            0.5 * ((sj.norm_squared() - s1_norm_sq) - (rhoj * rhoj - rho1 * rho1));
        row += 1;
    }
    Ok(sys)
}

/// Stack mirror of [`residual_rms_scaled`]: same per-row operations on
/// the stack-resident system.
// lint: no_alloc
pub(crate) fn residual_rms_scaled_stack(
    a: &SMat<STACK_M_CAP, 3>,
    d: &SVec<STACK_M_CAP>,
    corrected_ranges: &[f64],
    base_index: usize,
    x: Ecef,
) -> f64 {
    let rows = a.rows();
    let mut sum = 0.0;
    for r in 0..rows {
        let row = a.row(r);
        let component = d.as_slice()[r] - (row[0] * x.x + row[1] * x.y + row[2] * x.z);
        let j = if r < base_index { r } else { r + 1 };
        let scale = corrected_ranges[j].abs().max(1.0);
        sum += (component / scale).powi(2);
    }
    (sum / rows as f64).sqrt()
}

/// RMS of the linear-system residual `A·x − d`, normalized to a
/// per-equation range-domain scale.
///
/// The raw residual lives in the squared-range domain of eq. 4-11
/// (`dⱼ` is built from `ρⱼ²`), so its magnitude scales with the
/// pseudoranges themselves: a δ-metre measurement error perturbs row `j`
/// by `∂dⱼ/∂ρⱼ·δ = −ρⱼ·δ`. Dividing each component by its row's
/// corrected range converts the residual back to equivalent metres of
/// pseudorange, making [`crate::Solution::residual_rms`] comparable
/// across NR, Bancroft and the direct methods — which is what RAIM
/// thresholds and validation gates assume.
/// Operates on the raw linearization buffers (row `r` of `a`/`d`
/// corresponds to input measurement `r` when `r < base_index`, else
/// `r + 1`) and performs no allocation.
pub(crate) fn residual_rms_scaled(
    a: &Matrix,
    d: &Vector,
    corrected_ranges: &[f64],
    base_index: usize,
    x: Ecef,
) -> f64 {
    let rows = a.rows();
    let mut sum = 0.0;
    for r in 0..rows {
        let row = a.row(r);
        let component = d[r] - (row[0] * x.x + row[1] * x.y + row[2] * x.z);
        let j = if r < base_index { r } else { r + 1 };
        let scale = corrected_ranges[j].abs().max(1.0);
        sum += (component / scale).powi(2);
    }
    (sum / rows as f64).sqrt()
}

/// Algorithm **DLO**: Direct Linearization with the Ordinary Least Squares
/// method (paper §4.5).
///
/// The three steps of the paper's pseudo-code:
///
/// 1. `ε̂ᴿ` is calculated externally (a clock-bias predictor, eq. 4-4) and
///    passed in;
/// 2. the pseudoranges are corrected (`ρᴱᵢ`, eq. 4-1) and the system is
///    linearized by base-equation subtraction ([`linearize`], eq. 4-8);
/// 3. the closed-form OLS solution `Xᵉ = (AᵀA)⁻¹AᵀDᵉ` (eq. 4-12) is
///    returned. **One shot — no iteration**, which is where the paper's
///    ~5× speedup over NR comes from.
///
/// # Example
///
/// See the crate-level example, which exercises exactly this type.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Dlo {
    base: BaseSelection,
}

impl Dlo {
    /// Creates a DLO solver with the paper's base choice (the first
    /// satellite as supplied).
    #[must_use]
    pub fn new() -> Self {
        Dlo::default()
    }

    /// Sets the base-satellite selection strategy (the paper's §6 first
    /// extension).
    #[must_use]
    pub fn with_base_selection(mut self, base: BaseSelection) -> Self {
        self.base = base;
        self
    }

    /// The configured base selection.
    #[must_use]
    pub fn base_selection(&self) -> BaseSelection {
        self.base
    }

    /// Stack-kernel fast lane: the same mathematics as the heap path in
    /// [`crate::Solver::solve`] with every intermediate on the stack.
    /// Bit-identical to the heap lane (pinned by `tests/solver_contract.rs`).
    // lint: no_alloc
    fn solve_stack(&self, epoch: &crate::Epoch<'_>) -> Result<Solution, SolveError> {
        let sys = linearize_stack(
            epoch.measurements,
            epoch.predicted_receiver_bias_m,
            self.base,
        )?;
        let step = stack::ols3(&sys.a, &sys.d)?;
        let position = Ecef::new(step[0], step[1], step[2]);
        let rms = residual_rms_scaled_stack(
            &sys.a,
            &sys.d,
            &sys.corrected[..epoch.len()],
            sys.base_index,
            position,
        );
        instrument::dlo_solves().inc();
        Ok(Solution::new(position, None, 1, rms))
    }

    /// Structure-of-arrays lock-step solve: all lanes of a same-shape
    /// block gathered lane-inner and pushed through one row loop, so
    /// the normal-equation accumulation autovectorizes *across epochs*.
    ///
    /// Per-lane operation order is exactly [`Dlo::solve_stack`]'s — the
    /// loop interchange reorders work between lanes, never within one —
    /// so every lane's result (and error) is bit-identical to the
    /// per-epoch path.
    // lint: no_alloc
    fn solve_block_soa(
        &self,
        block: &crate::EpochBlock<'_>,
        out: &mut Vec<Result<Solution, SolveError>>,
    ) {
        use crate::block::BLOCK_LANES;
        use gps_linalg::LinalgError;

        let lanes = block.lanes();
        let m = block.measurements_per_epoch();

        // Per-lane scalar gather (validation and base selection are
        // inherently per-epoch); padded lanes get an error that is never
        // read.
        let sys: [Result<StackLinearization, SolveError>; BLOCK_LANES] =
            core::array::from_fn(|l| {
                if l < lanes {
                    let epoch = block.epoch(l);
                    linearize_stack(
                        epoch.measurements,
                        epoch.predicted_receiver_bias_m,
                        self.base,
                    )
                } else {
                    Err(SolveError::NonFinite)
                }
            });

        // SoA transpose: row-major per lane → lane-inner per row, so the
        // accumulation loop below reads contiguous `[f64; BLOCK_LANES]`
        // vectors. Failed lanes stay zeroed (harmless arithmetic).
        let rows = m - 1;
        let mut ax = [[0.0_f64; BLOCK_LANES]; STACK_M_CAP];
        let mut ay = [[0.0_f64; BLOCK_LANES]; STACK_M_CAP];
        let mut az = [[0.0_f64; BLOCK_LANES]; STACK_M_CAP];
        let mut dd = [[0.0_f64; BLOCK_LANES]; STACK_M_CAP];
        for (l, lane_sys) in sys.iter().enumerate().take(lanes) {
            if let Ok(s) = lane_sys {
                for r in 0..rows {
                    let row = s.a.row(r);
                    ax[r][l] = row[0];
                    ay[r][l] = row[1];
                    az[r][l] = row[2];
                    dd[r][l] = s.d.as_slice()[r];
                }
            }
        }

        // Lock-step normal-equation accumulation: per lane this adds the
        // same products to the same accumulators in the same row order as
        // the scalar `stack::ols3`, so each lane's sums are bit-equal.
        let mut g00 = [0.0_f64; BLOCK_LANES];
        let mut g01 = [0.0_f64; BLOCK_LANES];
        let mut g02 = [0.0_f64; BLOCK_LANES];
        let mut g11 = [0.0_f64; BLOCK_LANES];
        let mut g12 = [0.0_f64; BLOCK_LANES];
        let mut g22 = [0.0_f64; BLOCK_LANES];
        let mut c0 = [0.0_f64; BLOCK_LANES];
        let mut c1 = [0.0_f64; BLOCK_LANES];
        let mut c2 = [0.0_f64; BLOCK_LANES];
        for r in 0..rows {
            let (x, y, z, w) = (&ax[r], &ay[r], &az[r], &dd[r]);
            for l in 0..BLOCK_LANES {
                g00[l] += x[l] * x[l];
                g01[l] += x[l] * y[l];
                g02[l] += x[l] * z[l];
                g11[l] += y[l] * y[l];
                g12[l] += y[l] * z[l];
                g22[l] += z[l] * z[l];
                c0[l] += x[l] * w[l];
                c1[l] += y[l] * w[l];
                c2[l] += z[l] * w[l];
            }
        }

        // Per-lane epilogue: the scalar ols3 input check, singular test,
        // Cramer solve and residual — identical statements, lane data.
        for (l, lane_sys) in sys.into_iter().enumerate().take(lanes) {
            let s = match lane_sys {
                Ok(s) => s,
                Err(e) => {
                    out.push(Err(e));
                    continue;
                }
            };
            // Mirror of `stack::check_kernel` for this shape: the shape
            // arms cannot fire (m ≥ 4 ⇒ rows ≥ 3, d is built alongside
            // a), leaving only the finiteness scan.
            let finite =
                s.a.active_rows()
                    .iter()
                    .all(|row| row.iter().all(|v| v.is_finite()))
                    && s.d.as_slice().iter().all(|v| v.is_finite());
            if !finite {
                out.push(Err(LinalgError::NonFinite.into()));
                continue;
            }
            let det = g00[l] * (g11[l] * g22[l] - g12[l] * g12[l])
                - g01[l] * (g01[l] * g22[l] - g12[l] * g02[l])
                + g02[l] * (g01[l] * g12[l] - g11[l] * g02[l]);
            let scale = [g00[l], g11[l], g22[l]].into_iter().fold(0.0f64, f64::max);
            if det.abs() <= 1e-13 * scale * scale * scale.max(f64::MIN_POSITIVE) {
                out.push(Err(LinalgError::Singular.into()));
                continue;
            }
            let x0 = (c0[l] * (g11[l] * g22[l] - g12[l] * g12[l])
                - g01[l] * (c1[l] * g22[l] - g12[l] * c2[l])
                + g02[l] * (c1[l] * g12[l] - g11[l] * c2[l]))
                / det;
            let x1 = (g00[l] * (c1[l] * g22[l] - c2[l] * g12[l])
                - c0[l] * (g01[l] * g22[l] - g12[l] * g02[l])
                + g02[l] * (g01[l] * c2[l] - c1[l] * g02[l]))
                / det;
            let x2 = (g00[l] * (g11[l] * c2[l] - g12[l] * c1[l])
                - g01[l] * (g01[l] * c2[l] - c1[l] * g02[l])
                + c0[l] * (g01[l] * g12[l] - g11[l] * g02[l]))
                / det;
            let position = Ecef::new(x0, x1, x2);
            let rms =
                residual_rms_scaled_stack(&s.a, &s.d, &s.corrected[..m], s.base_index, position);
            instrument::dlo_solves().inc();
            out.push(Ok(Solution::new(position, None, 1, rms)));
        }
    }
}

// Implemented without importing `Solver`, so `.solve(&meas, bias)` in
// this module (and in `use super::*` tests) still resolves through
// `PositionSolver` unambiguously.
impl crate::Solver for Dlo {
    // lint: no_alloc
    fn solve(
        &self,
        epoch: &crate::Epoch<'_>,
        ctx: &mut crate::SolveContext,
    ) -> Result<Solution, SolveError> {
        if crate::solver::stack_lane(ctx, epoch.len()) {
            return self.solve_stack(epoch);
        }
        let base_index = linearize_into(
            epoch.measurements,
            epoch.predicted_receiver_bias_m,
            self.base,
            &mut ctx.geometry,
            &mut ctx.rhs,
            &mut ctx.corrected_ranges,
            &mut ctx.elevations,
        )?;
        lstsq::ols_into(&ctx.geometry, &ctx.rhs, &mut ctx.lstsq, &mut ctx.step)?;
        let position = Ecef::new(ctx.step[0], ctx.step[1], ctx.step[2]);
        let rms = residual_rms_scaled(
            &ctx.geometry,
            &ctx.rhs,
            &ctx.corrected_ranges,
            base_index,
            position,
        );
        instrument::dlo_solves().inc();
        // The eigendecomposition behind the condition number costs more
        // than the solve itself (and allocates); only observe it when
        // detail is on.
        if gps_telemetry::detail() {
            if let Some(kappa) = instrument::design_condition_number(&ctx.geometry) {
                instrument::dlo_condition().record(kappa);
                if gps_telemetry::enabled(Level::Debug) {
                    Event::new(Level::Debug, "core.dlo", "solved")
                        .with("condition_number", kappa)
                        .with("base_index", base_index)
                        .with("residual_rms_m", rms)
                        .emit();
                }
            }
        }
        Ok(Solution::new(position, None, 1, rms))
    }

    // lint: no_alloc
    fn solve_block(
        &self,
        block: &crate::EpochBlock<'_>,
        ctx: &mut crate::SolveContext,
        out: &mut Vec<Result<Solution, SolveError>>,
    ) {
        if !crate::solver::stack_lane(ctx, block.measurements_per_epoch()) {
            // Heap lane (cap exceeded, detail telemetry, or explicitly
            // disabled): the scalar loop preserves exact semantics.
            instrument::block_fallback().inc();
            for epoch in block.epochs() {
                out.push(crate::Solver::solve(self, &epoch, ctx));
            }
            return;
        }
        instrument::block_solves().inc();
        self.solve_block_soa(block, out);
    }

    fn name(&self) -> &'static str {
        "DLO"
    }

    fn min_satellites(&self) -> usize {
        4
    }

    fn clone_box(&self) -> Box<dyn crate::Solver> {
        Box::new(*self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PositionSolver;

    fn sats() -> Vec<Ecef> {
        vec![
            Ecef::new(2.0e7, 0.0, 1.7e7),
            Ecef::new(1.5e7, 1.8e7, 0.9e7),
            Ecef::new(1.6e7, -1.7e7, 1.0e7),
            Ecef::new(2.5e7, 0.4e7, -0.6e7),
            Ecef::new(1.9e7, 0.9e7, 1.6e7),
            Ecef::new(0.8e7, 1.4e7, 2.0e7),
            Ecef::new(1.2e7, -0.4e7, 2.2e7),
        ]
    }

    fn exact(truth: Ecef, bias: f64, n: usize) -> Vec<Measurement> {
        sats()
            .into_iter()
            .take(n)
            .map(|s| Measurement::new(s, s.distance_to(truth) + bias))
            .collect()
    }

    #[test]
    fn exact_recovery_no_bias() {
        let truth = Ecef::new(6.371e6, -2.0e5, 3.0e5);
        for n in 4..=7 {
            let fix = Dlo::new().solve(&exact(truth, 0.0, n), 0.0).unwrap();
            assert!(
                fix.position.distance_to(truth) < 1e-3,
                "n={n}: err {}",
                fix.position.distance_to(truth)
            );
            assert_eq!(fix.iterations, 1);
            assert!(fix.receiver_bias_m.is_none());
        }
    }

    #[test]
    fn exact_recovery_with_perfect_bias_prediction() {
        let truth = Ecef::new(3.6e6, -5.2e6, 6.0e5);
        let bias = 333.0;
        let meas = exact(truth, bias, 6);
        let fix = Dlo::new().solve(&meas, bias).unwrap();
        assert!(fix.position.distance_to(truth) < 1e-3);
    }

    #[test]
    fn unpredicted_bias_degrades_solution() {
        let truth = Ecef::new(6.371e6, 0.0, 0.0);
        let bias = 300.0;
        let meas = exact(truth, bias, 6);
        let with_prediction = Dlo::new().solve(&meas, bias).unwrap();
        let without = Dlo::new().solve(&meas, 0.0).unwrap();
        assert!(without.position.distance_to(truth) > with_prediction.position.distance_to(truth));
        // 300 m of uncorrected common bias leaks into the position at
        // roughly the same order of magnitude.
        assert!(without.position.distance_to(truth) > 50.0);
    }

    #[test]
    fn linearize_produces_expected_shapes() {
        let truth = Ecef::new(6.371e6, 0.0, 0.0);
        let meas = exact(truth, 0.0, 6);
        let sys = linearize(&meas, 0.0, BaseSelection::First).unwrap();
        assert_eq!(sys.a.shape(), (5, 3));
        assert_eq!(sys.d.len(), 5);
        assert_eq!(sys.base_index, 0);
        assert_eq!(sys.corrected_ranges.len(), 6);
        // The true position satisfies the system exactly.
        // The D entries are ~10¹⁴ m², so machine-epsilon cancellation
        // leaves residuals of a few cm in range units; assert relative
        // smallness.
        let xv = Vector::from_slice(&[truth.x, truth.y, truth.z]);
        let r = lstsq::residual(&sys.a, &sys.d, &xv).unwrap();
        assert!(
            r.norm_inf() / sys.d.norm_inf() < 1e-13,
            "relative residual {}",
            r.norm_inf() / sys.d.norm_inf()
        );
    }

    #[test]
    fn base_selection_changes_base_row() {
        let truth = Ecef::new(6.371e6, 0.0, 0.0);
        let meas: Vec<Measurement> = exact(truth, 0.0, 5)
            .into_iter()
            .enumerate()
            .map(|(k, m)| m.with_elevation(k as f64 * 0.1))
            .collect();
        let sys = linearize(&meas, 0.0, BaseSelection::HighestElevation).unwrap();
        assert_eq!(sys.base_index, 4);
        // Solution unchanged (exact data): any base works.
        let fix = Dlo::new()
            .with_base_selection(BaseSelection::HighestElevation)
            .solve(&meas, 0.0)
            .unwrap();
        assert!(fix.position.distance_to(truth) < 1e-3);
    }

    #[test]
    fn rejects_too_few_and_non_finite() {
        let truth = Ecef::new(6.371e6, 0.0, 0.0);
        assert_eq!(
            Dlo::new().solve(&exact(truth, 0.0, 3), 0.0).unwrap_err(),
            SolveError::TooFewSatellites { got: 3, need: 4 }
        );
        let meas = exact(truth, 0.0, 4);
        assert_eq!(
            Dlo::new().solve(&meas, f64::NAN).unwrap_err(),
            SolveError::NonFinite
        );
    }

    #[test]
    fn degenerate_geometry_detected() {
        // All satellites on a line through the base: A is rank-deficient.
        let meas: Vec<Measurement> = (0..5)
            .map(|k| {
                let s = Ecef::new(2.0e7 + k as f64 * 1.0e6, 0.0, 0.0);
                Measurement::new(s, 1.5e7)
            })
            .collect();
        assert!(matches!(
            Dlo::new().solve(&meas, 0.0).unwrap_err(),
            SolveError::DegenerateGeometry(_)
        ));
    }

    #[test]
    fn residual_rms_zero_for_exact_data() {
        let truth = Ecef::new(6.371e6, 1.0e5, 2.0e5);
        let fix = Dlo::new().solve(&exact(truth, 0.0, 7), 0.0).unwrap();
        assert!(fix.residual_rms < 1.0, "rms {}", fix.residual_rms);
    }

    #[test]
    fn trait_metadata() {
        let dlo = Dlo::new();
        assert_eq!(dlo.name(), "DLO");
        assert_eq!(dlo.min_satellites(), 4);
        assert_eq!(dlo.base_selection(), BaseSelection::First);
    }
}
