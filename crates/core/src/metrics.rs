//! The paper's evaluation metrics (§5.1) and summary statistics.
//!
//! * [`absolute_error`] — eq. 5-1: Euclidean distance between the
//!   estimated and true receiver positions.
//! * [`accuracy_rate`] — eq. 5-2: `η = d_O / d_NR × 100 %`. Above 100 %
//!   means algorithm `O` is less accurate than the NR baseline.
//! * [`execution_time_rate`] — eq. 5-3: `θ = τ_O / τ_NR × 100 %`. Below
//!   100 % means algorithm `O` is faster than NR.
//! * [`Summary`] — running mean/min/max/RMS over a series (e.g. the
//!   86 400 epochs of one dataset).

use gps_geodesy::{Ecef, LocalFrame};

/// A position error split into its horizontal and vertical components in
/// the local tangent frame at the true position.
///
/// The paper reports only the 3-D error (eq. 5-1); practitioners usually
/// track HPE/VPE separately because vertical accuracy is systematically
/// worse (satellites are only above the receiver) and because the §2
/// citation \[27\] ties clock handling specifically to *vertical* accuracy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HorizontalVertical {
    /// Horizontal (east-north plane) error, metres, non-negative.
    pub horizontal: f64,
    /// Vertical (up axis) error, metres, signed (positive = estimate too
    /// high).
    pub vertical: f64,
}

/// Splits the position error into horizontal and vertical components at
/// the true position.
///
/// # Example
///
/// ```
/// use gps_core::metrics::horizontal_vertical_error;
/// use gps_geodesy::{Geodetic, LocalFrame, Enu};
///
/// let truth = Geodetic::from_deg(45.0, 7.0, 100.0).to_ecef();
/// let frame = LocalFrame::new(truth);
/// let est = frame.to_ecef(Enu::new(3.0, 4.0, -2.0));
/// let hv = horizontal_vertical_error(est, truth);
/// assert!((hv.horizontal - 5.0).abs() < 1e-9);
/// assert!((hv.vertical + 2.0).abs() < 1e-9);
/// ```
#[must_use]
pub fn horizontal_vertical_error(estimate: Ecef, truth: Ecef) -> HorizontalVertical {
    let enu = LocalFrame::new(truth).to_enu(estimate);
    HorizontalVertical {
        horizontal: enu.horizontal_norm(),
        vertical: enu.up,
    }
}

/// Absolute positioning error `d_O` (paper eq. 5-1), metres.
///
/// # Example
///
/// ```
/// use gps_core::metrics::absolute_error;
/// use gps_geodesy::Ecef;
///
/// let truth = Ecef::new(1.0, 2.0, 2.0);
/// assert_eq!(absolute_error(Ecef::ORIGIN, truth), 3.0);
/// ```
#[must_use]
pub fn absolute_error(estimate: Ecef, truth: Ecef) -> f64 {
    estimate.distance_to(truth)
}

/// Accuracy rate `η = d_O / d_NR × 100 %` (paper eq. 5-2).
///
/// # Panics
///
/// Panics if `d_nr` is not strictly positive (the rate is undefined).
#[must_use]
pub fn accuracy_rate(d_o: f64, d_nr: f64) -> f64 {
    assert!(d_nr > 0.0, "NR error must be positive to form a rate");
    d_o / d_nr * 100.0
}

/// Execution-time rate `θ = τ_O / τ_NR × 100 %` (paper eq. 5-3).
///
/// # Panics
///
/// Panics if `tau_nr` is not strictly positive.
#[must_use]
pub fn execution_time_rate(tau_o: f64, tau_nr: f64) -> f64 {
    assert!(tau_nr > 0.0, "NR time must be positive to form a rate");
    tau_o / tau_nr * 100.0
}

/// Streaming summary statistics over a series of scalar observations.
///
/// # Example
///
/// ```
/// use gps_core::metrics::Summary;
///
/// let s: Summary = [1.0, 2.0, 3.0].into_iter().collect();
/// assert_eq!(s.count(), 3);
/// assert_eq!(s.mean(), 2.0);
/// assert_eq!(s.min(), 1.0);
/// assert_eq!(s.max(), 3.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Summary {
    count: usize,
    sum: f64,
    sum_sq: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    #[must_use]
    pub fn new() -> Self {
        Summary {
            count: 0,
            sum: 0.0,
            sum_sq: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        self.sum += x;
        self.sum_sq += x * x;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> usize {
        self.count
    }

    /// Arithmetic mean. Returns 0 for an empty summary.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Root mean square. Returns 0 for an empty summary.
    #[must_use]
    pub fn rms(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            (self.sum_sq / self.count as f64).sqrt()
        }
    }

    /// Population standard deviation. Returns 0 for an empty summary.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let mean = self.mean();
        (self.sum_sq / self.count as f64 - mean * mean)
            .max(0.0)
            .sqrt()
    }

    /// Smallest observation.
    ///
    /// # Panics
    ///
    /// Panics on an empty summary.
    #[must_use]
    pub fn min(&self) -> f64 {
        assert!(self.count > 0, "min of empty summary");
        self.min
    }

    /// Largest observation.
    ///
    /// # Panics
    ///
    /// Panics on an empty summary.
    #[must_use]
    pub fn max(&self) -> f64 {
        assert!(self.count > 0, "max of empty summary");
        self.max
    }

    /// Merges another summary into this one.
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.sum_sq += other.sum_sq;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Summary::new();
        for x in iter {
            s.push(x);
        }
        s
    }
}

impl Extend<f64> for Summary {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absolute_error_is_distance() {
        let e = absolute_error(Ecef::new(3.0, 4.0, 0.0), Ecef::ORIGIN);
        assert_eq!(e, 5.0);
    }

    #[test]
    fn hv_decomposition_consistent_with_3d() {
        use gps_geodesy::{Enu, Geodetic};
        let truth = Geodetic::from_deg(-33.0, 151.0, 50.0).to_ecef();
        let frame = gps_geodesy::LocalFrame::new(truth);
        let est = frame.to_ecef(Enu::new(-6.0, 8.0, 12.0));
        let hv = horizontal_vertical_error(est, truth);
        assert!((hv.horizontal - 10.0).abs() < 1e-6);
        assert!((hv.vertical - 12.0).abs() < 1e-6);
        // 3-D error is the RSS of the components.
        let d3 = absolute_error(est, truth);
        assert!((d3 - (hv.horizontal.powi(2) + hv.vertical.powi(2)).sqrt()).abs() < 1e-6);
        // Zero error decomposes to zero.
        let zero = horizontal_vertical_error(truth, truth);
        assert_eq!(zero.horizontal, 0.0);
        assert_eq!(zero.vertical, 0.0);
    }

    #[test]
    fn rates_follow_paper_conventions() {
        // η > 100% ⇒ worse than NR.
        assert_eq!(accuracy_rate(2.0, 1.0), 200.0);
        assert_eq!(accuracy_rate(1.0, 1.0), 100.0);
        // θ < 100% ⇒ faster than NR.
        assert_eq!(execution_time_rate(1.0, 5.0), 20.0);
    }

    #[test]
    fn rates_at_paper_typical_values() {
        // Fig 5.2: DLG ≈ 110% of the NR error.
        assert!((accuracy_rate(5.5, 5.0) - 110.0).abs() < 1e-12);
        // Fig 5.1: DLO ≈ 18% of the NR time (300 ns vs 1666.67 ns).
        assert!((execution_time_rate(300.0, 1_666.666_666_666_7) - 18.0).abs() < 1e-9);
        // The rate is scale-free: nanoseconds and microseconds agree.
        assert!(
            (execution_time_rate(0.3, 1.666_666_666_666_7)
                - execution_time_rate(300.0, 1_666.666_666_666_7))
            .abs()
                < 1e-9
        );
    }

    #[test]
    fn single_observation_summary_is_degenerate() {
        let s: Summary = std::iter::once(4.25).collect();
        assert_eq!(s.count(), 1);
        assert_eq!(s.mean(), 4.25);
        assert_eq!(s.min(), 4.25);
        assert_eq!(s.max(), 4.25);
        assert_eq!(s.rms(), 4.25);
        assert_eq!(s.std_dev(), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn accuracy_rate_rejects_zero_baseline() {
        let _ = accuracy_rate(1.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn time_rate_rejects_zero_baseline() {
        let _ = execution_time_rate(1.0, 0.0);
    }

    #[test]
    fn summary_statistics() {
        let s: Summary = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert_eq!(s.count(), 8);
        assert_eq!(s.mean(), 5.0);
        assert_eq!(s.std_dev(), 2.0);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert!((s.rms() - (29.0f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_summary_defaults() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.rms(), 0.0);
        assert_eq!(s.std_dev(), 0.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_min_panics() {
        let _ = Summary::new().min();
    }

    #[test]
    fn merge_equals_combined_stream() {
        let all: Summary = (0..100).map(f64::from).collect();
        let mut a: Summary = (0..50).map(f64::from).collect();
        let b: Summary = (50..100).map(f64::from).collect();
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-12);
        assert!((a.rms() - all.rms()).abs() < 1e-12);
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
        // Merging an empty summary is a no-op.
        let before = a;
        a.merge(&Summary::new());
        assert_eq!(a, before);
    }

    #[test]
    fn extend_appends() {
        let mut s = Summary::new();
        s.extend([1.0, 3.0]);
        assert_eq!(s.count(), 2);
        assert_eq!(s.mean(), 2.0);
    }
}
