//! Batched epoch processing over the [`Solver`] trait.
//!
//! [`Engine`] owns one [`Lane`] per solver, and every lane owns its own
//! [`SolveContext`]. Feeding a stream of epochs through
//! [`Engine::run_epoch`] therefore reuses each solver's scratch buffers
//! epoch after epoch: after the first (warm-up) epoch the steady-state
//! hot path performs no heap allocation. This is the harness the
//! benchmarks and the CLI `engine` smoke run drive; contrast it with
//! [`crate::ResilientSolver`], which walks the same solvers as a
//! *degradation ladder* (first acceptable fix wins) instead of running
//! them all side by side.

use std::time::{Duration, Instant};

use crate::instrument;
use crate::{
    Bancroft, Dlg, Dlo, Epoch, EpochBlock, EpochJob, Measurement, NewtonRaphson, Solution,
    SolveContext, SolveError, Solver,
};

/// Running tallies for one [`Lane`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LaneStats {
    /// Epochs fed through the lane.
    pub epochs: u64,
    /// Epochs the solver returned `Ok`.
    pub solved: u64,
    /// Epochs the solver returned `Err`.
    pub failed: u64,
    /// Wall-clock time spent inside the solver across all epochs.
    pub total_time: Duration,
}

impl LaneStats {
    /// Mean time per epoch, or zero before the first epoch.
    #[must_use]
    pub fn mean_time(&self) -> Duration {
        if self.epochs == 0 {
            Duration::ZERO
        } else {
            // Divide in u128 nanoseconds: `Duration / u32` would silently
            // saturate the divisor at u32::MAX for huge epoch counts.
            let nanos = self.total_time.as_nanos() / u128::from(self.epochs);
            Duration::from_nanos(u64::try_from(nanos).unwrap_or(u64::MAX))
        }
    }
}

/// One solver plus its private [`SolveContext`] and statistics.
#[derive(Debug, Clone)]
pub struct Lane {
    solver: Box<dyn Solver>,
    ctx: SolveContext,
    stats: LaneStats,
    last: Option<Result<Solution, SolveError>>,
    /// Cached handle to `core.lane_solve_us.<solver>` — obtained once
    /// here so the timed epoch path records with atomics only.
    latency_us: gps_telemetry::Histogram,
    /// Per-block result scratch for [`Engine::run_block`]; reused so the
    /// steady-state block path allocates nothing.
    block_out: Vec<Result<Solution, SolveError>>,
}

impl Lane {
    /// Wraps a solver in a fresh lane.
    #[must_use]
    pub fn new(solver: Box<dyn Solver>) -> Self {
        let latency_us = gps_telemetry::histogram(&format!("core.lane_solve_us.{}", solver.name()));
        Lane {
            solver,
            ctx: SolveContext::new(),
            stats: LaneStats::default(),
            last: None,
            latency_us,
            block_out: Vec::new(),
        }
    }

    /// The wrapped solver's report name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.solver.name()
    }

    /// Borrows the wrapped solver.
    #[must_use]
    pub fn solver(&self) -> &dyn Solver {
        self.solver.as_ref()
    }

    /// This lane's running statistics.
    #[must_use]
    pub fn stats(&self) -> &LaneStats {
        &self.stats
    }

    /// The most recent epoch's outcome, if any epoch ran yet.
    #[must_use]
    pub fn last(&self) -> Option<&Result<Solution, SolveError>> {
        self.last.as_ref()
    }

    /// Runs one epoch through the lane without touching the clock;
    /// returns whether it solved. Timing is the engine's concern (see
    /// [`Engine::run_epoch`]) so untimed runs pay zero `Instant` reads.
    fn run_untimed(&mut self, epoch: &Epoch<'_>) -> bool {
        let result = self.solver.solve(epoch, &mut self.ctx);
        self.stats.epochs += 1;
        let solved = result.is_ok();
        if solved {
            self.stats.solved += 1;
        } else {
            self.stats.failed += 1;
        }
        self.last = Some(result);
        solved
    }

    /// Runs one same-shape block through the lane, tallying every lane
    /// epoch; returns how many solved. `last` ends on the block's final
    /// epoch — exactly where per-epoch feeding would leave it.
    // lint: no_alloc
    fn run_block_untimed(&mut self, block: &EpochBlock<'_>) -> usize {
        self.block_out.clear();
        self.solver
            .solve_block(block, &mut self.ctx, &mut self.block_out);
        let mut solved = 0;
        for result in self.block_out.drain(..) {
            self.stats.epochs += 1;
            if result.is_ok() {
                self.stats.solved += 1;
                solved += 1;
            } else {
                self.stats.failed += 1;
            }
            self.last = Some(result);
        }
        solved
    }
}

/// Batched epoch processor: every added solver runs on every epoch with
/// a reusable per-lane [`SolveContext`].
///
/// # Example
///
/// ```
/// use gps_core::{Engine, Measurement};
/// use gps_geodesy::Ecef;
///
/// let truth = Ecef::new(6.371e6, 1.0e5, -2.0e5);
/// let sats = [
///     Ecef::new(2.0e7, 0.0, 1.7e7),
///     Ecef::new(1.5e7, 1.8e7, 0.9e7),
///     Ecef::new(1.6e7, -1.7e7, 1.0e7),
///     Ecef::new(2.5e7, 0.4e7, -0.6e7),
///     Ecef::new(0.8e7, 1.4e7, 2.0e7),
/// ];
/// let meas: Vec<Measurement> = sats
///     .iter()
///     .map(|&s| Measurement::new(s, s.distance_to(truth)))
///     .collect();
/// let mut engine = Engine::all_solvers();
/// for _ in 0..10 {
///     assert_eq!(engine.run_epoch(&meas, 0.0), 4); // all four lanes solve
/// }
/// for lane in engine.lanes() {
///     assert_eq!(lane.stats().solved, 10);
///     let fix = lane.last().unwrap().as_ref().unwrap();
///     assert!(fix.position.distance_to(truth) < 1e-2, "{}", lane.name());
/// }
/// ```
#[derive(Debug, Clone)]
pub struct Engine {
    lanes: Vec<Lane>,
    epochs: u64,
    timing: bool,
}

impl Default for Engine {
    fn default() -> Self {
        Engine {
            lanes: Vec::new(),
            epochs: 0,
            timing: true,
        }
    }
}

impl Engine {
    /// Creates an engine with no lanes.
    #[must_use]
    pub fn new() -> Self {
        Engine::default()
    }

    /// Creates an engine with one lane per paper solver
    /// (NR, DLO, DLG, Bancroft).
    #[must_use]
    pub fn all_solvers() -> Self {
        Engine::new()
            .with_solver(Box::new(NewtonRaphson::default()))
            .with_solver(Box::new(Dlo::default()))
            .with_solver(Box::new(Dlg::default()))
            .with_solver(Box::new(Bancroft))
    }

    /// Adds a lane for `solver`.
    #[must_use]
    pub fn with_solver(mut self, solver: Box<dyn Solver>) -> Self {
        self.lanes.push(Lane::new(solver));
        self
    }

    /// Enables or disables per-lane wall-clock accounting (on by
    /// default). With timing off, [`Engine::run_epoch`] reads the clock
    /// zero times per epoch and [`LaneStats::total_time`] stays zero —
    /// use this when the engine runs inside an already-timed region
    /// (parallel workers, benches measuring something else).
    #[must_use]
    pub fn with_timing(mut self, timing: bool) -> Self {
        self.timing = timing;
        self
    }

    /// Whether per-lane wall-clock accounting is enabled.
    #[must_use]
    pub fn timing_enabled(&self) -> bool {
        self.timing
    }

    /// Feeds one epoch to every lane; returns how many lanes solved.
    ///
    /// After each lane's first epoch its scratch buffers are warm, so
    /// subsequent calls with the same satellite count do not allocate.
    /// With timing enabled, adjacent lanes share one timestamp (the end
    /// of lane *i* is the start of lane *i+1*), so an epoch costs
    /// `lanes + 1` clock reads instead of `2 × lanes`.
    // lint: no_alloc
    pub fn run_epoch(
        &mut self,
        measurements: &[Measurement],
        predicted_receiver_bias_m: f64,
    ) -> usize {
        let epoch = Epoch::new(measurements, predicted_receiver_bias_m);
        self.epochs += 1;
        let mut solved = 0;
        if self.timing {
            let mut stamp = Instant::now();
            for lane in &mut self.lanes {
                solved += usize::from(lane.run_untimed(&epoch));
                let now = Instant::now();
                let took = now - stamp;
                lane.stats.total_time += took;
                lane.latency_us.record(took.as_secs_f64() * 1e6);
                stamp = now;
            }
        } else {
            for lane in &mut self.lanes {
                solved += usize::from(lane.run_untimed(&epoch));
            }
        }
        solved
    }

    /// Feeds one same-shape [`EpochBlock`] to every lane; returns how
    /// many lane-epochs solved (up to `lanes × block.lanes()`).
    ///
    /// Solvers with a structure-of-arrays kernel (DLO) solve the block
    /// lock-step; the rest loop the scalar path. Per-epoch results and
    /// statistics are identical to feeding the epochs one at a time
    /// through [`Engine::run_epoch`] — with timing on, the per-lane
    /// `core.lane_solve_us.*` histogram records the block's *mean*
    /// per-epoch latency once per block instead of one sample per epoch.
    // lint: no_alloc
    pub fn run_block(&mut self, block: &EpochBlock<'_>) -> usize {
        instrument::block_lanes().record(block.lanes() as f64);
        self.epochs += block.lanes() as u64;
        let mut solved = 0;
        if self.timing {
            let lanes_f = block.lanes() as f64;
            let mut stamp = Instant::now();
            for lane in &mut self.lanes {
                solved += lane.run_block_untimed(block);
                let now = Instant::now();
                let took = now - stamp;
                lane.stats.total_time += took;
                lane.latency_us.record(took.as_secs_f64() * 1e6 / lanes_f);
                stamp = now;
            }
        } else {
            for lane in &mut self.lanes {
                solved += lane.run_block_untimed(block);
            }
        }
        solved
    }

    /// Runs a whole epoch stream in block mode: the stream is split
    /// into consecutive same-shape blocks of at most `block_size` lanes
    /// ([`EpochBlock::split_first`]) and each is fed through
    /// [`Engine::run_block`]. Returns the total lane-epochs solved.
    ///
    /// `block_size = 1` degenerates to per-epoch feeding; results are
    /// bit-identical at every block size.
    pub fn run_blocked(&mut self, stream: &[EpochJob], block_size: usize) -> usize {
        let mut rest = stream;
        let mut solved = 0;
        while let Some((block, tail)) = EpochBlock::split_first(rest, block_size) {
            solved += self.run_block(&block);
            rest = tail;
        }
        solved
    }

    /// The lanes, in insertion order.
    #[must_use]
    pub fn lanes(&self) -> &[Lane] {
        &self.lanes
    }

    /// Epochs fed through [`Engine::run_epoch`] so far.
    #[must_use]
    pub fn epochs(&self) -> u64 {
        self.epochs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gps_geodesy::Ecef;

    fn truth() -> Ecef {
        Ecef::new(6.371e6, 1.0e5, -2.0e5)
    }

    fn measurements(bias: f64) -> Vec<Measurement> {
        [
            Ecef::new(2.0e7, 0.0, 1.7e7),
            Ecef::new(1.5e7, 1.8e7, 0.9e7),
            Ecef::new(1.6e7, -1.7e7, 1.0e7),
            Ecef::new(2.5e7, 0.4e7, -0.6e7),
            Ecef::new(1.9e7, 0.9e7, 1.6e7),
            Ecef::new(0.8e7, 1.4e7, 2.0e7),
        ]
        .iter()
        .map(|&s| Measurement::new(s, s.distance_to(truth()) + bias))
        .collect()
    }

    #[test]
    fn all_lanes_solve_clean_epochs() {
        let mut engine = Engine::all_solvers();
        let meas = measurements(0.0);
        for _ in 0..5 {
            assert_eq!(engine.run_epoch(&meas, 0.0), 4);
        }
        assert_eq!(engine.epochs(), 5);
        let names: Vec<&str> = engine.lanes().iter().map(Lane::name).collect();
        assert_eq!(names, ["NR", "DLO", "DLG", "Bancroft"]);
        for lane in engine.lanes() {
            assert_eq!(lane.stats().epochs, 5);
            assert_eq!(lane.stats().solved, 5);
            assert_eq!(lane.stats().failed, 0);
            let fix = lane.last().unwrap().as_ref().unwrap();
            assert!(
                fix.position.distance_to(truth()) < 1e-2,
                "{} err {}",
                lane.name(),
                fix.position.distance_to(truth())
            );
        }
    }

    #[test]
    fn failures_are_tallied_per_lane() {
        let mut engine = Engine::all_solvers();
        let few = &measurements(0.0)[..3]; // below every solver's minimum
        assert_eq!(engine.run_epoch(few, 0.0), 0);
        for lane in engine.lanes() {
            assert_eq!(lane.stats().failed, 1);
            assert!(lane.last().unwrap().is_err());
        }
        // A good epoch afterwards still solves: contexts recover.
        assert_eq!(engine.run_epoch(&measurements(0.0), 0.0), 4);
    }

    #[test]
    fn varying_satellite_counts_between_epochs() {
        // Buffer shapes change between epochs; results must stay correct.
        let mut engine = Engine::all_solvers();
        let meas = measurements(0.0);
        for n in [6, 4, 5, 6] {
            assert_eq!(engine.run_epoch(&meas[..n], 0.0), 4, "n={n}");
            for lane in engine.lanes() {
                let fix = lane.last().unwrap().as_ref().unwrap();
                assert!(fix.position.distance_to(truth()) < 1e-2);
            }
        }
    }

    #[test]
    fn engine_matches_direct_trait_calls() {
        let mut engine = Engine::new().with_solver(Box::new(Dlg::default()));
        let meas = measurements(0.0);
        engine.run_epoch(&meas, 0.0);
        let via_engine = *engine.lanes()[0].last().unwrap().as_ref().unwrap();
        let mut ctx = SolveContext::new();
        let direct = Solver::solve(&Dlg::default(), &Epoch::new(&meas, 0.0), &mut ctx).unwrap();
        assert_eq!(via_engine, direct);
    }

    #[test]
    fn mean_time_has_no_u32_saturation_cliff() {
        // 2^33 epochs at 8 ns each: the old `Duration / u32` path would
        // have divided by a saturated u32::MAX and reported ~16 ns·2 ≈ 0.
        let stats = LaneStats {
            epochs: 1 << 33,
            solved: 1 << 33,
            failed: 0,
            total_time: Duration::from_nanos(8 << 33),
        };
        assert_eq!(stats.mean_time(), Duration::from_nanos(8));
    }

    #[test]
    fn timing_can_be_disabled() {
        let mut engine = Engine::all_solvers().with_timing(false);
        assert!(!engine.timing_enabled());
        let meas = measurements(0.0);
        for _ in 0..3 {
            assert_eq!(engine.run_epoch(&meas, 0.0), 4);
        }
        for lane in engine.lanes() {
            assert_eq!(lane.stats().solved, 3);
            assert_eq!(lane.stats().total_time, Duration::ZERO);
            assert_eq!(lane.stats().mean_time(), Duration::ZERO);
        }
    }

    #[test]
    fn timing_default_accumulates_per_lane() {
        let mut engine = Engine::all_solvers();
        assert!(engine.timing_enabled());
        engine.run_epoch(&measurements(0.0), 0.0);
        for lane in engine.lanes() {
            assert!(lane.stats().total_time > Duration::ZERO, "{}", lane.name());
        }
    }

    #[test]
    fn block_mode_matches_per_epoch_feeding() {
        // Mixed shapes and a failing epoch: the blocked run must tally
        // and report exactly what per-epoch feeding does, at any block
        // size, including the SoA DLO lane.
        let base = measurements(0.0);
        let stream: Vec<EpochJob> = [6usize, 6, 6, 4, 5, 5, 3, 6, 6, 6, 6, 6]
            .iter()
            .enumerate()
            .map(|(i, &n)| EpochJob::new(base[..n].to_vec(), 1e-3 * i as f64))
            .collect();

        let mut reference = Engine::all_solvers().with_timing(false);
        let mut ref_results: Vec<Vec<Result<Solution, SolveError>>> = Vec::new();
        for job in &stream {
            reference.run_epoch(&job.measurements, job.predicted_receiver_bias_m);
            ref_results.push(
                reference
                    .lanes()
                    .iter()
                    .map(|lane| lane.last().unwrap().clone())
                    .collect(),
            );
        }

        // Single-lane blocks expose every epoch's outcome through the
        // blocked entry point: each must be bit-identical to run_epoch.
        let mut single = Engine::all_solvers().with_timing(false);
        let mut singles: Vec<Vec<Result<Solution, SolveError>>> = Vec::new();
        for job in &stream {
            let one = [job.clone()];
            let block = EpochBlock::new(&one).unwrap();
            single.run_block(&block);
            singles.push(
                single
                    .lanes()
                    .iter()
                    .map(|lane| lane.last().unwrap().clone())
                    .collect(),
            );
        }
        assert_eq!(singles, ref_results, "single-lane block path diverges");

        // Wider blocks: aggregate statistics and the final outcome must
        // match exactly at every block size.
        for block_size in [4usize, 8] {
            let mut blocked = Engine::all_solvers().with_timing(false);
            blocked.run_blocked(&stream, block_size);
            assert_eq!(blocked.epochs(), reference.epochs(), "bs={block_size}");
            for (b, r) in blocked.lanes().iter().zip(reference.lanes()) {
                assert_eq!(b.stats().epochs, r.stats().epochs, "bs={block_size}");
                assert_eq!(b.stats().solved, r.stats().solved, "bs={block_size}");
                assert_eq!(b.stats().failed, r.stats().failed, "bs={block_size}");
                assert_eq!(b.last(), r.last(), "bs={block_size} {}", b.name());
            }
        }
    }

    #[test]
    fn run_blocked_covers_the_whole_stream() {
        let base = measurements(0.0);
        let stream: Vec<EpochJob> = (0..13)
            .map(|i| EpochJob::new(base.clone(), 1e-3 * f64::from(i)))
            .collect();
        let mut engine = Engine::all_solvers();
        let solved = engine.run_blocked(&stream, 8);
        assert_eq!(solved, 13 * 4);
        assert_eq!(engine.epochs(), 13);
        for lane in engine.lanes() {
            assert_eq!(lane.stats().epochs, 13);
            assert_eq!(lane.stats().solved, 13);
        }
    }

    #[test]
    fn stats_report_mean_time() {
        let mut engine = Engine::new().with_solver(Box::new(Dlo::default()));
        assert_eq!(engine.lanes()[0].stats().mean_time(), Duration::ZERO);
        let meas = measurements(0.0);
        for _ in 0..3 {
            engine.run_epoch(&meas, 0.0);
        }
        let stats = engine.lanes()[0].stats();
        assert!(stats.mean_time() <= stats.total_time);
    }
}
