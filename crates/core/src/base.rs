use gps_linalg::{Matrix, SymmetricEigen};

use crate::Measurement;

/// Strategy for choosing the **base satellite** — the equation subtracted
/// from all others in the direct linearization (paper eq. 4-7 subtracts
/// "the first equation").
///
/// The paper notes in §6 that "the accuracy can be further improved if we
/// can identify a 'good' satellite to be used as the base to construct the
/// linear system. In the algorithm we propose in this paper, this
/// satellite is randomly chosen." These strategies implement that
/// extension; the `ablation_base_select` benchmark quantifies the
/// difference.
///
/// # Example
///
/// ```
/// use gps_core::{BaseSelection, Measurement};
/// use gps_geodesy::Ecef;
///
/// let ms = vec![
///     Measurement::new(Ecef::new(1.0, 0.0, 0.0), 1.0).with_elevation(0.2),
///     Measurement::new(Ecef::new(0.0, 1.0, 0.0), 1.0).with_elevation(0.9),
/// ];
/// assert_eq!(BaseSelection::First.select(&ms), 0);
/// assert_eq!(BaseSelection::HighestElevation.select(&ms), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub enum BaseSelection {
    /// Use the first measurement as supplied — the paper's own choice
    /// (effectively random, since datasets carry no privileged order).
    #[default]
    First,
    /// Use the satellite with the highest elevation: smallest atmospheric
    /// and multipath error, hence the cleanest base equation.
    HighestElevation,
    /// Use the satellite with the lowest elevation — the adversarial
    /// choice, included so the ablation brackets the effect.
    LowestElevation,
    /// Use the satellite with the *shortest pseudorange* (closest to
    /// zenith geometrically) — an elevation-free proxy usable when
    /// elevations are not annotated.
    ShortestRange,
    /// Use the base that minimizes the spectral condition number of the
    /// resulting differenced design matrix `A` (eq. 4-9) — the
    /// geometry-optimal choice, at the cost of an `m`-fold eigenvalue
    /// scan per solve.
    BestConditioned,
}

/// Condition number of the `(m−1)×3` design matrix that results from
/// using measurement `base` as the base (via the eigenvalues of `AᵀA`).
fn base_condition(measurements: &[Measurement], base: usize) -> f64 {
    let s1 = measurements[base].position;
    let rows: Vec<[f64; 3]> = measurements
        .iter()
        .enumerate()
        .filter(|(j, _)| *j != base)
        .map(|(_, m)| {
            let d = m.position - s1;
            [d.x, d.y, d.z]
        })
        .collect();
    let a = Matrix::from_fn(rows.len(), 3, |r, c| rows[r][c]);
    match SymmetricEigen::new(&a.gram()) {
        // Condition of A is sqrt(condition of AᵀA).
        Ok(eig) => eig.condition_number().sqrt(),
        Err(_) => f64::INFINITY,
    }
}

impl BaseSelection {
    /// Returns the index of the base measurement under this strategy.
    ///
    /// Measurements without elevation annotation are treated as having
    /// elevation −∞ for [`BaseSelection::HighestElevation`] (and +∞ for
    /// [`BaseSelection::LowestElevation`]), so annotated satellites win.
    ///
    /// # Panics
    ///
    /// Panics if `measurements` is empty.
    #[must_use]
    pub fn select(&self, measurements: &[Measurement]) -> usize {
        assert!(!measurements.is_empty(), "no measurements to select from");
        match self {
            BaseSelection::First => 0,
            BaseSelection::HighestElevation => measurements
                .iter()
                .enumerate()
                .max_by(|(_, a), (_, b)| {
                    let ea = a.elevation.unwrap_or(f64::NEG_INFINITY);
                    let eb = b.elevation.unwrap_or(f64::NEG_INFINITY);
                    ea.total_cmp(&eb)
                })
                .map(|(i, _)| i)
                .unwrap_or(0),
            BaseSelection::LowestElevation => measurements
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| {
                    let ea = a.elevation.unwrap_or(f64::INFINITY);
                    let eb = b.elevation.unwrap_or(f64::INFINITY);
                    ea.total_cmp(&eb)
                })
                .map(|(i, _)| i)
                .unwrap_or(0),
            BaseSelection::ShortestRange => measurements
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| a.pseudorange.total_cmp(&b.pseudorange))
                .map(|(i, _)| i)
                .unwrap_or(0),
            BaseSelection::BestConditioned => {
                if measurements.len() < 4 {
                    // Fewer rows than unknowns: every base is singular;
                    // fall back to the first.
                    return 0;
                }
                (0..measurements.len())
                    .min_by(|&a, &b| {
                        base_condition(measurements, a).total_cmp(&base_condition(measurements, b))
                    })
                    .unwrap_or(0)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gps_geodesy::Ecef;

    fn meas(el: Option<f64>, range: f64) -> Measurement {
        let mut m = Measurement::new(Ecef::new(range, 0.0, 0.0), range);
        m.elevation = el;
        m
    }

    #[test]
    fn first_is_index_zero() {
        let ms = vec![meas(Some(0.1), 3.0), meas(Some(0.9), 2.0)];
        assert_eq!(BaseSelection::First.select(&ms), 0);
    }

    #[test]
    fn highest_and_lowest_elevation() {
        let ms = vec![
            meas(Some(0.3), 3.0),
            meas(Some(1.2), 2.0),
            meas(Some(0.7), 1.0),
        ];
        assert_eq!(BaseSelection::HighestElevation.select(&ms), 1);
        assert_eq!(BaseSelection::LowestElevation.select(&ms), 0);
    }

    #[test]
    fn missing_elevations_lose() {
        let ms = vec![meas(None, 3.0), meas(Some(0.1), 2.0)];
        assert_eq!(BaseSelection::HighestElevation.select(&ms), 1);
        assert_eq!(BaseSelection::LowestElevation.select(&ms), 1);
    }

    #[test]
    fn shortest_range() {
        let ms = vec![meas(None, 3.0), meas(None, 1.5), meas(None, 2.0)];
        assert_eq!(BaseSelection::ShortestRange.select(&ms), 1);
    }

    #[test]
    #[should_panic(expected = "no measurements")]
    fn empty_input_panics() {
        let _ = BaseSelection::First.select(&[]);
    }

    #[test]
    fn default_is_first() {
        assert_eq!(BaseSelection::default(), BaseSelection::First);
    }

    #[test]
    fn best_conditioned_picks_valid_index_and_beats_worst() {
        use gps_geodesy::Ecef;
        // Five satellites, well spread except one near-duplicate pair.
        let positions = [
            Ecef::new(2.0e7, 0.0, 1.7e7),
            Ecef::new(1.5e7, 1.8e7, 0.9e7),
            Ecef::new(1.6e7, -1.7e7, 1.0e7),
            Ecef::new(2.5e7, 0.4e7, -0.6e7),
            Ecef::new(0.8e7, 1.4e7, 2.0e7),
        ];
        let ms: Vec<Measurement> = positions
            .iter()
            .map(|&p| Measurement::new(p, 2.2e7))
            .collect();
        let idx = BaseSelection::BestConditioned.select(&ms);
        assert!(idx < ms.len());
        // Its condition is minimal among all candidate bases.
        let best = base_condition(&ms, idx);
        for cand in 0..ms.len() {
            assert!(best <= base_condition(&ms, cand) + 1e-9);
        }
    }

    #[test]
    fn best_conditioned_falls_back_below_four() {
        let ms = vec![meas(None, 1.0), meas(None, 2.0), meas(None, 3.0)];
        assert_eq!(BaseSelection::BestConditioned.select(&ms), 0);
    }
}
