//! Receiver velocity estimation from range-rate (Doppler) measurements.
//!
//! A receiver tracking carrier Doppler observes the range rate to each
//! satellite:
//!
//! `ρ̇ᵢ = (vᵢ − v) · uᵢ + c·Δṫ`
//!
//! where `vᵢ` is the satellite's ECEF velocity, `v` the receiver's, `uᵢ`
//! the unit line of sight and `c·Δṫ` the receiver clock *drift* in range
//! units. Given a position fix (from any [`crate::PositionSolver`]) the
//! system is already linear — no linearization tricks needed — and one
//! OLS solve yields velocity plus drift. This closes the loop on the
//! paper's high-speed-object motivation: position *and* velocity at
//! closed-form cost.

use gps_geodesy::Ecef;
use gps_linalg::{lstsq, Matrix, Vector};

use crate::SolveError;

/// One satellite's contribution to a velocity solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateMeasurement {
    /// Satellite ECEF position, metres.
    pub position: Ecef,
    /// Satellite ECEF velocity, m/s.
    pub velocity: Ecef,
    /// Measured range rate `ρ̇ᵢ` (from Doppler), m/s.
    pub range_rate: f64,
}

impl RateMeasurement {
    /// Creates a rate measurement.
    #[must_use]
    pub fn new(position: Ecef, velocity: Ecef, range_rate: f64) -> Self {
        RateMeasurement {
            position,
            velocity,
            range_rate,
        }
    }

    /// Returns `true` if all fields are finite.
    #[must_use]
    pub fn is_finite(&self) -> bool {
        self.position.is_finite() && self.velocity.is_finite() && self.range_rate.is_finite()
    }
}

/// A velocity solution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VelocitySolution {
    /// Receiver ECEF velocity, m/s.
    pub velocity: Ecef,
    /// Receiver clock drift as a range rate (`c·Δṫ`), m/s.
    pub clock_drift_m_s: f64,
    /// RMS of the post-fit range-rate residuals, m/s.
    pub residual_rms: f64,
}

/// Estimates receiver velocity and clock drift from range rates, given
/// the receiver's (already solved) position.
///
/// # Errors
///
/// * [`SolveError::TooFewSatellites`] with fewer than 4 measurements.
/// * [`SolveError::NonFinite`] on NaN/∞ input.
/// * [`SolveError::DegenerateGeometry`] for rank-deficient line-of-sight
///   geometry.
///
/// # Example
///
/// ```
/// use gps_core::{solve_velocity, RateMeasurement};
/// use gps_geodesy::Ecef;
///
/// # fn main() -> Result<(), gps_core::SolveError> {
/// let receiver = Ecef::new(6.37e6, 0.0, 0.0);
/// let v_true = Ecef::new(30.0, -50.0, 10.0);
/// let sats = [
///     (Ecef::new(2.0e7, 0.0, 1.7e7), Ecef::new(100.0, 2_600.0, 900.0)),
///     (Ecef::new(1.5e7, 1.8e7, 0.9e7), Ecef::new(-1_900.0, 800.0, 2_500.0)),
///     (Ecef::new(1.6e7, -1.7e7, 1.0e7), Ecef::new(2_000.0, 1_500.0, -800.0)),
///     (Ecef::new(2.5e7, 0.4e7, -0.6e7), Ecef::new(400.0, -2_400.0, 1_800.0)),
///     (Ecef::new(0.8e7, 1.4e7, 2.0e7), Ecef::new(-2_700.0, 300.0, 1_000.0)),
/// ];
/// let meas: Vec<RateMeasurement> = sats
///     .iter()
///     .map(|&(p, v)| {
///         let u = (p - receiver).normalized();
///         RateMeasurement::new(p, v, (v - v_true).dot(u) + 2.5)
///     })
///     .collect();
/// let sol = solve_velocity(&meas, receiver)?;
/// assert!((sol.velocity - v_true).norm() < 1e-6);
/// assert!((sol.clock_drift_m_s - 2.5).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
pub fn solve_velocity(
    measurements: &[RateMeasurement],
    receiver_position: Ecef,
) -> Result<VelocitySolution, SolveError> {
    if measurements.len() < 4 {
        return Err(SolveError::TooFewSatellites {
            got: measurements.len(),
            need: 4,
        });
    }
    if !receiver_position.is_finite() || measurements.iter().any(|m| !m.is_finite()) {
        return Err(SolveError::NonFinite);
    }
    let m = measurements.len();
    let mut a = Matrix::zeros(m, 4);
    let mut b = Vector::zeros(m);
    for (i, meas) in measurements.iter().enumerate() {
        let los = meas.position - receiver_position;
        let range = los.norm();
        if range < 1.0 {
            return Err(SolveError::NonFinite);
        }
        let u = los / range;
        let row = a.row_mut(i);
        row[0] = -u.x;
        row[1] = -u.y;
        row[2] = -u.z;
        row[3] = 1.0;
        b[i] = meas.range_rate - meas.velocity.dot(u);
    }
    let x = lstsq::ols(&a, &b)?;
    let residual = lstsq::residual(&a, &b, &x)?;
    Ok(VelocitySolution {
        velocity: Ecef::new(x[0], x[1], x[2]),
        clock_drift_m_s: x[3],
        residual_rms: (residual.norm_squared() / m as f64).sqrt(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn receiver() -> Ecef {
        Ecef::new(6.371e6, 1.0e5, -2.0e5)
    }

    fn sats() -> Vec<(Ecef, Ecef)> {
        vec![
            (
                Ecef::new(2.0e7, 0.0, 1.7e7),
                Ecef::new(100.0, 2_600.0, 900.0),
            ),
            (
                Ecef::new(1.5e7, 1.8e7, 0.9e7),
                Ecef::new(-1_900.0, 800.0, 2_500.0),
            ),
            (
                Ecef::new(1.6e7, -1.7e7, 1.0e7),
                Ecef::new(2_000.0, 1_500.0, -800.0),
            ),
            (
                Ecef::new(2.5e7, 0.4e7, -0.6e7),
                Ecef::new(400.0, -2_400.0, 1_800.0),
            ),
            (
                Ecef::new(0.8e7, 1.4e7, 2.0e7),
                Ecef::new(-2_700.0, 300.0, 1_000.0),
            ),
            (
                Ecef::new(1.2e7, -0.4e7, 2.2e7),
                Ecef::new(900.0, 2_900.0, -200.0),
            ),
        ]
    }

    fn exact(v_rx: Ecef, drift: f64, n: usize) -> Vec<RateMeasurement> {
        sats()
            .into_iter()
            .take(n)
            .map(|(p, v)| {
                let u = (p - receiver()).normalized();
                RateMeasurement::new(p, v, (v - v_rx).dot(u) + drift)
            })
            .collect()
    }

    #[test]
    fn exact_recovery_static_and_moving() {
        for v_rx in [Ecef::ORIGIN, Ecef::new(250.0, -30.0, 5.0)] {
            for drift in [0.0, -1.7, 4.2] {
                for n in [4, 5, 6] {
                    let sol = solve_velocity(&exact(v_rx, drift, n), receiver()).unwrap();
                    assert!((sol.velocity - v_rx).norm() < 1e-6);
                    assert!((sol.clock_drift_m_s - drift).abs() < 1e-6);
                    assert!(sol.residual_rms < 1e-9);
                }
            }
        }
    }

    #[test]
    fn noisy_rates_give_bounded_velocity_error() {
        let v_rx = Ecef::new(100.0, 0.0, 0.0);
        let mut meas = exact(v_rx, 1.0, 6);
        for (k, m) in meas.iter_mut().enumerate() {
            // ±5 cm/s of Doppler noise — typical carrier tracking.
            m.range_rate += if k % 2 == 0 { 0.05 } else { -0.05 };
        }
        let sol = solve_velocity(&meas, receiver()).unwrap();
        assert!(
            (sol.velocity - v_rx).norm() < 0.5,
            "err {}",
            (sol.velocity - v_rx).norm()
        );
        assert!(sol.residual_rms > 0.001);
    }

    #[test]
    fn wrong_position_biases_but_degrades_gracefully() {
        // 100 m of position error tilts the unit vectors by ~5 µrad —
        // harmless for velocity.
        let v_rx = Ecef::new(50.0, 50.0, 0.0);
        let meas = exact(v_rx, 0.0, 6);
        let off = receiver() + Ecef::new(100.0, -50.0, 30.0);
        let sol = solve_velocity(&meas, off).unwrap();
        assert!((sol.velocity - v_rx).norm() < 0.1);
    }

    #[test]
    fn rejects_bad_inputs() {
        let meas = exact(Ecef::ORIGIN, 0.0, 3);
        assert_eq!(
            solve_velocity(&meas, receiver()).unwrap_err(),
            SolveError::TooFewSatellites { got: 3, need: 4 }
        );
        let mut meas = exact(Ecef::ORIGIN, 0.0, 4);
        meas[1].range_rate = f64::NAN;
        assert_eq!(
            solve_velocity(&meas, receiver()).unwrap_err(),
            SolveError::NonFinite
        );
        let meas = exact(Ecef::ORIGIN, 0.0, 4);
        assert_eq!(
            solve_velocity(&meas, Ecef::new(f64::INFINITY, 0.0, 0.0)).unwrap_err(),
            SolveError::NonFinite
        );
    }

    #[test]
    fn degenerate_geometry_detected() {
        // All satellites in the same spot.
        let (p, v) = sats()[0];
        let u = (p - receiver()).normalized();
        let meas = vec![RateMeasurement::new(p, v, v.dot(u)); 5];
        assert!(matches!(
            solve_velocity(&meas, receiver()).unwrap_err(),
            SolveError::DegenerateGeometry(_)
        ));
    }

    #[test]
    fn static_receiver_recovers_zero_velocity() {
        let sol = solve_velocity(&exact(Ecef::ORIGIN, 0.0, 6), receiver()).unwrap();
        assert!(sol.velocity.norm() < 1e-6);
        assert!(sol.clock_drift_m_s.abs() < 1e-6);
    }
}
