use gps_geodesy::Ecef;
use gps_linalg::lstsq;
use gps_linalg::stack::{self, SMat, SVec};
use gps_linalg::STACK_M_CAP;

use crate::measurement::validate;
use crate::{Measurement, Solution, SolveError};

/// Bancroft's algebraic closed-form GPS solution (the paper's related work
/// \[2\]: S. Bancroft, "An algebraic solution of the GPS equations", 1986).
///
/// Included as a second baseline: like DLO/DLG it is non-iterative, but
/// unlike them it solves for the receiver clock bias as an unknown, so it
/// needs no clock prediction. The trade-off is a heavier algebraic path
/// (a 4-column pseudo-inverse plus a quadratic root selection) and the
/// deterministic-system assumption the paper's §2 criticizes in direct
/// methods.
///
/// Formulation: with satellite 4-vectors `aᵢ = (sᵢ; ρᵢ)` under the Lorentz
/// inner product `⟨u,v⟩ = u·v − u₄v₄`, the unknown `y = (x; b)` satisfies
/// `B M y = r + Λ e` with `rᵢ = ½⟨aᵢ,aᵢ⟩` and `Λ = ½⟨y,y⟩`, which reduces
/// to a scalar quadratic in `Λ`.
///
/// # Example
///
/// ```
/// use gps_core::{Bancroft, Measurement, PositionSolver};
/// use gps_geodesy::Ecef;
///
/// # fn main() -> Result<(), gps_core::SolveError> {
/// let truth = Ecef::new(6.37e6, 1.0e5, -2.0e5);
/// let bias = 450.0;
/// let sats = [
///     Ecef::new(2.0e7, 0.0, 1.7e7),
///     Ecef::new(1.5e7, 1.8e7, 0.9e7),
///     Ecef::new(1.6e7, -1.7e7, 1.0e7),
///     Ecef::new(2.5e7, 0.4e7, -0.6e7),
/// ];
/// let meas: Vec<Measurement> = sats
///     .iter()
///     .map(|&s| Measurement::new(s, s.distance_to(truth) + bias))
///     .collect();
/// let fix = Bancroft::default().solve(&meas, 0.0)?;
/// assert!(fix.position.distance_to(truth) < 1e-2);
/// assert!((fix.receiver_bias_m.unwrap() - bias).abs() < 1e-2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Bancroft;

/// Lorentz (Minkowski) inner product on 4-vectors.
fn lorentz(u: &[f64; 4], v: &[f64; 4]) -> f64 {
    u[0] * v[0] + u[1] * v[1] + u[2] * v[2] - u[3] * v[3]
}

impl Bancroft {
    /// Creates a Bancroft solver.
    #[must_use]
    pub fn new() -> Self {
        Bancroft
    }

    /// Post-fit residual RMS for a candidate `(position, bias)`.
    fn residual_rms(measurements: &[Measurement], pos: Ecef, bias: f64) -> f64 {
        let sum: f64 = measurements
            .iter()
            .map(|m| {
                let r = m.pseudorange - (pos.distance_to(m.position) + bias);
                r * r
            })
            .sum();
        (sum / measurements.len() as f64).sqrt()
    }

    /// Stack-kernel fast lane: the same closed-form solution with `B`, `r`
    /// and `e` in stack storage and the two pseudo-inverse applications
    /// solved by `stack::ols4`. Bit-identical to the heap lane.
    // lint: no_alloc
    fn solve_stack(&self, epoch: &crate::Epoch<'_>) -> Result<Solution, SolveError> {
        let measurements = epoch.measurements;
        validate(measurements, 4)?;
        let m = measurements.len();

        // B has rows (sᵢ, ρᵢ); r_i = ½⟨aᵢ,aᵢ⟩.
        let mut b = SMat::<STACK_M_CAP, 4>::zeroed(m);
        let mut r = SVec::<STACK_M_CAP>::zeroed(m);
        for (i, meas) in measurements.iter().enumerate() {
            let row = b.row_mut(i);
            row[0] = meas.position.x;
            row[1] = meas.position.y;
            row[2] = meas.position.z;
            row[3] = meas.pseudorange;
            r.as_mut_slice()[i] =
                0.5 * (meas.position.norm_squared() - meas.pseudorange * meas.pseudorange);
        }

        // B⁺ applied to e and to r via least squares (exact inverse when
        // m = 4).
        let mut ones = SVec::<STACK_M_CAP>::zeroed(m);
        ones.as_mut_slice().fill(1.0);
        let bplus_e = stack::ols4(&b, &ones)?;
        let bplus_r = stack::ols4(&b, &r)?;

        // u = M B⁺ e, v = M B⁺ r (M = diag(1,1,1,−1)).
        let u = [bplus_e[0], bplus_e[1], bplus_e[2], -bplus_e[3]];
        let v = [bplus_r[0], bplus_r[1], bplus_r[2], -bplus_r[3]];

        // Quadratic ⟨u,u⟩Λ² + 2(⟨u,v⟩ − 1)Λ + ⟨v,v⟩ = 0.
        let qa = lorentz(&u, &u);
        let qb = 2.0 * (lorentz(&u, &v) - 1.0);
        let qc = lorentz(&v, &v);

        // At most two candidate roots; kept on the stack.
        let mut lambdas = [0.0_f64; 2];
        let nroots = if qa.abs() < 1e-18 {
            if qb.abs() < 1e-30 {
                return Err(SolveError::NoRealRoot);
            }
            lambdas[0] = -qc / qb;
            1
        } else {
            let disc = qb * qb - 4.0 * qa * qc;
            if disc < 0.0 {
                return Err(SolveError::NoRealRoot);
            }
            let sq = disc.sqrt();
            // Numerically stable pair of roots.
            let q = -0.5 * (qb + sq.copysign(qb));
            lambdas[0] = q / qa;
            if q.abs() > 0.0 {
                lambdas[1] = qc / q;
                2
            } else {
                1
            }
        };

        // Evaluate each root; keep the candidate with the smallest post-fit
        // residual (the spurious root places the receiver far from the
        // measurements' consistent geometry).
        let mut best: Option<(Ecef, f64, f64)> = None;
        for &lambda in &lambdas[..nroots] {
            let y = [
                lambda * u[0] + v[0],
                lambda * u[1] + v[1],
                lambda * u[2] + v[2],
                lambda * u[3] + v[3],
            ];
            let pos = Ecef::new(y[0], y[1], y[2]);
            let bias = y[3];
            if !pos.is_finite() || !bias.is_finite() {
                continue;
            }
            let rms = Bancroft::residual_rms(measurements, pos, bias);
            if best.as_ref().is_none_or(|(_, _, best_rms)| rms < *best_rms) {
                best = Some((pos, bias, rms));
            }
        }
        match best {
            Some((pos, bias, rms)) => Ok(Solution::new(pos, Some(bias), 1, rms)),
            None => Err(SolveError::NoRealRoot),
        }
    }
}

// Implemented without importing `Solver`, so `.solve(&meas, bias)` in
// this module (and in `use super::*` tests) still resolves through
// `PositionSolver` unambiguously.
impl crate::Solver for Bancroft {
    // lint: no_alloc
    fn solve(
        &self,
        epoch: &crate::Epoch<'_>,
        ctx: &mut crate::SolveContext,
    ) -> Result<Solution, SolveError> {
        if crate::solver::stack_lane(ctx, epoch.len()) {
            return self.solve_stack(epoch);
        }
        let measurements = epoch.measurements;
        validate(measurements, 4)?;
        let m = measurements.len();

        // B has rows (sᵢ, ρᵢ); r_i = ½⟨aᵢ,aᵢ⟩.
        let b = &mut ctx.geometry;
        let r = &mut ctx.rhs;
        b.resize_zeroed(m, 4);
        r.resize_zeroed(m);
        for (i, meas) in measurements.iter().enumerate() {
            let row = b.row_mut(i);
            row[0] = meas.position.x;
            row[1] = meas.position.y;
            row[2] = meas.position.z;
            row[3] = meas.pseudorange;
            r[i] = 0.5 * (meas.position.norm_squared() - meas.pseudorange * meas.pseudorange);
        }

        // B⁺ applied to e and to r via least squares (exact inverse when
        // m = 4).
        let ones = &mut ctx.rhs_aux;
        ones.resize_zeroed(m);
        ones.as_mut_slice().fill(1.0);
        lstsq::ols_into(b, ones, &mut ctx.lstsq, &mut ctx.step)?;
        lstsq::ols_into(b, r, &mut ctx.lstsq, &mut ctx.step_aux)?;
        let bplus_e = &ctx.step;
        let bplus_r = &ctx.step_aux;

        // u = M B⁺ e, v = M B⁺ r (M = diag(1,1,1,−1)).
        let u = [bplus_e[0], bplus_e[1], bplus_e[2], -bplus_e[3]];
        let v = [bplus_r[0], bplus_r[1], bplus_r[2], -bplus_r[3]];

        // Quadratic ⟨u,u⟩Λ² + 2(⟨u,v⟩ − 1)Λ + ⟨v,v⟩ = 0.
        let qa = lorentz(&u, &u);
        let qb = 2.0 * (lorentz(&u, &v) - 1.0);
        let qc = lorentz(&v, &v);

        // At most two candidate roots; kept on the stack.
        let mut lambdas = [0.0_f64; 2];
        let nroots = if qa.abs() < 1e-18 {
            if qb.abs() < 1e-30 {
                return Err(SolveError::NoRealRoot);
            }
            lambdas[0] = -qc / qb;
            1
        } else {
            let disc = qb * qb - 4.0 * qa * qc;
            if disc < 0.0 {
                return Err(SolveError::NoRealRoot);
            }
            let sq = disc.sqrt();
            // Numerically stable pair of roots.
            let q = -0.5 * (qb + sq.copysign(qb));
            lambdas[0] = q / qa;
            if q.abs() > 0.0 {
                lambdas[1] = qc / q;
                2
            } else {
                1
            }
        };

        // Evaluate each root; keep the candidate with the smallest post-fit
        // residual (the spurious root places the receiver far from the
        // measurements' consistent geometry).
        let mut best: Option<(Ecef, f64, f64)> = None;
        for &lambda in &lambdas[..nroots] {
            let y = [
                lambda * u[0] + v[0],
                lambda * u[1] + v[1],
                lambda * u[2] + v[2],
                lambda * u[3] + v[3],
            ];
            let pos = Ecef::new(y[0], y[1], y[2]);
            let bias = y[3];
            if !pos.is_finite() || !bias.is_finite() {
                continue;
            }
            let rms = Bancroft::residual_rms(measurements, pos, bias);
            if best.as_ref().is_none_or(|(_, _, best_rms)| rms < *best_rms) {
                best = Some((pos, bias, rms));
            }
        }
        match best {
            Some((pos, bias, rms)) => Ok(Solution::new(pos, Some(bias), 1, rms)),
            None => Err(SolveError::NoRealRoot),
        }
    }

    fn name(&self) -> &'static str {
        "Bancroft"
    }

    fn min_satellites(&self) -> usize {
        4
    }

    fn estimates_bias(&self) -> bool {
        true
    }

    fn clone_box(&self) -> Box<dyn crate::Solver> {
        Box::new(*self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PositionSolver;

    fn sats() -> Vec<Ecef> {
        vec![
            Ecef::new(2.0e7, 0.0, 1.7e7),
            Ecef::new(1.5e7, 1.8e7, 0.9e7),
            Ecef::new(1.6e7, -1.7e7, 1.0e7),
            Ecef::new(2.5e7, 0.4e7, -0.6e7),
            Ecef::new(1.9e7, 0.9e7, 1.6e7),
            Ecef::new(0.8e7, 1.4e7, 2.0e7),
        ]
    }

    fn exact(truth: Ecef, bias: f64, n: usize) -> Vec<Measurement> {
        sats()
            .into_iter()
            .take(n)
            .map(|s| Measurement::new(s, s.distance_to(truth) + bias))
            .collect()
    }

    #[test]
    fn exact_recovery_with_bias() {
        let truth = Ecef::new(6.371e6, -1.0e5, 3.0e5);
        for n in [4, 5, 6] {
            for bias in [-500.0, 0.0, 777.0] {
                let fix = Bancroft::new().solve(&exact(truth, bias, n), 0.0).unwrap();
                assert!(
                    fix.position.distance_to(truth) < 1e-2,
                    "n={n} bias={bias}: err {}",
                    fix.position.distance_to(truth)
                );
                assert!((fix.receiver_bias_m.unwrap() - bias).abs() < 1e-2);
            }
        }
    }

    #[test]
    fn agrees_with_newton_raphson_on_noisy_data() {
        let truth = Ecef::new(3.6e6, -5.2e6, 6.0e5);
        let mut meas = exact(truth, 120.0, 6);
        for (k, m) in meas.iter_mut().enumerate() {
            m.pseudorange += ((k as f64) - 2.5) * 1.5; // few-metre errors
        }
        let ban = Bancroft::new().solve(&meas, 0.0).unwrap();
        let nr = crate::NewtonRaphson::default().solve(&meas, 0.0).unwrap();
        // Both least-squares-consistent solutions land close together.
        assert!(
            ban.position.distance_to(nr.position) < 15.0,
            "disagree by {}",
            ban.position.distance_to(nr.position)
        );
    }

    #[test]
    fn rejects_too_few() {
        let truth = Ecef::new(6.371e6, 0.0, 0.0);
        assert_eq!(
            Bancroft::new()
                .solve(&exact(truth, 0.0, 3), 0.0)
                .unwrap_err(),
            SolveError::TooFewSatellites { got: 3, need: 4 }
        );
    }

    #[test]
    fn rejects_non_finite() {
        let truth = Ecef::new(6.371e6, 0.0, 0.0);
        let mut meas = exact(truth, 0.0, 4);
        meas[0].pseudorange = f64::INFINITY;
        assert_eq!(
            Bancroft::new().solve(&meas, 0.0).unwrap_err(),
            SolveError::NonFinite
        );
    }

    #[test]
    fn degenerate_geometry_detected() {
        let s = Ecef::new(2.0e7, 0.0, 0.0);
        let meas = vec![Measurement::new(s, 1.5e7); 4];
        assert!(matches!(
            Bancroft::new().solve(&meas, 0.0).unwrap_err(),
            SolveError::DegenerateGeometry(_)
        ));
    }

    #[test]
    fn trait_metadata() {
        assert_eq!(Bancroft::new().name(), "Bancroft");
        assert_eq!(Bancroft::new().min_satellites(), 4);
    }
}
