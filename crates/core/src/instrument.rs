//! Telemetry instrumentation points for the solver pipeline.
//!
//! Every metric handle is cached in a `OnceLock`, so the solver hot
//! paths pay one registry lookup per process and afterwards only the
//! atomic record itself. Anything that costs real computation to
//! *observe* — design-matrix condition numbers, covariance-assembly
//! timing — is additionally gated on [`gps_telemetry::detail`], keeping
//! the paper's execution-time comparisons (θ, eq. 5-3) undistorted
//! unless the caller opts in.

use std::sync::OnceLock;

use gps_linalg::{Matrix, SymmetricEigen};
use gps_telemetry::{Counter, Histogram};

macro_rules! cached_metric {
    ($fn_name:ident, Counter, $name:literal) => {
        pub(crate) fn $fn_name() -> &'static Counter {
            static HANDLE: OnceLock<Counter> = OnceLock::new();
            HANDLE.get_or_init(|| gps_telemetry::counter($name))
        }
    };
    ($fn_name:ident, Histogram, $name:literal) => {
        pub(crate) fn $fn_name() -> &'static Histogram {
            static HANDLE: OnceLock<Histogram> = OnceLock::new();
            HANDLE.get_or_init(|| gps_telemetry::histogram($name))
        }
    };
}

cached_metric!(nr_solves, Counter, "core.nr.solves");
cached_metric!(nr_nonconvergence, Counter, "core.nr.nonconvergence");
cached_metric!(nr_iterations, Histogram, "core.nr.iterations");
cached_metric!(nr_residual_rms, Histogram, "core.nr.residual_rms_m");
cached_metric!(dlo_solves, Counter, "core.dlo.solves");
cached_metric!(dlo_condition, Histogram, "core.dlo.condition_number");
cached_metric!(dlg_solves, Counter, "core.dlg.solves");
cached_metric!(dlg_condition, Histogram, "core.dlg.condition_number");
cached_metric!(dlg_cov_assembly, Histogram, "core.dlg.cov_assembly_us");
cached_metric!(base_index, Histogram, "core.base.selected_index");
cached_metric!(block_lanes, Histogram, "core.block.lanes");
cached_metric!(block_solves, Counter, "core.block.solves");
cached_metric!(block_fallback, Counter, "core.block.fallback");
cached_metric!(raim_exclusions, Counter, "core.raim.exclusions");
cached_metric!(resilient_nominal, Counter, "core.resilient.nominal");
cached_metric!(resilient_degraded, Counter, "core.resilient.degraded");
cached_metric!(resilient_holdover, Counter, "core.resilient.holdover");
cached_metric!(resilient_no_fix, Counter, "core.resilient.no_fix");
cached_metric!(
    resilient_gate_failures,
    Counter,
    "core.resilient.gate_failures"
);
cached_metric!(
    resilient_raim_retries,
    Counter,
    "core.resilient.raim_retries"
);
cached_metric!(
    resilient_accepted_rung,
    Histogram,
    "core.resilient.accepted_rung"
);

/// Counter for a [`crate::FixQuality`] by its canonical name, so the
/// ladder walk emits `core.resilient.{nominal,degraded,holdover,no_fix}`
/// from one generic call site instead of per-quality branches.
pub(crate) fn resilient_fix_quality(name: &'static str) -> &'static Counter {
    match name {
        "nominal" => resilient_nominal(),
        "degraded" => resilient_degraded(),
        "holdover" => resilient_holdover(),
        _ => resilient_no_fix(),
    }
}

/// 2-norm condition number of the design matrix `A`, via the symmetric
/// eigendecomposition of its 3×3 Gram matrix: `κ₂(A) = √κ₂(AᵀA)`.
/// `None` when the geometry is too degenerate for the QL iteration.
pub(crate) fn design_condition_number(a: &Matrix) -> Option<f64> {
    SymmetricEigen::new(&a.gram())
        .ok()
        .map(|eig| eig.condition_number().sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gps_linalg::Matrix;

    #[test]
    fn handles_are_cached_and_live() {
        let a = nr_solves() as *const Counter;
        let b = nr_solves() as *const Counter;
        assert_eq!(a, b, "OnceLock must hand back the same handle");
        let before = nr_solves().value();
        nr_solves().inc();
        assert_eq!(nr_solves().value(), before + 1);
    }

    #[test]
    fn condition_number_matches_known_matrix() {
        // Diagonal design matrix: singular values are the entries.
        let a = Matrix::from_rows(&[
            &[3.0, 0.0, 0.0],
            &[0.0, 2.0, 0.0],
            &[0.0, 0.0, 1.0],
            &[0.0, 0.0, 0.0],
        ])
        .unwrap();
        let kappa = design_condition_number(&a).unwrap();
        assert!((kappa - 3.0).abs() < 1e-9, "kappa {kappa}");
    }
}
