use gps_geodesy::Ecef;
use gps_linalg::lstsq;
use gps_linalg::stack::{self, SMat, SVec};
use gps_linalg::STACK_M_CAP;

use crate::instrument;
use crate::measurement::validate;
use crate::{Solution, SolveError};
use gps_telemetry::{Event, Level};

/// The classic Newton–Raphson GPS solver (paper §3.4) — the baseline every
/// rate in the evaluation is measured against.
///
/// Solves the system of residual functions (eq. 3-19)
/// `Pᵢ = ℜᵢ − ρᵉᵢ + εᴿ` for the four unknowns `(xᵉ, yᵉ, zᵉ, εᴿ)` by
/// repeated first-order Taylor linearization: each step solves the linear
/// system of eq. 3-26 — by **ordinary least squares** when over-determined
/// (`m > 4`), as the paper's Step 4 prescribes — and iterates until the
/// update is below tolerance.
///
/// The default configuration follows the paper: initial solution
/// `(0, 0, 0, 0)` (eq. 3-27, the Earth's center), stopping when the
/// residual change is "small enough" (here: position update below 0.1 mm).
///
/// # Example
///
/// ```
/// use gps_core::{Measurement, NewtonRaphson, PositionSolver};
/// use gps_geodesy::Ecef;
///
/// # fn main() -> Result<(), gps_core::SolveError> {
/// let truth = Ecef::new(6.37e6, 0.0, 0.0);
/// let bias = 150.0; // receiver clock error, metres
/// let sats = [
///     Ecef::new(2.0e7, 0.0, 1.7e7),
///     Ecef::new(1.5e7, 1.8e7, 0.9e7),
///     Ecef::new(1.6e7, -1.7e7, 1.0e7),
///     Ecef::new(2.5e7, 0.4e7, -0.6e7),
///     Ecef::new(1.9e7, 0.9e7, 1.6e7),
/// ];
/// let meas: Vec<Measurement> = sats
///     .iter()
///     .map(|&s| Measurement::new(s, s.distance_to(truth) + bias))
///     .collect();
/// let fix = NewtonRaphson::default().solve(&meas, 0.0)?;
/// assert!(fix.position.distance_to(truth) < 1e-3);
/// assert!((fix.receiver_bias_m.unwrap() - bias).abs() < 1e-3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NewtonRaphson {
    max_iterations: usize,
    /// Convergence tolerance on the infinity-norm of the update, metres.
    tolerance_m: f64,
    /// Initial position estimate (paper: the Earth's center).
    initial_position: Ecef,
    /// Initial receiver bias estimate, metres.
    initial_bias_m: f64,
    /// Per-measurement weighting of the least-squares step.
    weighting: Weighting,
}

/// Measurement weighting for the Newton–Raphson least-squares step.
///
/// The paper's NR uses OLS (uniform weights, matching its eq. 3-33/3-34
/// equal-variance assumption). Deployed receivers often weight by
/// `sin²(elevation)` instead, since low-elevation pseudoranges carry more
/// atmospheric and multipath error — an ablation-grade refinement of the
/// baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub enum Weighting {
    /// Ordinary least squares — the paper's baseline.
    #[default]
    Uniform,
    /// Weight each equation by `sin²(elevation)`; measurements without an
    /// elevation annotation get weight 1.
    SinSquaredElevation,
}

impl NewtonRaphson {
    /// Creates a solver with explicit iteration controls.
    ///
    /// # Panics
    ///
    /// Panics if `max_iterations` is zero or `tolerance_m` non-positive.
    #[must_use]
    pub fn new(max_iterations: usize, tolerance_m: f64) -> Self {
        assert!(max_iterations > 0, "need at least one iteration");
        assert!(tolerance_m > 0.0, "tolerance must be positive");
        NewtonRaphson {
            max_iterations,
            tolerance_m,
            initial_position: Ecef::ORIGIN,
            initial_bias_m: 0.0,
            weighting: Weighting::Uniform,
        }
    }

    /// Sets the measurement weighting (default: uniform/OLS, the paper's
    /// baseline).
    #[must_use]
    pub fn with_weighting(mut self, weighting: Weighting) -> Self {
        self.weighting = weighting;
        self
    }

    /// The configured weighting.
    #[must_use]
    pub fn weighting(&self) -> Weighting {
        self.weighting
    }

    /// Sets the initial position estimate (default: the Earth's center,
    /// the paper's eq. 3-27). A previous epoch's fix makes a good
    /// warm start.
    #[must_use]
    pub fn with_initial(mut self, position: Ecef, bias_m: f64) -> Self {
        self.initial_position = position;
        self.initial_bias_m = bias_m;
        self
    }

    /// The configured iteration cap.
    #[must_use]
    pub fn max_iterations(&self) -> usize {
        self.max_iterations
    }

    /// The configured convergence tolerance, metres.
    #[must_use]
    pub fn tolerance_m(&self) -> f64 {
        self.tolerance_m
    }

    /// Stack-kernel fast lane: the same Newton iteration with the
    /// Jacobian, right-hand side and weights in stack storage and each
    /// step solved by the const-generic kernels. Bit-identical to the
    /// heap lane iterate for iterate.
    // lint: no_alloc
    fn solve_stack(&self, epoch: &crate::Epoch<'_>) -> Result<Solution, SolveError> {
        let measurements = epoch.measurements;
        validate(measurements, 4)?;
        let m = measurements.len();

        let mut pos = self.initial_position;
        // A caller-supplied bias prediction is a better initial guess than
        // zero; NR still refines it as an unknown.
        let mut bias = if epoch.predicted_receiver_bias_m != 0.0 {
            epoch.predicted_receiver_bias_m
        } else {
            self.initial_bias_m
        };

        let mut geometry = SMat::<STACK_M_CAP, 4>::zeroed(m);
        let mut rhs = SVec::<STACK_M_CAP>::zeroed(m);
        let mut weights = [0.0_f64; STACK_M_CAP];

        for iteration in 1..=self.max_iterations {
            // Build P and the Jacobian at the current iterate (eq. 3-24 and
            // 3-20..3-23: ∂Pᵢ/∂x = (xᵉ−xᵢ)/ℜᵢ, ∂Pᵢ/∂εᴿ = 1).
            for (i, meas) in measurements.iter().enumerate() {
                let delta = pos - meas.position;
                let range = delta.norm();
                if range < 1.0 {
                    // Iterate collided with a satellite: geometry is
                    // hopeless from this start.
                    instrument::nr_nonconvergence().inc();
                    return Err(SolveError::NonConvergence {
                        iterations: iteration,
                        residual: f64::INFINITY,
                    });
                }
                let p_i = range - meas.pseudorange + bias;
                rhs.as_mut_slice()[i] = -p_i;
                let row = geometry.row_mut(i);
                row[0] = delta.x / range;
                row[1] = delta.y / range;
                row[2] = delta.z / range;
                row[3] = 1.0;
            }

            // Step 4: solve eq. 3-26 by OLS (exact solve when m = 4), or
            // by weighted LS when elevation weighting is configured.
            let step = match self.weighting {
                Weighting::Uniform => stack::ols4(&geometry, &rhs)?,
                Weighting::SinSquaredElevation => {
                    for (w, meas) in weights[..m].iter_mut().zip(measurements) {
                        *w = meas
                            .elevation
                            .map_or(1.0, |el| (el.sin() * el.sin()).max(1e-3));
                    }
                    stack::wls4(&geometry, &rhs, &weights[..m])?
                }
            };

            pos += Ecef::new(step[0], step[1], step[2]);
            bias += step[3];

            if !pos.is_finite() || !bias.is_finite() {
                instrument::nr_nonconvergence().inc();
                return Err(SolveError::NonConvergence {
                    iterations: iteration,
                    residual: f64::INFINITY,
                });
            }

            // Same fold as `Vector::norm_inf`, NaN semantics included.
            let step_norm_inf = step.iter().fold(0.0_f64, |acc, x| acc.max(x.abs()));
            if step_norm_inf < self.tolerance_m {
                // Converged: report the residual RMS at the accepted
                // iterate.
                let mut sum_sq = 0.0;
                for meas in measurements {
                    let r = (pos - meas.position).norm() - meas.pseudorange + bias;
                    sum_sq += r * r;
                }
                let residual_rms = (sum_sq / m as f64).sqrt();
                instrument::nr_solves().inc();
                instrument::nr_iterations().record(iteration as f64);
                instrument::nr_residual_rms().record(residual_rms);
                return Ok(Solution::new(pos, Some(bias), iteration, residual_rms));
            }
        }

        let residual = measurements
            .iter()
            .map(|meas| {
                let r = (pos - meas.position).norm() - meas.pseudorange + bias;
                r * r
            })
            .sum::<f64>()
            .sqrt();
        instrument::nr_nonconvergence().inc();
        if gps_telemetry::enabled(Level::Warn) {
            Event::new(Level::Warn, "core.nr", "did not converge")
                .with("iterations", self.max_iterations)
                .with("residual_m", residual)
                .with("satellites", m)
                .emit();
        }
        Err(SolveError::NonConvergence {
            iterations: self.max_iterations,
            residual,
        })
    }
}

impl Default for NewtonRaphson {
    /// Paper-faithful defaults: cold start from the Earth's center,
    /// 0.1 mm update tolerance, 30-iteration cap.
    fn default() -> Self {
        NewtonRaphson::new(30, 1e-4)
    }
}

// Implemented without importing `Solver`, so `.solve(&meas, bias)` in
// this module (and in `use super::*` tests) still resolves through
// `PositionSolver` unambiguously.
impl crate::Solver for NewtonRaphson {
    // lint: no_alloc
    fn solve(
        &self,
        epoch: &crate::Epoch<'_>,
        ctx: &mut crate::SolveContext,
    ) -> Result<Solution, SolveError> {
        if crate::solver::stack_lane(ctx, epoch.len()) {
            return self.solve_stack(epoch);
        }
        let measurements = epoch.measurements;
        validate(measurements, 4)?;
        let m = measurements.len();

        let mut pos = self.initial_position;
        // A caller-supplied bias prediction is a better initial guess than
        // zero; NR still refines it as an unknown.
        let mut bias = if epoch.predicted_receiver_bias_m != 0.0 {
            epoch.predicted_receiver_bias_m
        } else {
            self.initial_bias_m
        };

        ctx.geometry.resize_zeroed(m, 4);
        ctx.rhs.resize_zeroed(m);

        for iteration in 1..=self.max_iterations {
            // Build P and the Jacobian at the current iterate (eq. 3-24 and
            // 3-20..3-23: ∂Pᵢ/∂x = (xᵉ−xᵢ)/ℜᵢ, ∂Pᵢ/∂εᴿ = 1).
            for (i, meas) in measurements.iter().enumerate() {
                let delta = pos - meas.position;
                let range = delta.norm();
                if range < 1.0 {
                    // Iterate collided with a satellite: geometry is
                    // hopeless from this start.
                    instrument::nr_nonconvergence().inc();
                    return Err(SolveError::NonConvergence {
                        iterations: iteration,
                        residual: f64::INFINITY,
                    });
                }
                let p_i = range - meas.pseudorange + bias;
                ctx.rhs[i] = -p_i;
                let row = ctx.geometry.row_mut(i);
                row[0] = delta.x / range;
                row[1] = delta.y / range;
                row[2] = delta.z / range;
                row[3] = 1.0;
            }

            // Step 4: solve eq. 3-26 by OLS (exact solve when m = 4), or
            // by weighted LS when elevation weighting is configured.
            match self.weighting {
                Weighting::Uniform => {
                    lstsq::ols_into(&ctx.geometry, &ctx.rhs, &mut ctx.lstsq, &mut ctx.step)?;
                }
                Weighting::SinSquaredElevation => {
                    ctx.weights.clear();
                    ctx.weights.extend(measurements.iter().map(|meas| {
                        meas.elevation
                            .map_or(1.0, |el| (el.sin() * el.sin()).max(1e-3))
                    }));
                    lstsq::wls_into(
                        &ctx.geometry,
                        &ctx.rhs,
                        &ctx.weights,
                        &mut ctx.lstsq,
                        &mut ctx.step,
                    )?;
                }
            }

            pos += Ecef::new(ctx.step[0], ctx.step[1], ctx.step[2]);
            bias += ctx.step[3];

            if !pos.is_finite() || !bias.is_finite() {
                instrument::nr_nonconvergence().inc();
                return Err(SolveError::NonConvergence {
                    iterations: iteration,
                    residual: f64::INFINITY,
                });
            }

            if ctx.step.norm_inf() < self.tolerance_m {
                // Converged: report the residual RMS at the accepted
                // iterate.
                let mut sum_sq = 0.0;
                for meas in measurements {
                    let r = (pos - meas.position).norm() - meas.pseudorange + bias;
                    sum_sq += r * r;
                }
                let residual_rms = (sum_sq / m as f64).sqrt();
                instrument::nr_solves().inc();
                instrument::nr_iterations().record(iteration as f64);
                instrument::nr_residual_rms().record(residual_rms);
                return Ok(Solution::new(pos, Some(bias), iteration, residual_rms));
            }
        }

        let residual = measurements
            .iter()
            .map(|meas| {
                let r = (pos - meas.position).norm() - meas.pseudorange + bias;
                r * r
            })
            .sum::<f64>()
            .sqrt();
        instrument::nr_nonconvergence().inc();
        if gps_telemetry::enabled(Level::Warn) {
            Event::new(Level::Warn, "core.nr", "did not converge")
                .with("iterations", self.max_iterations)
                .with("residual_m", residual)
                .with("satellites", m)
                .emit();
        }
        Err(SolveError::NonConvergence {
            iterations: self.max_iterations,
            residual,
        })
    }

    fn name(&self) -> &'static str {
        "NR"
    }

    fn min_satellites(&self) -> usize {
        4
    }

    fn estimates_bias(&self) -> bool {
        true
    }

    fn is_iterative(&self) -> bool {
        true
    }

    fn clone_box(&self) -> Box<dyn crate::Solver> {
        Box::new(*self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Measurement, PositionSolver};

    fn sats() -> Vec<Ecef> {
        vec![
            Ecef::new(2.0e7, 0.0, 1.7e7),
            Ecef::new(1.5e7, 1.8e7, 0.9e7),
            Ecef::new(1.6e7, -1.7e7, 1.0e7),
            Ecef::new(2.5e7, 0.4e7, -0.6e7),
            Ecef::new(1.9e7, 0.9e7, 1.6e7),
            Ecef::new(0.8e7, 1.4e7, 2.0e7),
        ]
    }

    fn exact_measurements(truth: Ecef, bias: f64, n: usize) -> Vec<Measurement> {
        sats()
            .into_iter()
            .take(n)
            .map(|s| Measurement::new(s, s.distance_to(truth) + bias))
            .collect()
    }

    #[test]
    fn exact_recovery_four_satellites() {
        let truth = Ecef::new(6.371e6, 1.0e5, -2.0e5);
        let meas = exact_measurements(truth, 250.0, 4);
        let fix = NewtonRaphson::default().solve(&meas, 0.0).unwrap();
        assert!(fix.position.distance_to(truth) < 1e-3);
        assert!((fix.receiver_bias_m.unwrap() - 250.0).abs() < 1e-3);
        assert!(fix.residual_rms < 1e-6);
    }

    #[test]
    fn exact_recovery_six_satellites_overdetermined() {
        let truth = Ecef::new(3.0e6, -5.2e6, 6.0e5);
        let meas = exact_measurements(truth, -180.0, 6);
        let fix = NewtonRaphson::default().solve(&meas, 0.0).unwrap();
        assert!(fix.position.distance_to(truth) < 1e-3);
        assert!((fix.receiver_bias_m.unwrap() + 180.0).abs() < 1e-3);
    }

    #[test]
    fn converges_from_cold_start_in_few_iterations() {
        let truth = Ecef::new(6.371e6, 0.0, 0.0);
        let meas = exact_measurements(truth, 0.0, 5);
        let fix = NewtonRaphson::default().solve(&meas, 0.0).unwrap();
        // The classic result: NR from the Earth's center needs ~5 steps.
        assert!(
            fix.iterations >= 3 && fix.iterations <= 10,
            "{}",
            fix.iterations
        );
    }

    #[test]
    fn warm_start_reduces_iterations() {
        let truth = Ecef::new(6.371e6, 0.0, 0.0);
        let meas = exact_measurements(truth, 100.0, 5);
        let cold = NewtonRaphson::default().solve(&meas, 0.0).unwrap();
        let warm = NewtonRaphson::default()
            .with_initial(truth + Ecef::new(10.0, -5.0, 3.0), 99.0)
            .solve(&meas, 0.0)
            .unwrap();
        assert!(warm.iterations < cold.iterations);
        assert!(warm.position.distance_to(truth) < 1e-3);
    }

    #[test]
    fn bias_hint_used_as_initial_guess() {
        let truth = Ecef::new(6.371e6, 0.0, 0.0);
        let meas = exact_measurements(truth, 300.0, 5);
        let hinted = NewtonRaphson::default().solve(&meas, 300.0).unwrap();
        assert!((hinted.receiver_bias_m.unwrap() - 300.0).abs() < 1e-3);
    }

    #[test]
    fn noisy_measurements_still_converge() {
        let truth = Ecef::new(6.371e6, 1.0e5, 5.0e4);
        let mut meas = exact_measurements(truth, 50.0, 6);
        // A few metres of alternating error.
        for (k, m) in meas.iter_mut().enumerate() {
            m.pseudorange += if k % 2 == 0 { 3.0 } else { -3.0 };
        }
        let fix = NewtonRaphson::default().solve(&meas, 0.0).unwrap();
        assert!(fix.position.distance_to(truth) < 20.0);
        assert!(fix.residual_rms > 0.1); // inconsistency shows up
    }

    #[test]
    fn rejects_too_few() {
        let truth = Ecef::new(6.371e6, 0.0, 0.0);
        let meas = exact_measurements(truth, 0.0, 3);
        assert_eq!(
            NewtonRaphson::default().solve(&meas, 0.0).unwrap_err(),
            SolveError::TooFewSatellites { got: 3, need: 4 }
        );
    }

    #[test]
    fn rejects_non_finite() {
        let truth = Ecef::new(6.371e6, 0.0, 0.0);
        let mut meas = exact_measurements(truth, 0.0, 4);
        meas[2].pseudorange = f64::NAN;
        assert_eq!(
            NewtonRaphson::default().solve(&meas, 0.0).unwrap_err(),
            SolveError::NonFinite
        );
    }

    #[test]
    fn degenerate_geometry_reported() {
        // All satellites at the same point: Jacobian rank-deficient.
        let s = Ecef::new(2.0e7, 0.0, 0.0);
        let meas = vec![Measurement::new(s, 2.0e7); 4];
        let err = NewtonRaphson::default().solve(&meas, 0.0).unwrap_err();
        assert!(
            matches!(err, SolveError::DegenerateGeometry(_))
                || matches!(err, SolveError::NonConvergence { .. }),
            "{err:?}"
        );
    }

    #[test]
    fn iteration_cap_enforced() {
        let truth = Ecef::new(6.371e6, 0.0, 0.0);
        let meas = exact_measurements(truth, 0.0, 5);
        // One iteration cannot reach 0.1 mm from a cold start.
        let err = NewtonRaphson::new(1, 1e-4).solve(&meas, 0.0).unwrap_err();
        assert!(matches!(
            err,
            SolveError::NonConvergence { iterations: 1, .. }
        ));
    }

    #[test]
    fn accessors() {
        let nr = NewtonRaphson::new(12, 0.5);
        assert_eq!(nr.max_iterations(), 12);
        assert_eq!(nr.tolerance_m(), 0.5);
        assert_eq!(nr.name(), "NR");
        assert_eq!(nr.min_satellites(), 4);
    }

    #[test]
    #[should_panic(expected = "iteration")]
    fn zero_iterations_rejected() {
        let _ = NewtonRaphson::new(0, 1e-4);
    }

    #[test]
    fn elevation_weighting_matches_ols_on_exact_data() {
        let truth = Ecef::new(6.371e6, 1.0e5, -2.0e5);
        let meas: Vec<Measurement> = exact_measurements(truth, 120.0, 6)
            .into_iter()
            .enumerate()
            .map(|(k, m)| m.with_elevation(0.2 + 0.12 * k as f64))
            .collect();
        let weighted = NewtonRaphson::default()
            .with_weighting(Weighting::SinSquaredElevation)
            .solve(&meas, 0.0)
            .unwrap();
        // Exact data: every weighting recovers the truth.
        assert!(weighted.position.distance_to(truth) < 1e-3);
        assert_eq!(
            NewtonRaphson::default()
                .with_weighting(Weighting::SinSquaredElevation)
                .weighting(),
            Weighting::SinSquaredElevation
        );
    }

    #[test]
    fn elevation_weighting_downweights_low_elevation_error() {
        let truth = Ecef::new(6.371e6, 1.0e5, -2.0e5);
        // Large error on the lowest-elevation satellite only.
        let mut meas: Vec<Measurement> = exact_measurements(truth, 0.0, 6)
            .into_iter()
            .enumerate()
            .map(|(k, m)| m.with_elevation(if k == 0 { 0.09 } else { 0.9 + 0.1 * k as f64 }))
            .collect();
        meas[0].pseudorange += 40.0;
        let uniform = NewtonRaphson::default().solve(&meas, 0.0).unwrap();
        let weighted = NewtonRaphson::default()
            .with_weighting(Weighting::SinSquaredElevation)
            .solve(&meas, 0.0)
            .unwrap();
        assert!(
            weighted.position.distance_to(truth) < uniform.position.distance_to(truth),
            "weighted {} vs uniform {}",
            weighted.position.distance_to(truth),
            uniform.position.distance_to(truth)
        );
    }

    #[test]
    fn weighting_without_elevations_falls_back_to_uniform() {
        let truth = Ecef::new(6.371e6, 0.0, 0.0);
        let meas = exact_measurements(truth, 75.0, 5); // no elevations
        let uniform = NewtonRaphson::default().solve(&meas, 0.0).unwrap();
        let weighted = NewtonRaphson::default()
            .with_weighting(Weighting::SinSquaredElevation)
            .solve(&meas, 0.0)
            .unwrap();
        assert!(uniform.position.distance_to(weighted.position) < 1e-6);
    }
}
