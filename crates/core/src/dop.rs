use std::fmt;

use gps_geodesy::{Ecef, LocalFrame};
use gps_linalg::Matrix;

use crate::{Measurement, SolveError};

/// Dilution-of-precision figures: how satellite geometry scales
/// measurement noise into solution noise.
///
/// Computed from the cofactor matrix `Q = (GᵀG)⁻¹` of the standard
/// position/time design matrix `G` (unit line-of-sight vectors plus the
/// clock column). The horizontal/vertical split uses a local ENU frame at
/// the receiver.
///
/// # Example
///
/// ```
/// use gps_core::{Dop, Measurement};
/// use gps_geodesy::Ecef;
///
/// # fn main() -> Result<(), gps_core::SolveError> {
/// let receiver = Ecef::new(6.37e6, 0.0, 0.0);
/// let sats = [
///     Ecef::new(2.0e7, 0.0, 1.7e7),
///     Ecef::new(1.5e7, 1.8e7, 0.9e7),
///     Ecef::new(1.6e7, -1.7e7, 1.0e7),
///     Ecef::new(2.5e7, 0.4e7, -0.6e7),
///     Ecef::new(0.8e7, 1.4e7, 2.0e7),
/// ];
/// let meas: Vec<Measurement> = sats
///     .iter()
///     .map(|&s| Measurement::new(s, s.distance_to(receiver)))
///     .collect();
/// let dop = Dop::compute(&meas, receiver)?;
/// assert!(dop.gdop > 1.0 && dop.gdop < 10.0);
/// assert!(dop.pdop < dop.gdop);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Dop {
    /// Geometric DOP (position + time).
    pub gdop: f64,
    /// Position DOP (3-D position only).
    pub pdop: f64,
    /// Horizontal DOP.
    pub hdop: f64,
    /// Vertical DOP.
    pub vdop: f64,
    /// Time DOP.
    pub tdop: f64,
}

impl Dop {
    /// Computes DOP for a satellite set as seen from `receiver`.
    ///
    /// # Errors
    ///
    /// * [`SolveError::TooFewSatellites`] with fewer than 4 satellites.
    /// * [`SolveError::DegenerateGeometry`] if `GᵀG` is singular.
    /// * [`SolveError::NonFinite`] for NaN/∞ positions.
    pub fn compute(measurements: &[Measurement], receiver: Ecef) -> Result<Dop, SolveError> {
        crate::measurement::validate(measurements, 4)?;
        if !receiver.is_finite() {
            return Err(SolveError::NonFinite);
        }
        let m = measurements.len();
        let frame = LocalFrame::new(receiver);
        // Design matrix in ENU + clock so HDOP/VDOP read directly off Q.
        let mut g = Matrix::zeros(m, 4);
        for (i, meas) in measurements.iter().enumerate() {
            let enu = frame.to_enu(meas.position);
            let range = (enu.east * enu.east + enu.north * enu.north + enu.up * enu.up).sqrt();
            if range < 1.0 {
                return Err(SolveError::NonFinite);
            }
            let row = g.row_mut(i);
            row[0] = enu.east / range;
            row[1] = enu.north / range;
            row[2] = enu.up / range;
            row[3] = 1.0;
        }
        let q = g.gram().inverse()?;
        let (qe, qn, qu, qt) = (q[(0, 0)], q[(1, 1)], q[(2, 2)], q[(3, 3)]);
        Ok(Dop {
            gdop: (qe + qn + qu + qt).sqrt(),
            pdop: (qe + qn + qu).sqrt(),
            hdop: (qe + qn).sqrt(),
            vdop: qu.sqrt(),
            tdop: qt.sqrt(),
        })
    }
}

impl fmt::Display for Dop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "GDOP {:.2} PDOP {:.2} HDOP {:.2} VDOP {:.2} TDOP {:.2}",
            self.gdop, self.pdop, self.hdop, self.vdop, self.tdop
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn receiver() -> Ecef {
        Ecef::new(6.371e6, 0.0, 0.0)
    }

    fn spread_sats() -> Vec<Measurement> {
        [
            Ecef::new(2.0e7, 0.0, 1.7e7),
            Ecef::new(1.5e7, 1.8e7, 0.9e7),
            Ecef::new(1.6e7, -1.7e7, 1.0e7),
            Ecef::new(2.5e7, 0.4e7, -0.6e7),
            Ecef::new(1.9e7, 0.9e7, 1.6e7),
            Ecef::new(0.8e7, 1.4e7, 2.0e7),
        ]
        .iter()
        .map(|&s| Measurement::new(s, s.distance_to(receiver())))
        .collect()
    }

    #[test]
    fn dop_consistency_relations() {
        let dop = Dop::compute(&spread_sats(), receiver()).unwrap();
        assert!(dop.pdop <= dop.gdop);
        assert!(dop.hdop <= dop.pdop);
        assert!(dop.vdop <= dop.pdop);
        // PDOP² = HDOP² + VDOP², GDOP² = PDOP² + TDOP².
        assert!((dop.pdop.powi(2) - dop.hdop.powi(2) - dop.vdop.powi(2)).abs() < 1e-9);
        assert!((dop.gdop.powi(2) - dop.pdop.powi(2) - dop.tdop.powi(2)).abs() < 1e-9);
    }

    #[test]
    fn more_satellites_do_not_worsen_dop() {
        let all = spread_sats();
        let four = Dop::compute(&all[..4], receiver()).unwrap();
        let six = Dop::compute(&all, receiver()).unwrap();
        assert!(six.gdop <= four.gdop + 1e-9);
    }

    #[test]
    fn clustered_satellites_have_bad_dop() {
        // Satellites bunched within a small cone: geometry near-singular,
        // so GDOP is huge (or outright singular).
        let base = Ecef::new(2.0e7, 1.0e6, 1.7e7);
        let meas: Vec<Measurement> = (0..5)
            .map(|k| {
                let s = base + Ecef::new(0.0, k as f64 * 5.0e4, k as f64 * 3.0e4);
                Measurement::new(s, s.distance_to(receiver()))
            })
            .collect();
        match Dop::compute(&meas, receiver()) {
            Ok(dop) => {
                let spread = Dop::compute(&spread_sats(), receiver()).unwrap();
                assert!(dop.gdop > 5.0 * spread.gdop, "gdop {}", dop.gdop);
            }
            Err(SolveError::DegenerateGeometry(_)) => {}
            Err(e) => panic!("unexpected error {e:?}"),
        }
    }

    #[test]
    fn rejects_too_few() {
        let meas = spread_sats();
        assert!(matches!(
            Dop::compute(&meas[..3], receiver()).unwrap_err(),
            SolveError::TooFewSatellites { got: 3, need: 4 }
        ));
    }

    #[test]
    fn display_lists_all_figures() {
        let dop = Dop::compute(&spread_sats(), receiver()).unwrap();
        let text = dop.to_string();
        for label in ["GDOP", "PDOP", "HDOP", "VDOP", "TDOP"] {
            assert!(text.contains(label));
        }
    }
}
