//! Graceful degradation around the paper's solver stack.
//!
//! The closed-form DLO/DLG solvers buy their speed by trusting two
//! inputs — the predicted clock bias (eq. 4-1) and the differenced base
//! equation (eq. 4-7/4-8) — that are exactly what a receiver loses first
//! under signal faults. [`ResilientSolver`] keeps producing *some*
//! usable output when that trust breaks, by trading accuracy away in
//! explicit, observable steps instead of failing the epoch:
//!
//! 1. **Sanitization** — non-finite measurements are removed up front
//!    (a decoder bug must not take down the whole epoch);
//! 2. **Degradation ladder** — DLG → DLO → NR → Bancroft: the optimal
//!    estimator first, the prediction-free iterative solver and the
//!    algebraic closed form as fallbacks;
//! 3. **Validation gates** — every candidate fix must pass a residual
//!    RMS ceiling, a GDOP ceiling ([`Dop`]) and a position-innovation
//!    test against the kinematic model before it is believed;
//! 4. **RAIM retry** — a rung whose residual gate fires is retried
//!    through [`Raim`] fault exclusion while redundancy lasts;
//! 5. **Bounded holdover** — when no rung produces an acceptable fix,
//!    the last good state is propagated through the [`PvFilter`]
//!    kinematic model for a bounded number of epochs, flagged
//!    [`FixQuality::Holdover`].
//!
//! The result is a [`FixQuality`]-annotated [`ResilientFix`] instead of
//! an all-or-nothing `Result`: callers learn *how much* to trust the
//! output, and an availability report can distinguish nominal, degraded
//! and holdover epochs (see `gps-sim`'s `fault_campaign`).

use std::fmt;

use gps_geodesy::Ecef;
use gps_telemetry::recorder::{self, RecordKind};
use gps_telemetry::{Event, Level};

use crate::instrument;
use crate::{
    Bancroft, Dlg, Dlo, Dop, Epoch, Measurement, NewtonRaphson, PvFilter, Raim, Solution,
    SolveContext, SolveError, Solver,
};

/// How much a [`ResilientFix`] should be trusted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FixQuality {
    /// The first-choice solver passed every gate on the full measurement
    /// set: full accuracy.
    Nominal,
    /// A usable measurement fix, but something had to give: a fallback
    /// rung produced it, RAIM excluded satellites, non-finite
    /// measurements were dropped, or the clock prediction disagreed with
    /// the solved bias.
    Degraded,
    /// No acceptable measurement fix this epoch: the position is the
    /// kinematic model's propagation of the last good state.
    Holdover,
}

impl FixQuality {
    /// Stable lowercase label for reports and telemetry.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            FixQuality::Nominal => "nominal",
            FixQuality::Degraded => "degraded",
            FixQuality::Holdover => "holdover",
        }
    }

    /// Compact wire code for flight-recorder records (0 is reserved
    /// for "no fix").
    #[must_use]
    pub fn code(self) -> u16 {
        match self {
            FixQuality::Nominal => 1,
            FixQuality::Degraded => 2,
            FixQuality::Holdover => 3,
        }
    }

    /// Name for a [`FixQuality::code`] read back from a flight-recorder
    /// dump; `None` for unknown codes.
    #[must_use]
    pub fn code_name(code: u16) -> Option<&'static str> {
        match code {
            0 => Some("no_fix"),
            1 => Some("nominal"),
            2 => Some("degraded"),
            3 => Some("holdover"),
            _ => None,
        }
    }
}

impl fmt::Display for FixQuality {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A quality-annotated position fix from [`ResilientSolver::solve_epoch`].
#[derive(Debug, Clone, PartialEq)]
pub struct ResilientFix {
    /// Estimated (or, in holdover, propagated) receiver position.
    pub position: Ecef,
    /// How much to trust it.
    pub quality: FixQuality,
    /// Which ladder rung produced it (`"DLG"`, `"DLO"`, `"NR"`,
    /// `"Bancroft"`) or `"holdover"`.
    pub source: &'static str,
    /// Indices (into the *original* measurement slice) excluded by the
    /// RAIM retry.
    pub excluded: Vec<usize>,
    /// Non-finite measurements removed before solving.
    pub dropped_non_finite: usize,
    /// Residual RMS of the accepted solve, metres (`None` in holdover).
    pub residual_rms: Option<f64>,
    /// GDOP of the satellite set behind the accepted solve (`None` in
    /// holdover).
    pub gdop: Option<f64>,
    /// Receiver range bias estimated by the accepted rung, if it solves
    /// for one (NR, Bancroft).
    pub receiver_bias_m: Option<f64>,
}

/// Per-epoch solution validation thresholds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ValidationGates {
    /// Residual-RMS ceiling, metres: above this the fix is inconsistent
    /// with its own measurements (default 15 m ≈ 3× the single-frequency
    /// noise budget).
    pub max_residual_rms_m: f64,
    /// GDOP ceiling: above this the geometry amplifies noise too much to
    /// trust the fix (default 15).
    pub max_gdop: f64,
    /// Allowed disagreement between a rung's *solved* receiver bias and
    /// the external clock prediction, metres (default 150 m ≈ 500 ns).
    /// Firing marks the fix degraded — the solved bias wins, but the
    /// prediction the direct solvers trusted is evidently stale.
    pub max_clock_innovation_m: f64,
    /// Allowed jump between the kinematic model's predicted position and
    /// a candidate fix, metres (default 500 m). Rejects fixes the
    /// receiver could not physically have reached.
    pub max_position_innovation_m: f64,
}

impl Default for ValidationGates {
    fn default() -> Self {
        ValidationGates {
            max_residual_rms_m: 15.0,
            max_gdop: 15.0,
            max_clock_innovation_m: 150.0,
            max_position_innovation_m: 500.0,
        }
    }
}

/// The graceful-degradation pipeline: ladder + gates + RAIM retry +
/// bounded holdover. See the [module docs](self) for the design.
///
/// The solver is stateful (kinematic filter, holdover budget) — use one
/// instance per receiver track and feed epochs in time order.
///
/// # Example
///
/// ```
/// use gps_core::{FixQuality, Measurement, ResilientSolver};
/// use gps_geodesy::Ecef;
///
/// let truth = Ecef::new(6.371e6, 1.0e5, -2.0e5);
/// let sats = [
///     Ecef::new(2.0e7, 0.0, 1.7e7),
///     Ecef::new(1.5e7, 1.8e7, 0.9e7),
///     Ecef::new(1.6e7, -1.7e7, 1.0e7),
///     Ecef::new(2.5e7, 0.4e7, -0.6e7),
///     Ecef::new(1.9e7, 0.9e7, 1.6e7),
///     Ecef::new(0.8e7, 1.4e7, 2.0e7),
/// ];
/// let meas: Vec<Measurement> = sats
///     .iter()
///     .map(|&s| Measurement::new(s, s.distance_to(truth)))
///     .collect();
/// let mut solver = ResilientSolver::new();
/// let fix = solver.solve_epoch(&meas, 0.0, 1.0).unwrap();
/// assert_eq!(fix.quality, FixQuality::Nominal);
/// assert!(fix.position.distance_to(truth) < 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct ResilientSolver {
    /// Degradation ladder, walked in order until a rung's fix passes the
    /// gates. Default: DLG → DLO → NR → Bancroft.
    ladder: Vec<Box<dyn Solver>>,
    /// Reusable scratch for every rung (and its RAIM retry).
    ctx: SolveContext,
    gates: ValidationGates,
    /// Residual-RMS threshold handed to the RAIM retry, metres.
    raim_threshold_m: f64,
    /// Exclusion budget of the RAIM retry.
    max_raim_exclusions: usize,
    /// Consecutive holdover epochs allowed before the solver reports an
    /// outage.
    max_holdover_epochs: usize,
    filter: PvFilter,
    holdover_used: usize,
    /// Seconds since the filter last absorbed a real fix.
    since_fix_s: f64,
}

impl Default for ResilientSolver {
    fn default() -> Self {
        ResilientSolver::new()
    }
}

impl ResilientSolver {
    /// Creates the pipeline with default solvers, gates, a 10 m RAIM
    /// threshold (2 exclusions), a 5-epoch holdover budget and a
    /// static-receiver kinematic model.
    #[must_use]
    pub fn new() -> Self {
        ResilientSolver {
            ladder: vec![
                Box::new(Dlg::default()),
                Box::new(Dlo::default()),
                Box::new(NewtonRaphson::default()),
                Box::new(Bancroft),
            ],
            ctx: SolveContext::new(),
            gates: ValidationGates::default(),
            raim_threshold_m: 10.0,
            max_raim_exclusions: 2,
            max_holdover_epochs: 5,
            filter: PvFilter::new(1.0, 25.0),
            holdover_used: 0,
            since_fix_s: 0.0,
        }
    }

    /// Replaces the degradation ladder. Rungs are tried in order; rung 0
    /// is the only one that can produce a [`FixQuality::Nominal`] fix.
    ///
    /// # Panics
    ///
    /// Panics if `ladder` is empty.
    #[must_use]
    pub fn with_ladder(mut self, ladder: Vec<Box<dyn Solver>>) -> Self {
        assert!(!ladder.is_empty(), "ladder must have at least one rung");
        self.ladder = ladder;
        self
    }

    /// Replaces the validation gates.
    #[must_use]
    pub fn with_gates(mut self, gates: ValidationGates) -> Self {
        self.gates = gates;
        self
    }

    /// Sets the RAIM retry threshold (metres) and exclusion budget.
    ///
    /// # Panics
    ///
    /// Panics if `threshold_m` is not strictly positive (same contract
    /// as [`Raim::new`]).
    #[must_use]
    pub fn with_raim(mut self, threshold_m: f64, max_exclusions: usize) -> Self {
        assert!(threshold_m > 0.0, "threshold must be positive");
        self.raim_threshold_m = threshold_m;
        self.max_raim_exclusions = max_exclusions;
        self
    }

    /// Sets how many consecutive epochs may be bridged by holdover.
    #[must_use]
    pub fn with_max_holdover(mut self, epochs: usize) -> Self {
        self.max_holdover_epochs = epochs;
        self
    }

    /// Replaces the kinematic model (process noise / fix variance).
    #[must_use]
    pub fn with_kinematics(mut self, filter: PvFilter) -> Self {
        self.filter = filter;
        self
    }

    /// Consecutive holdover epochs currently spent.
    #[must_use]
    pub fn holdover_used(&self) -> usize {
        self.holdover_used
    }

    /// Produces the best available quality-annotated fix for one epoch.
    ///
    /// `predicted_receiver_bias_m` is the external clock prediction the
    /// direct solvers consume (eq. 4-4); `dt_s` is the time since the
    /// previous call (used by the kinematic model).
    ///
    /// # Errors
    ///
    /// Returns the first ladder rung's error only when every rung fails
    /// *and* holdover is unavailable (never initialized) or exhausted
    /// (`max_holdover_epochs` consecutive misses).
    ///
    /// # Panics
    ///
    /// Panics if `dt_s` is not strictly positive.
    pub fn solve_epoch(
        &mut self,
        measurements: &[Measurement],
        predicted_receiver_bias_m: f64,
        dt_s: f64,
    ) -> Result<ResilientFix, SolveError> {
        assert!(dt_s > 0.0, "dt must be positive");
        self.since_fix_s += dt_s;

        // 1. Sanitize: a NaN pseudorange must cost one satellite, not
        // the epoch. Remember original indices for exclusion reporting.
        let mut clean = Vec::with_capacity(measurements.len());
        let mut original_index = Vec::with_capacity(measurements.len());
        for (i, m) in measurements.iter().enumerate() {
            if m.is_finite() {
                clean.push(*m);
                original_index.push(i);
            }
        }
        let dropped_non_finite = measurements.len() - clean.len();

        // 2-4. The ladder, with gates and RAIM retry per rung. The walk
        // is generic: every rung is a `&dyn Solver`, so adding or
        // reordering solvers never touches this loop.
        let cfg = RungConfig {
            gates: &self.gates,
            filter: &self.filter,
            since_fix_s: self.since_fix_s,
            raim_threshold_m: self.raim_threshold_m,
            max_raim_exclusions: self.max_raim_exclusions,
        };
        let mut first_error: Option<SolveError> = None;
        let mut accepted: Option<(Solution, &'static str, Vec<usize>, usize)> = None;
        for (rung, solver) in self.ladder.iter().enumerate() {
            let name = solver.name();
            match attempt(
                solver.as_ref(),
                &clean,
                predicted_receiver_bias_m,
                &cfg,
                &mut self.ctx,
            ) {
                Ok((solution, excluded_clean)) => {
                    let excluded: Vec<usize> =
                        excluded_clean.iter().map(|&k| original_index[k]).collect();
                    accepted = Some((solution, name, excluded, rung));
                    break;
                }
                Err(e) => {
                    if gps_telemetry::enabled(Level::Debug) {
                        Event::new(Level::Debug, "core.resilient", "rung failed")
                            .with("rung", name)
                            .with("error", e.to_string())
                            .emit();
                    }
                    first_error.get_or_insert(e);
                }
            }
        }

        if let Some((solution, source, excluded, rung)) = accepted {
            // Clock innovation: rungs that solve their own bias expose a
            // stale predictor. The fix stands, but only as degraded.
            let clock_innovation_fired = solution.receiver_bias_m.is_some_and(|bias| {
                (bias - predicted_receiver_bias_m).abs() > self.gates.max_clock_innovation_m
            });
            if clock_innovation_fired && gps_telemetry::enabled(Level::Warn) {
                Event::new(Level::Warn, "core.resilient", "clock innovation limit")
                    .with("solved_bias_m", solution.receiver_bias_m.unwrap_or(0.0))
                    .with("predicted_bias_m", predicted_receiver_bias_m)
                    .emit();
            }
            let quality = if rung == 0
                && excluded.is_empty()
                && dropped_non_finite == 0
                && !clock_innovation_fired
            {
                FixQuality::Nominal
            } else {
                FixQuality::Degraded
            };
            // One generic emission point for every quality outcome — the
            // counter name derives from `FixQuality::name`, never from a
            // per-solver branch.
            instrument::resilient_fix_quality(quality.name()).inc();
            recorder::record_current(
                RecordKind::FixQuality,
                quality.code(),
                0,
                recorder::tag(source),
                rung as u64,
            );
            #[allow(clippy::cast_precision_loss)]
            instrument::resilient_accepted_rung().record(rung as f64);
            // Feed the kinematic model and reset the holdover budget.
            // The innovation covariance cannot fail to factor for a
            // valid r_pos, so a filter error only skips the smoothing.
            let _ = self.filter.update(solution.position, self.since_fix_s);
            self.since_fix_s = 0.0;
            self.holdover_used = 0;
            let gdop = if excluded.is_empty() {
                Dop::compute(&clean, solution.position).ok().map(|d| d.gdop)
            } else {
                let used: Vec<Measurement> = clean
                    .iter()
                    .zip(&original_index)
                    .filter(|(_, &i)| !excluded.contains(&i))
                    .map(|(m, _)| *m)
                    .collect();
                Dop::compute(&used, solution.position).ok().map(|d| d.gdop)
            };
            return Ok(ResilientFix {
                position: solution.position,
                quality,
                source,
                excluded,
                dropped_non_finite,
                residual_rms: Some(solution.residual_rms),
                gdop,
                receiver_bias_m: solution.receiver_bias_m,
            });
        }

        // 5. Holdover: bridge the outage through the kinematic model.
        if self.holdover_used < self.max_holdover_epochs {
            if let Some(position) = self.filter.predict_position(self.since_fix_s) {
                self.holdover_used += 1;
                instrument::resilient_fix_quality(FixQuality::Holdover.name()).inc();
                recorder::record_current(
                    RecordKind::FixQuality,
                    FixQuality::Holdover.code(),
                    0,
                    recorder::tag("holdover"),
                    0,
                );
                if gps_telemetry::enabled(Level::Warn) {
                    Event::new(Level::Warn, "core.resilient", "holdover")
                        .with("consecutive", self.holdover_used)
                        .with("since_fix_s", self.since_fix_s)
                        .emit();
                }
                return Ok(ResilientFix {
                    position,
                    quality: FixQuality::Holdover,
                    source: "holdover",
                    excluded: Vec::new(),
                    dropped_non_finite,
                    residual_rms: None,
                    gdop: None,
                    receiver_bias_m: None,
                });
            }
        }
        instrument::resilient_fix_quality("no_fix").inc();
        recorder::record_current(RecordKind::FixQuality, 0, 0, 0, 0);
        let need = self
            .ladder
            .iter()
            .map(|s| s.min_satellites())
            .min()
            .unwrap_or(4);
        Err(first_error.unwrap_or(SolveError::TooFewSatellites {
            got: measurements.len(),
            need,
        }))
    }
}

/// Per-rung slice of the pipeline configuration, so the ladder walk can
/// borrow the solver list and the scratch context independently of the
/// gate parameters.
struct RungConfig<'a> {
    gates: &'a ValidationGates,
    filter: &'a PvFilter,
    since_fix_s: f64,
    raim_threshold_m: f64,
    max_raim_exclusions: usize,
}

/// Solve + gates + RAIM retry for one ladder rung.
fn attempt(
    solver: &dyn Solver,
    clean: &[Measurement],
    predicted_bias_m: f64,
    cfg: &RungConfig<'_>,
    ctx: &mut SolveContext,
) -> Result<(Solution, Vec<usize>), SolveError> {
    let epoch = Epoch::new(clean, predicted_bias_m);
    let solution = solver.solve(&epoch, ctx)?;
    match validate(&solution, clean, cfg) {
        GateVerdict::Pass => Ok((solution, Vec::new())),
        GateVerdict::Fail(gate) => {
            instrument::resilient_gate_failures().inc();
            // A residual failure with redundancy to spare is the RAIM
            // case: one bad measurement may be poisoning the fix.
            if gate == Gate::Residual && clean.len() >= solver.min_satellites() + 2 {
                instrument::resilient_raim_retries().inc();
                let raim = Raim::new(solver, cfg.raim_threshold_m)
                    .with_max_exclusions(cfg.max_raim_exclusions);
                let outcome = raim.solve_with(&epoch, ctx)?;
                let kept: Vec<Measurement> = clean
                    .iter()
                    .enumerate()
                    .filter(|(k, _)| !outcome.excluded.contains(k))
                    .map(|(_, m)| *m)
                    .collect();
                match validate(&outcome.solution, &kept, cfg) {
                    GateVerdict::Pass => Ok((outcome.solution, outcome.excluded)),
                    GateVerdict::Fail(_) => Err(SolveError::IntegrityFault {
                        excluded: outcome.excluded,
                        residual: outcome.solution.residual_rms,
                    }),
                }
            } else {
                Err(gate.as_error(&solution))
            }
        }
    }
}

/// Applies the residual / GDOP / position-innovation gates.
fn validate(solution: &Solution, used: &[Measurement], cfg: &RungConfig<'_>) -> GateVerdict {
    if solution.residual_rms > cfg.gates.max_residual_rms_m {
        return GateVerdict::Fail(Gate::Residual);
    }
    match Dop::compute(used, solution.position) {
        Ok(dop) if dop.gdop <= cfg.gates.max_gdop => {}
        // Either the geometry is explicitly degenerate or GDOP blew
        // through the ceiling — both mean "don't trust this fix".
        _ => return GateVerdict::Fail(Gate::Geometry),
    }
    if let Some(predicted) = cfg.filter.predict_position(cfg.since_fix_s) {
        if solution.position.distance_to(predicted) > cfg.gates.max_position_innovation_m {
            return GateVerdict::Fail(Gate::Innovation);
        }
    }
    GateVerdict::Pass
}

/// Which gate a candidate fix failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Gate {
    Residual,
    Geometry,
    Innovation,
}

impl Gate {
    fn as_error(self, solution: &Solution) -> SolveError {
        match self {
            // Residual failures that cannot be RAIM-retried surface as
            // integrity faults with no exclusions made.
            Gate::Residual => SolveError::IntegrityFault {
                excluded: Vec::new(),
                residual: solution.residual_rms,
            },
            Gate::Geometry => SolveError::DegenerateGeometry(gps_linalg::LinalgError::Singular),
            Gate::Innovation => SolveError::IntegrityFault {
                excluded: Vec::new(),
                residual: solution.residual_rms,
            },
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum GateVerdict {
    Pass,
    Fail(Gate),
}

#[cfg(test)]
mod tests {
    use super::*;

    fn truth() -> Ecef {
        Ecef::new(6.371e6, 1.0e5, -2.0e5)
    }

    fn sats() -> Vec<Ecef> {
        vec![
            Ecef::new(2.0e7, 0.0, 1.7e7),
            Ecef::new(1.5e7, 1.8e7, 0.9e7),
            Ecef::new(1.6e7, -1.7e7, 1.0e7),
            Ecef::new(2.5e7, 0.4e7, -0.6e7),
            Ecef::new(1.9e7, 0.9e7, 1.6e7),
            Ecef::new(0.8e7, 1.4e7, 2.0e7),
            Ecef::new(1.2e7, -0.4e7, 2.2e7),
        ]
    }

    fn clean_measurements(n: usize) -> Vec<Measurement> {
        sats()
            .into_iter()
            .take(n)
            .map(|s| Measurement::new(s, s.distance_to(truth())))
            .collect()
    }

    #[test]
    fn clean_epoch_is_nominal_from_the_first_rung() {
        let mut solver = ResilientSolver::new();
        let fix = solver
            .solve_epoch(&clean_measurements(6), 0.0, 1.0)
            .unwrap();
        assert_eq!(fix.quality, FixQuality::Nominal);
        assert_eq!(fix.source, "DLG");
        assert!(fix.excluded.is_empty());
        assert_eq!(fix.dropped_non_finite, 0);
        assert!(fix.position.distance_to(truth()) < 1.0);
        assert!(fix.gdop.unwrap() < 15.0);
    }

    #[test]
    fn faulted_satellite_is_excluded_and_fix_degraded() {
        let mut meas = clean_measurements(7);
        meas[3].pseudorange += 800.0;
        let mut solver = ResilientSolver::new();
        let fix = solver.solve_epoch(&meas, 0.0, 1.0).unwrap();
        assert_eq!(fix.quality, FixQuality::Degraded);
        assert_eq!(fix.excluded, vec![3]);
        assert!(fix.position.distance_to(truth()) < 1.0, "fix error too big");
    }

    #[test]
    fn non_finite_measurements_cost_one_satellite_not_the_epoch() {
        let mut meas = clean_measurements(6);
        meas[2].pseudorange = f64::NAN;
        let mut solver = ResilientSolver::new();
        let fix = solver.solve_epoch(&meas, 0.0, 1.0).unwrap();
        assert_eq!(fix.quality, FixQuality::Degraded);
        assert_eq!(fix.dropped_non_finite, 1);
        assert!(fix.position.distance_to(truth()) < 1.0);
    }

    #[test]
    fn exclusion_indices_refer_to_the_original_slice() {
        let mut meas = clean_measurements(7);
        meas[0].pseudorange = f64::NAN; // shifts all sanitized indices
        meas[4].pseudorange += 900.0;
        let mut solver = ResilientSolver::new();
        let fix = solver.solve_epoch(&meas, 0.0, 1.0).unwrap();
        assert_eq!(fix.dropped_non_finite, 1);
        assert_eq!(fix.excluded, vec![4], "original-slice index expected");
    }

    #[test]
    fn outage_bridges_through_holdover_then_errors() {
        let mut solver = ResilientSolver::new().with_max_holdover(2);
        // Two good epochs initialize the kinematic model.
        for _ in 0..2 {
            solver
                .solve_epoch(&clean_measurements(6), 0.0, 1.0)
                .unwrap();
        }
        // Outage: too few satellites.
        let few = clean_measurements(3);
        for expected in 1..=2 {
            let fix = solver.solve_epoch(&few, 0.0, 1.0).unwrap();
            assert_eq!(fix.quality, FixQuality::Holdover);
            assert_eq!(fix.source, "holdover");
            assert_eq!(solver.holdover_used(), expected);
            // Static receiver: the propagated position stays close.
            assert!(fix.position.distance_to(truth()) < 50.0);
        }
        // Budget exhausted: the outage surfaces as the rung error.
        let err = solver.solve_epoch(&few, 0.0, 1.0).unwrap_err();
        assert_eq!(err, SolveError::TooFewSatellites { got: 3, need: 4 });
        // A good epoch resets the budget.
        let fix = solver
            .solve_epoch(&clean_measurements(6), 0.0, 1.0)
            .unwrap();
        assert_eq!(fix.quality, FixQuality::Nominal);
        assert_eq!(solver.holdover_used(), 0);
        let fix = solver.solve_epoch(&few, 0.0, 1.0).unwrap();
        assert_eq!(fix.quality, FixQuality::Holdover);
    }

    #[test]
    fn holdover_unavailable_before_any_fix() {
        let mut solver = ResilientSolver::new();
        let err = solver
            .solve_epoch(&clean_measurements(3), 0.0, 1.0)
            .unwrap_err();
        assert_eq!(err, SolveError::TooFewSatellites { got: 3, need: 4 });
    }

    #[test]
    fn stale_clock_prediction_degrades_but_does_not_drop_the_fix() {
        // The direct solvers see a prediction that is stale by 1 ms of
        // clock (300 km of range — the threshold-station failure mode)
        // and produce garbage; NR only uses the prediction as an initial
        // guess and recovers the position, but the innovation between its
        // solved bias and the prediction flags the epoch degraded.
        let mut solver = ResilientSolver::new();
        let fix = solver
            .solve_epoch(&clean_measurements(7), 3.0e5, 1.0)
            .unwrap();
        assert_eq!(fix.quality, FixQuality::Degraded);
        assert!(
            fix.source == "NR" || fix.source == "Bancroft",
            "prediction-free rung expected, got {}",
            fix.source
        );
        assert!(fix.position.distance_to(truth()) < 1.0);
    }

    #[test]
    fn quality_ordering_and_names() {
        assert!(FixQuality::Nominal < FixQuality::Degraded);
        assert!(FixQuality::Degraded < FixQuality::Holdover);
        assert_eq!(FixQuality::Nominal.to_string(), "nominal");
        assert_eq!(FixQuality::Holdover.name(), "holdover");
    }

    #[test]
    #[should_panic(expected = "dt must be positive")]
    fn rejects_non_positive_dt() {
        let mut solver = ResilientSolver::new();
        let _ = solver.solve_epoch(&clean_measurements(6), 0.0, 0.0);
    }

    #[test]
    fn builders_compose() {
        let solver = ResilientSolver::new()
            .with_gates(ValidationGates {
                max_residual_rms_m: 5.0,
                ..ValidationGates::default()
            })
            .with_raim(8.0, 1)
            .with_max_holdover(3)
            .with_kinematics(PvFilter::new(0.5, 16.0));
        assert_eq!(solver.gates.max_residual_rms_m, 5.0);
        assert_eq!(solver.max_raim_exclusions, 1);
        assert_eq!(solver.max_holdover_epochs, 3);
    }
}
