use gps_geodesy::Ecef;
use gps_linalg::lstsq::{self, GlsStrategy};
use gps_linalg::stack::{self, SMat};
use gps_linalg::{Matrix, STACK_M_CAP};

use crate::dlo::LinearSystem;
use crate::instrument;
use crate::{BaseSelection, Solution, SolveError};
use gps_telemetry::{Event, Level};

/// Which covariance structure DLG feeds to the general least-squares
/// estimator — the subject of the `ablation_gls_cov` benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub enum CovarianceModel {
    /// The paper's full matrix `Ψᵢⱼ = ρ₁² + δᵢⱼ·ρᵢ₊₁²` (eq. 4-26): every
    /// pair of differenced equations shares the base-satellite term, so
    /// all off-diagonals equal `ρ₁²`. Theorem 4.2 proves this makes GLS
    /// optimal.
    #[default]
    Full,
    /// Keep only the diagonal of Ψ — i.e. acknowledge unequal variances
    /// but ignore the correlation that Theorem 4.1 identifies.
    DiagonalOnly,
    /// The identity — reduces DLG to DLO exactly (useful as a consistency
    /// check and as the ablation baseline).
    Identity,
    /// The paper's Ψ with per-satellite variance factors from the
    /// elevation angle: `Ψᵢⱼ = w₁ρ₁² + δᵢⱼ·wᵢ₊₁ρᵢ₊₁²` where
    /// `wᵢ = 1 + (1/sin(elᵢ) − 1)` models the elevation-dependent error
    /// budget (atmosphere and multipath grow toward the horizon). A
    /// beyond-the-paper refinement: Theorem 4.2's derivation assumes equal
    /// variances (eq. 4-14); real budgets are not equal, and this variant
    /// feeds that structure to the GLS estimator. Measurements without
    /// elevation annotations get weight 1.
    ElevationScaled,
}

/// How DLG applies the inverse covariance `Ψ⁻¹` — the subject of the
/// structured-vs-dense sweep in the `ablation_gls_cov` benchmark.
///
/// Every [`CovarianceModel`] is rank-one-plus-diagonal
/// (`Ψ = ρ₁²·𝟙𝟙ᵀ + D`; the diagonal-only models just have a zero
/// rank-one weight), so the structured path applies to all of them. The
/// three variants are algebraically identical — they differ only in how
/// much arithmetic they spend per fix (`O(m)` vs `O(m³)`): solutions
/// agree to ULP-level rounding, and degenerate inputs produce the same
/// [`SolveError`] variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub enum GlsPath {
    /// Exploit the rank-one-plus-diagonal structure of Ψ via the
    /// Sherman–Morrison identity (`gps_linalg::lstsq::gls_rank1_into`):
    /// `O(m)` flops and scratch, no m×m matrix ever materialized or
    /// factored. The default — this is the paper's §6 "optimize the
    /// matrix operations" extension taken to its conclusion.
    #[default]
    Structured,
    /// Materialize the dense Ψ and whiten through its Cholesky factor
    /// (`O(m³)`). The pre-structured hot path, kept as the ablation
    /// baseline.
    DenseWhitened,
    /// Materialize Ψ **and** its explicit inverse, evaluating eq. 4-21
    /// literally. Strictly more work than whitening; the
    /// faithful-to-the-text ablation reference (allocates per solve, and
    /// always runs on the heap lane).
    DenseExplicit,
}

/// Algorithm **DLG**: Direct Linearization with the General Least Squares
/// method (paper §4.4, 4.5).
///
/// DLG shares [`linearize`] with [`crate::Dlo`] but replaces OLS with GLS
/// (eq. 4-21):
///
/// `Xᵉ = (Aᵀ M⁻¹ A)⁻¹ Aᵀ M⁻¹ Dᵉ`
///
/// where `M = cov(Δβ)` (eq. 4-22). The need for GLS is the paper's
/// Theorem 4.1: subtracting the base equation injects the *same* base
/// error into every differenced equation, so the right-hand-side errors
/// are correlated (`cov(Δβᵢ, Δβⱼ) = ½σ²ρ₁² ≠ 0`) and the OLS optimality
/// condition (3-35) fails. Theorem 4.2 shows the covariance (eq. 4-25/4-26)
///
/// `Ψᵢⱼ = ρ₁² + δᵢⱼ·ρᵢ₊₁²`
///
/// is positive definite, so GLS with `M ∝ Ψ` is optimal. The true ranges
/// `ρᵢ` in Ψ are unknown; following the paper's own construction the
/// clock-corrected measured pseudoranges `ρᴱᵢ` stand in for them (the
/// relative error of that substitution is ~10⁻⁶).
///
/// # Example
///
/// ```
/// use gps_core::{Dlg, Measurement, PositionSolver};
/// use gps_geodesy::Ecef;
///
/// # fn main() -> Result<(), gps_core::SolveError> {
/// let truth = Ecef::new(6.37e6, 1.0e4, -3.0e4);
/// let sats = [
///     Ecef::new(2.0e7, 0.0, 1.7e7),
///     Ecef::new(1.5e7, 1.8e7, 0.9e7),
///     Ecef::new(1.6e7, -1.7e7, 1.0e7),
///     Ecef::new(2.5e7, 0.4e7, -0.6e7),
///     Ecef::new(0.8e7, 1.4e7, 2.0e7),
/// ];
/// let meas: Vec<Measurement> = sats
///     .iter()
///     .map(|&s| Measurement::new(s, s.distance_to(truth)))
///     .collect();
/// let fix = Dlg::default().solve(&meas, 0.0)?;
/// assert!(fix.position.distance_to(truth) < 1e-3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Dlg {
    base: BaseSelection,
    covariance: CovarianceModel,
    gls: GlsPath,
}

impl Dlg {
    /// Creates a DLG solver with the paper's defaults (first-satellite
    /// base, full Ψ covariance) on the structured `O(m)` GLS path.
    #[must_use]
    pub fn new() -> Self {
        Dlg::default()
    }

    /// Sets the base-satellite selection strategy.
    #[must_use]
    pub fn with_base_selection(mut self, base: BaseSelection) -> Self {
        self.base = base;
        self
    }

    /// Sets the covariance structure (ablation hook; the paper's algorithm
    /// is [`CovarianceModel::Full`]).
    #[must_use]
    pub fn with_covariance_model(mut self, covariance: CovarianceModel) -> Self {
        self.covariance = covariance;
        self
    }

    /// The configured covariance model.
    #[must_use]
    pub fn covariance_model(&self) -> CovarianceModel {
        self.covariance
    }

    /// Sets how the inverse covariance is applied (ablation hook; the
    /// default [`GlsPath::Structured`] is the fast path, the dense
    /// variants are kept as baselines).
    #[must_use]
    pub fn with_gls_path(mut self, gls: GlsPath) -> Self {
        self.gls = gls;
        self
    }

    /// The configured GLS application path.
    #[must_use]
    pub fn gls_path(&self) -> GlsPath {
        self.gls
    }

    /// Builds the covariance matrix `M ∝ Ψ` of eq. 4-26 for a linearized
    /// system (step 3 of the paper's DLG pseudo-code).
    ///
    /// Exposed for the GLS-covariance ablation and for tests.
    #[must_use]
    pub fn covariance_matrix(&self, sys: &LinearSystem) -> Matrix {
        let mut out = Matrix::default();
        self.covariance_into(
            &sys.corrected_ranges,
            &sys.elevations,
            sys.base_index,
            &mut out,
        );
        out
    }

    /// [`Dlg::covariance_matrix`] with a caller-provided buffer: fills
    /// `out` in place without intermediate allocations (the
    /// [`crate::SolveContext`] hot path; also the zero-allocation arm of
    /// the linalg-path ablation bench).
    // lint: no_alloc
    pub fn covariance_matrix_into(&self, sys: &LinearSystem, out: &mut Matrix) {
        self.covariance_into(&sys.corrected_ranges, &sys.elevations, sys.base_index, out);
    }

    /// Core of [`Dlg::covariance_matrix_into`], operating on the raw
    /// linearization buffers. Row/column `r` corresponds to input
    /// measurement `r` when `r < base_index`, else `r + 1` (the base row
    /// is differenced away).
    // lint: no_alloc
    pub(crate) fn covariance_into(
        &self,
        corrected_ranges: &[f64],
        elevations: &[Option<f64>],
        base_index: usize,
        out: &mut Matrix,
    ) {
        let m = corrected_ranges.len();
        let rho1 = corrected_ranges[base_index];
        let rho1_sq = rho1 * rho1;
        // Scale Ψ by the squared mean range: GLS is scale-invariant, and
        // normalizing keeps the Cholesky well inside f64 range (raw
        // entries would be ~10¹⁴).
        let scale = 1.0 / rho1_sq.max(1.0);
        let rho1_scaled = rho1_sq * scale;
        // Diagonal term for differenced row r, from the original input.
        let other = |r: usize| {
            let j = if r < base_index { r } else { r + 1 };
            corrected_ranges[j] * corrected_ranges[j] * scale
        };
        out.resize_zeroed(m - 1, m - 1);
        match self.covariance {
            CovarianceModel::Full => {
                for r in 0..m - 1 {
                    let diag = rho1_scaled + other(r);
                    let row = out.row_mut(r);
                    for (c, entry) in row.iter_mut().enumerate() {
                        *entry = if r == c { diag } else { rho1_scaled };
                    }
                }
            }
            CovarianceModel::DiagonalOnly => {
                for r in 0..m - 1 {
                    out.row_mut(r)[r] = rho1_scaled + other(r);
                }
            }
            CovarianceModel::Identity => {
                for r in 0..m - 1 {
                    out.row_mut(r)[r] = 1.0;
                }
            }
            CovarianceModel::ElevationScaled => {
                // Per-satellite variance weight from the elevation budget
                // (same 1/sin(el) shape as the receiver-noise model).
                let weight = |el: Option<f64>| {
                    el.map_or(1.0, |e: f64| {
                        let clamped = e.clamp(3.0f64.to_radians(), std::f64::consts::FRAC_PI_2);
                        1.0 / clamped.sin()
                    })
                };
                let w1 = weight(elevations[base_index]);
                for r in 0..m - 1 {
                    let j = if r < base_index { r } else { r + 1 };
                    let diag = w1 * rho1_scaled + weight(elevations[j]) * other(r);
                    let row = out.row_mut(r);
                    for (c, entry) in row.iter_mut().enumerate() {
                        *entry = if r == c { diag } else { w1 * rho1_scaled };
                    }
                }
            }
        }
    }

    /// The structured decomposition of the covariance:
    /// `Ψ = rank1·𝟙𝟙ᵀ + diag(d)`, returned as the rank-one weight plus
    /// the diagonal vector — the `(ρ₁², diag)` pair the Sherman–Morrison
    /// GLS kernel consumes directly, skipping the `O(m²)` matrix fill.
    ///
    /// Every [`CovarianceModel`] fits this shape (the diagonal-only models
    /// have `rank1 = 0`), and `rank1 + dᵣ` / `rank1` reproduce exactly the
    /// entries [`Dlg::covariance_matrix`] would write. Exposed for the
    /// GLS-path ablation and for tests.
    #[must_use]
    pub fn covariance_rank1(&self, sys: &LinearSystem) -> (f64, Vec<f64>) {
        let mut diag = vec![0.0; sys.corrected_ranges.len() - 1];
        let rank1 = self.covariance_rank1_into(
            &sys.corrected_ranges,
            &sys.elevations,
            sys.base_index,
            &mut diag,
        );
        (rank1, diag)
    }

    /// Core of [`Dlg::covariance_rank1`], operating on the raw
    /// linearization buffers: fills `diag` (length `m − 1`, row order as
    /// in [`Dlg::covariance_into`]) and returns the rank-one weight.
    /// Shared verbatim by the heap and stack lanes, so the two compute
    /// bit-identical decompositions.
    // lint: no_alloc
    pub(crate) fn covariance_rank1_into(
        &self,
        corrected_ranges: &[f64],
        elevations: &[Option<f64>],
        base_index: usize,
        diag: &mut [f64],
    ) -> f64 {
        let m = corrected_ranges.len();
        debug_assert_eq!(
            diag.len(),
            m - 1,
            "diag must hold one entry per differenced row"
        );
        let rho1 = corrected_ranges[base_index];
        let rho1_sq = rho1 * rho1;
        // Scale Ψ by the squared mean range: GLS is scale-invariant, and
        // normalizing keeps the arithmetic well inside f64 range (raw
        // entries would be ~10¹⁴).
        let scale = 1.0 / rho1_sq.max(1.0);
        let rho1_scaled = rho1_sq * scale;
        // Diagonal term for differenced row r, from the original input.
        let other = |r: usize| {
            let j = if r < base_index { r } else { r + 1 };
            corrected_ranges[j] * corrected_ranges[j] * scale
        };
        match self.covariance {
            CovarianceModel::Full => {
                for (r, d) in diag.iter_mut().enumerate() {
                    *d = other(r);
                }
                rho1_scaled
            }
            CovarianceModel::DiagonalOnly => {
                for (r, d) in diag.iter_mut().enumerate() {
                    *d = rho1_scaled + other(r);
                }
                0.0
            }
            CovarianceModel::Identity => {
                diag.fill(1.0);
                0.0
            }
            CovarianceModel::ElevationScaled => {
                // Per-satellite variance weight from the elevation budget
                // (same 1/sin(el) shape as the receiver-noise model).
                let weight = |el: Option<f64>| {
                    el.map_or(1.0, |e: f64| {
                        let clamped = e.clamp(3.0f64.to_radians(), std::f64::consts::FRAC_PI_2);
                        1.0 / clamped.sin()
                    })
                };
                let w1 = weight(elevations[base_index]);
                for (r, d) in diag.iter_mut().enumerate() {
                    let j = if r < base_index { r } else { r + 1 };
                    *d = weight(elevations[j]) * other(r);
                }
                w1 * rho1_scaled
            }
        }
    }

    /// Stack mirror of [`Dlg::covariance_into`]: same entry formulas and
    /// fill order on an [`SMat`] with `m − 1` active rows.
    // lint: no_alloc
    fn covariance_stack(
        &self,
        corrected_ranges: &[f64],
        elevations: &[Option<f64>],
        base_index: usize,
    ) -> SMat<STACK_M_CAP, STACK_M_CAP> {
        let m = corrected_ranges.len();
        let rho1 = corrected_ranges[base_index];
        let rho1_sq = rho1 * rho1;
        // Scale Ψ by the squared mean range: GLS is scale-invariant, and
        // normalizing keeps the Cholesky well inside f64 range (raw
        // entries would be ~10¹⁴).
        let scale = 1.0 / rho1_sq.max(1.0);
        let rho1_scaled = rho1_sq * scale;
        // Diagonal term for differenced row r, from the original input.
        let other = |r: usize| {
            let j = if r < base_index { r } else { r + 1 };
            corrected_ranges[j] * corrected_ranges[j] * scale
        };
        let mut out = SMat::zeroed(m - 1);
        match self.covariance {
            CovarianceModel::Full => {
                for r in 0..m - 1 {
                    let diag = rho1_scaled + other(r);
                    let row = out.row_mut(r);
                    for (c, entry) in row[..m - 1].iter_mut().enumerate() {
                        *entry = if r == c { diag } else { rho1_scaled };
                    }
                }
            }
            CovarianceModel::DiagonalOnly => {
                for r in 0..m - 1 {
                    out.row_mut(r)[r] = rho1_scaled + other(r);
                }
            }
            CovarianceModel::Identity => {
                for r in 0..m - 1 {
                    out.row_mut(r)[r] = 1.0;
                }
            }
            CovarianceModel::ElevationScaled => {
                // Per-satellite variance weight from the elevation budget
                // (same 1/sin(el) shape as the receiver-noise model).
                let weight = |el: Option<f64>| {
                    el.map_or(1.0, |e: f64| {
                        let clamped = e.clamp(3.0f64.to_radians(), std::f64::consts::FRAC_PI_2);
                        1.0 / clamped.sin()
                    })
                };
                let w1 = weight(elevations[base_index]);
                for r in 0..m - 1 {
                    let j = if r < base_index { r } else { r + 1 };
                    let diag = w1 * rho1_scaled + weight(elevations[j]) * other(r);
                    let row = out.row_mut(r);
                    for (c, entry) in row[..m - 1].iter_mut().enumerate() {
                        *entry = if r == c { diag } else { w1 * rho1_scaled };
                    }
                }
            }
        }
        out
    }

    /// Stack-kernel fast lane: linearize, decompose (or build) Ψ, and
    /// solve with every intermediate on the stack. Bit-identical to the
    /// heap lane. [`GlsPath::DenseExplicit`] never routes here (it is an
    /// allocating ablation reference; the dispatch in [`crate::Solver`]
    /// keeps it on the heap lane).
    // lint: no_alloc
    fn solve_stack(&self, epoch: &crate::Epoch<'_>) -> Result<Solution, SolveError> {
        let m = epoch.len();
        let sys = crate::dlo::linearize_stack(
            epoch.measurements,
            epoch.predicted_receiver_bias_m,
            self.base,
        )?;
        let step = match self.gls {
            GlsPath::Structured => {
                let mut diag = [0.0f64; STACK_M_CAP];
                let rank1 = self.covariance_rank1_into(
                    &sys.corrected[..m],
                    &sys.elevations[..m],
                    sys.base_index,
                    &mut diag[..m - 1],
                );
                stack::gls3_rank1(&sys.a, &sys.d, rank1, &diag[..m - 1])?
            }
            GlsPath::DenseWhitened | GlsPath::DenseExplicit => {
                let mut cov = self.covariance_stack(
                    &sys.corrected[..m],
                    &sys.elevations[..m],
                    sys.base_index,
                );
                stack::gls3(&sys.a, &sys.d, &mut cov)?
            }
        };
        let position = Ecef::new(step[0], step[1], step[2]);
        let rms = crate::dlo::residual_rms_scaled_stack(
            &sys.a,
            &sys.d,
            &sys.corrected[..m],
            sys.base_index,
            position,
        );
        instrument::dlg_solves().inc();
        Ok(Solution::new(position, None, 1, rms))
    }
}

// Implemented without importing `Solver`, so `.solve(&meas, bias)` in
// this module (and in `use super::*` tests) still resolves through
// `PositionSolver` unambiguously.
impl crate::Solver for Dlg {
    // lint: no_alloc
    fn solve(
        &self,
        epoch: &crate::Epoch<'_>,
        ctx: &mut crate::SolveContext,
    ) -> Result<Solution, SolveError> {
        // DenseExplicit is the allocating faithful-to-the-text ablation
        // reference; it has no stack mirror and always runs the heap lane.
        if crate::solver::stack_lane(ctx, epoch.len()) && self.gls != GlsPath::DenseExplicit {
            return self.solve_stack(epoch);
        }
        let base_index = crate::dlo::linearize_into(
            epoch.measurements,
            epoch.predicted_receiver_bias_m,
            self.base,
            &mut ctx.geometry,
            &mut ctx.rhs,
            &mut ctx.corrected_ranges,
            &mut ctx.elevations,
        )?;
        // Covariance-assembly time and the design-matrix condition number
        // both cost more to observe than DLG costs to run; gate them.
        let detail = gps_telemetry::detail();
        match self.gls {
            GlsPath::Structured => {
                // The structured lane never assembles Ψ: the O(m²) fill
                // (and the core.dlg.cov_assembly_us metric that timed it)
                // is dense-lane-only now.
                let m = ctx.corrected_ranges.len();
                ctx.cov_diag.clear();
                ctx.cov_diag.resize(m - 1, 0.0);
                let rank1 = self.covariance_rank1_into(
                    &ctx.corrected_ranges,
                    &ctx.elevations,
                    base_index,
                    &mut ctx.cov_diag,
                );
                lstsq::gls_rank1_into(
                    &ctx.geometry,
                    &ctx.rhs,
                    rank1,
                    &ctx.cov_diag,
                    &mut ctx.lstsq,
                    &mut ctx.step,
                )?;
            }
            GlsPath::DenseWhitened | GlsPath::DenseExplicit => {
                if detail {
                    let start = std::time::Instant::now();
                    self.covariance_into(
                        &ctx.corrected_ranges,
                        &ctx.elevations,
                        base_index,
                        &mut ctx.covariance,
                    );
                    instrument::dlg_cov_assembly().record(start.elapsed().as_secs_f64() * 1e6);
                } else {
                    self.covariance_into(
                        &ctx.corrected_ranges,
                        &ctx.elevations,
                        base_index,
                        &mut ctx.covariance,
                    );
                }
                let strategy = if self.gls == GlsPath::DenseWhitened {
                    GlsStrategy::Whitened
                } else {
                    GlsStrategy::ExplicitInverse
                };
                lstsq::gls_into(
                    &ctx.geometry,
                    &ctx.rhs,
                    &ctx.covariance,
                    strategy,
                    &mut ctx.lstsq,
                    &mut ctx.step,
                )?;
            }
        }
        let position = Ecef::new(ctx.step[0], ctx.step[1], ctx.step[2]);
        let rms = crate::dlo::residual_rms_scaled(
            &ctx.geometry,
            &ctx.rhs,
            &ctx.corrected_ranges,
            base_index,
            position,
        );
        instrument::dlg_solves().inc();
        if detail {
            if let Some(kappa) = instrument::design_condition_number(&ctx.geometry) {
                instrument::dlg_condition().record(kappa);
                if gps_telemetry::enabled(Level::Debug) {
                    Event::new(Level::Debug, "core.dlg", "solved")
                        .with("condition_number", kappa)
                        .with("base_index", base_index)
                        .with("residual_rms_m", rms)
                        .emit();
                }
            }
        }
        Ok(Solution::new(position, None, 1, rms))
    }

    fn name(&self) -> &'static str {
        "DLG"
    }

    fn min_satellites(&self) -> usize {
        4
    }

    fn clone_box(&self) -> Box<dyn crate::Solver> {
        Box::new(*self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dlo::linearize;
    use crate::{Dlo, Measurement, PositionSolver};

    fn sats() -> Vec<Ecef> {
        vec![
            Ecef::new(2.0e7, 0.0, 1.7e7),
            Ecef::new(1.5e7, 1.8e7, 0.9e7),
            Ecef::new(1.6e7, -1.7e7, 1.0e7),
            Ecef::new(2.5e7, 0.4e7, -0.6e7),
            Ecef::new(1.9e7, 0.9e7, 1.6e7),
            Ecef::new(0.8e7, 1.4e7, 2.0e7),
            Ecef::new(1.2e7, -0.4e7, 2.2e7),
            Ecef::new(2.2e7, 1.2e7, 0.2e7),
        ]
    }

    fn exact(truth: Ecef, bias: f64, n: usize) -> Vec<Measurement> {
        sats()
            .into_iter()
            .take(n)
            .map(|s| Measurement::new(s, s.distance_to(truth) + bias))
            .collect()
    }

    #[test]
    fn exact_recovery_all_counts() {
        let truth = Ecef::new(6.371e6, -3.0e5, 1.0e5);
        for n in 4..=8 {
            let fix = Dlg::new().solve(&exact(truth, 0.0, n), 0.0).unwrap();
            assert!(
                fix.position.distance_to(truth) < 1e-2,
                "n={n}: err {}",
                fix.position.distance_to(truth)
            );
        }
    }

    #[test]
    fn identity_covariance_reduces_to_dlo() {
        let truth = Ecef::new(6.371e6, 0.0, 0.0);
        let mut meas = exact(truth, 0.0, 7);
        // Make the system inconsistent so the estimators actually differ.
        meas[1].pseudorange += 4.0;
        meas[5].pseudorange -= 6.0;
        let dlo = Dlo::new().solve(&meas, 0.0).unwrap();
        let dlg_id = Dlg::new()
            .with_covariance_model(CovarianceModel::Identity)
            .solve(&meas, 0.0)
            .unwrap();
        assert!(
            dlg_id.position.distance_to(dlo.position) < 1e-6,
            "differ by {}",
            dlg_id.position.distance_to(dlo.position)
        );
        // Full covariance gives a *different* estimate on inconsistent data.
        let dlg_full = Dlg::new().solve(&meas, 0.0).unwrap();
        assert!(dlg_full.position.distance_to(dlo.position) > 1e-6);
    }

    #[test]
    fn covariance_matrix_structure() {
        let truth = Ecef::new(6.371e6, 0.0, 0.0);
        let meas = exact(truth, 0.0, 5);
        let sys = linearize(&meas, 0.0, BaseSelection::First).unwrap();
        let dlg = Dlg::new();
        let cov = dlg.covariance_matrix(&sys);
        assert_eq!(cov.shape(), (4, 4));
        // All off-diagonals identical (= scaled ρ₁²), diagonals strictly
        // larger.
        let off = cov[(0, 1)];
        for r in 0..4 {
            for c in 0..4 {
                if r == c {
                    assert!(cov[(r, c)] > off);
                } else {
                    assert!((cov[(r, c)] - off).abs() < 1e-12);
                }
            }
        }
        assert!(cov.is_symmetric(1e-12));
        // And positive definite, per Theorem 4.2.
        assert!(gps_linalg::Cholesky::new(&cov).is_ok());
    }

    #[test]
    fn diagonal_model_zeroes_off_diagonals() {
        let truth = Ecef::new(6.371e6, 0.0, 0.0);
        let meas = exact(truth, 0.0, 5);
        let sys = linearize(&meas, 0.0, BaseSelection::First).unwrap();
        let cov = Dlg::new()
            .with_covariance_model(CovarianceModel::DiagonalOnly)
            .covariance_matrix(&sys);
        assert_eq!(cov[(0, 1)], 0.0);
        assert!(cov[(0, 0)] > 0.0);
    }

    #[test]
    fn elevation_scaled_covariance_is_spd_and_solves() {
        let truth = Ecef::new(6.371e6, 0.0, 0.0);
        let meas: Vec<Measurement> = exact(truth, 0.0, 7)
            .into_iter()
            .enumerate()
            .map(|(k, m)| m.with_elevation(0.15 + 0.12 * k as f64))
            .collect();
        let dlg = Dlg::new().with_covariance_model(CovarianceModel::ElevationScaled);
        let sys = linearize(&meas, 0.0, BaseSelection::First).unwrap();
        let cov = dlg.covariance_matrix(&sys);
        assert!(cov.is_symmetric(1e-12));
        assert!(gps_linalg::Cholesky::new(&cov).is_ok());
        // Lower-elevation satellites get larger variances.
        assert!(cov[(0, 0)] - cov[(0, 1)] > cov[(5, 5)] - cov[(5, 0)]);
        // Exact data still recovers exactly.
        let fix = dlg.solve(&meas, 0.0).unwrap();
        assert!(fix.position.distance_to(truth) < 1e-2);
    }

    #[test]
    fn elevation_scaled_without_annotations_matches_full() {
        let truth = Ecef::new(6.371e6, 1.0e5, 0.0);
        let mut meas = exact(truth, 0.0, 6); // no elevations
        meas[2].pseudorange += 3.0;
        let full = Dlg::new().solve(&meas, 0.0).unwrap();
        let scaled = Dlg::new()
            .with_covariance_model(CovarianceModel::ElevationScaled)
            .solve(&meas, 0.0)
            .unwrap();
        // All weights collapse to 1 → same covariance up to the identical
        // structure, hence the same solution.
        assert!(full.position.distance_to(scaled.position) < 1e-6);
    }

    #[test]
    fn bias_prediction_applied() {
        let truth = Ecef::new(3.6e6, -5.2e6, 6.0e5);
        let bias = -275.0;
        let meas = exact(truth, bias, 6);
        let fix = Dlg::new().solve(&meas, bias).unwrap();
        assert!(fix.position.distance_to(truth) < 1e-2);
    }

    #[test]
    fn gls_beats_ols_under_correlated_noise() {
        // Monte-Carlo check of Theorem 4.2: with errors matching the
        // paper's model (independent per-satellite pseudorange errors,
        // which become *correlated* after differencing), DLG's RMS
        // position error must not exceed DLO's.
        let truth = Ecef::new(6.371e6, 1.0e5, -2.0e5);
        let base = exact(truth, 0.0, 8);
        let mut rms_dlo = 0.0;
        let mut rms_dlg = 0.0;
        let mut state = 0x1234_5678_u64;
        let mut next = || {
            // xorshift for a cheap deterministic pseudo-gaussian (sum of 12
            // uniforms − 6).
            let mut s = 0.0;
            for _ in 0..12 {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                s += (state >> 11) as f64 / (1u64 << 53) as f64;
            }
            s - 6.0
        };
        let trials = 400;
        for _ in 0..trials {
            let noisy: Vec<Measurement> = base
                .iter()
                .map(|m| Measurement::new(m.position, m.pseudorange + 3.0 * next()))
                .collect();
            let dlo = Dlo::new().solve(&noisy, 0.0).unwrap();
            let dlg = Dlg::new().solve(&noisy, 0.0).unwrap();
            rms_dlo += dlo.position.distance_to(truth).powi(2);
            rms_dlg += dlg.position.distance_to(truth).powi(2);
        }
        rms_dlo = (rms_dlo / f64::from(trials)).sqrt();
        rms_dlg = (rms_dlg / f64::from(trials)).sqrt();
        assert!(
            rms_dlg <= rms_dlo * 1.02,
            "DLG {rms_dlg} should not exceed DLO {rms_dlo}"
        );
    }

    #[test]
    fn rejects_too_few() {
        let truth = Ecef::new(6.371e6, 0.0, 0.0);
        assert_eq!(
            Dlg::new().solve(&exact(truth, 0.0, 3), 0.0).unwrap_err(),
            SolveError::TooFewSatellites { got: 3, need: 4 }
        );
    }

    #[test]
    fn trait_metadata() {
        let dlg = Dlg::new();
        assert_eq!(dlg.name(), "DLG");
        assert_eq!(dlg.min_satellites(), 4);
        assert_eq!(dlg.covariance_model(), CovarianceModel::Full);
        assert_eq!(dlg.gls_path(), GlsPath::Structured);
        assert_eq!(
            dlg.with_gls_path(GlsPath::DenseExplicit).gls_path(),
            GlsPath::DenseExplicit
        );
    }

    /// Noisy (inconsistent) measurements so the GLS paths actually have
    /// residual structure to disagree on.
    fn noisy(truth: Ecef, n: usize) -> Vec<Measurement> {
        let mut meas = exact(truth, 13.0, n);
        for (k, m) in meas.iter_mut().enumerate() {
            // Deterministic ±few-metre perturbation, different per row.
            m.pseudorange += ((k * 7 + 3) % 11) as f64 - 5.0;
        }
        meas
    }

    #[test]
    fn structured_path_matches_dense_paths_all_models() {
        let truth = Ecef::new(6.371e6, -2.0e5, 3.0e5);
        for model in [
            CovarianceModel::Full,
            CovarianceModel::DiagonalOnly,
            CovarianceModel::Identity,
            CovarianceModel::ElevationScaled,
        ] {
            let meas = noisy(truth, 8);
            let fix = |path: GlsPath| {
                Dlg::new()
                    .with_covariance_model(model)
                    .with_gls_path(path)
                    .solve(&meas, 0.0)
                    .unwrap()
            };
            let structured = fix(GlsPath::Structured);
            let whitened = fix(GlsPath::DenseWhitened);
            let explicit = fix(GlsPath::DenseExplicit);
            // Sherman–Morrison is algebraically exact; only association
            // order differs, so agreement is at far-sub-micrometre level.
            for dense in [&whitened, &explicit] {
                assert!(
                    structured.position.distance_to(dense.position) < 1e-6,
                    "{model:?}: paths diverged by {}",
                    structured.position.distance_to(dense.position)
                );
            }
            assert!((structured.residual_rms - whitened.residual_rms).abs() < 1e-9);
        }
    }

    #[test]
    fn covariance_rank1_reconstructs_dense_matrix_bitwise() {
        let truth = Ecef::new(6.371e6, 1.0e5, -2.0e5);
        let meas = noisy(truth, 8);
        for model in [
            CovarianceModel::Full,
            CovarianceModel::DiagonalOnly,
            CovarianceModel::Identity,
            CovarianceModel::ElevationScaled,
        ] {
            let dlg = Dlg::new().with_covariance_model(model);
            let sys = linearize(&meas, 0.0, dlg.base).unwrap();
            let dense = dlg.covariance_matrix(&sys);
            let (rank1, diag) = dlg.covariance_rank1(&sys);
            let m1 = meas.len() - 1;
            assert_eq!(diag.len(), m1);
            for r in 0..m1 {
                for c in 0..m1 {
                    let rebuilt = if r == c { rank1 + diag[r] } else { rank1 };
                    assert_eq!(
                        dense[(r, c)].to_bits(),
                        rebuilt.to_bits(),
                        "{model:?}: entry ({r},{c}) mismatch"
                    );
                }
            }
        }
    }

    #[test]
    fn structured_and_dense_error_identically_on_degenerate_ranges() {
        // Zero corrected ranges give zero covariance diagonal entries.
        // One zero leaves Ψ (barely) positive definite through the
        // rank-one term, but two make it genuinely singular: both lanes
        // must reject with the same degenerate-geometry taxonomy (the
        // dense Cholesky via NotPositiveDefinite, the structured lane via
        // its d ≤ 0 guard), not silently divide by zero.
        let truth = Ecef::new(6.371e6, 0.0, 0.0);
        let mut meas = exact(truth, 0.0, 6);
        meas[3].pseudorange = 0.0;
        meas[4].pseudorange = 0.0;
        for path in [GlsPath::Structured, GlsPath::DenseWhitened] {
            let err = Dlg::new().with_gls_path(path).solve(&meas, 0.0);
            assert!(
                matches!(err, Err(SolveError::DegenerateGeometry(_))),
                "{path:?}: expected degenerate-covariance rejection, got {err:?}"
            );
        }
    }
}
