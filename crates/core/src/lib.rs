//! GPS positioning algorithms — the primary contribution of
//! *Design and Analysis of a New GPS Algorithm* (ICDCS 2010).
//!
//! Given one epoch of satellite positions and pseudoranges
//! ([`Measurement`]), four solvers estimate the receiver position:
//!
//! * [`NewtonRaphson`] — the classic iterative baseline (paper §3.4):
//!   linearizes the pseudorange equations by first-order Taylor expansion
//!   around the current estimate, solves each step by **OLS**, and treats
//!   the receiver clock error `εᴿ` as a fourth unknown.
//! * [`Dlo`] — **D**irect **L**inearization + **O**LS (paper §4.3, 4.5):
//!   predicts `εᴿ` externally (eq. 4-1), removes the quadratic terms by
//!   subtracting a base equation from the rest (eq. 4-7/4-8), and solves
//!   the resulting `(m−1)×3` *linear* system in closed form by OLS
//!   (eq. 4-12). No iteration.
//! * [`Dlg`] — Direct Linearization + **G**LS (paper §4.4, 4.5): identical
//!   linearization, but uses general least squares with the correlated
//!   covariance `Ψᵢⱼ = ρ₁² + δᵢⱼ·ρᵢ₊₁²` (eq. 4-21/4-26), which Theorem 4.2
//!   shows is the optimal estimator for the differenced system.
//! * [`Bancroft`] — the classical algebraic closed-form solution
//!   (related work \[2\]), included as a second baseline.
//!
//! Supporting types: [`Solution`], [`SolveError`], [`BaseSelection`]
//! (the §6 "good satellite" extension), [`metrics`] (the paper's
//! evaluation metrics, eq. 5-1/5-2/5-3) and [`Dop`] (geometry quality).
//!
//! # Example
//!
//! ```
//! use gps_core::{Dlo, Measurement, PositionSolver};
//! use gps_geodesy::Ecef;
//!
//! # fn main() -> Result<(), gps_core::SolveError> {
//! // Four satellites at known positions, receiver at the origin-ish
//! // point `truth`, error-free pseudoranges:
//! let truth = Ecef::new(1_000.0, 2_000.0, 3_000.0);
//! let sats = [
//!     Ecef::new(2.0e7, 0.0, 1.0e7),
//!     Ecef::new(-1.5e7, 1.2e7, 1.4e7),
//!     Ecef::new(0.5e7, -2.2e7, 1.0e7),
//!     Ecef::new(0.0, 0.8e7, 2.4e7),
//! ];
//! let meas: Vec<Measurement> = sats
//!     .iter()
//!     .map(|&s| Measurement::new(s, s.distance_to(truth)))
//!     .collect();
//! let fix = Dlo::default().solve(&meas, 0.0)?;
//! assert!(fix.position.distance_to(truth) < 1e-3);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

mod bancroft;
mod base;
mod block;
mod dlg;
mod dlo;
mod dop;
mod engine;
mod error;
mod hatch;
mod instrument;
mod kinematic;
mod measurement;
pub mod metrics;
mod nr;
mod parallel;
mod raim;
mod resilient;
pub mod sagnac;
mod service;
mod session;
mod solution;
mod solver;
mod trilateration;
mod velocity;

pub use bancroft::Bancroft;
pub use base::BaseSelection;
pub use block::{EpochBlock, BLOCK_LANES};
pub use dlg::{CovarianceModel, Dlg, GlsPath};
pub use dlo::{linearize, Dlo, LinearSystem};
pub use dop::Dop;
pub use engine::{Engine, Lane, LaneStats};
pub use error::SolveError;
pub use hatch::HatchFilter;
pub use kinematic::PvFilter;
pub use measurement::Measurement;
pub use nr::{NewtonRaphson, Weighting};
pub use parallel::{EpochJob, ParallelEngine, ParallelRun, WorkerLanes, WorkerReport};
pub use raim::{Raim, RaimSolution};
pub use resilient::{FixQuality, ResilientFix, ResilientSolver, ValidationGates};
pub use service::{
    fleet_digest, replay_journal, ChaosOp, Disposition, EpochOutcome, IngestResult,
    PositioningService, ReplayReport, RoundResult, ServiceConfig, SessionEpoch,
};
pub use session::Session;
pub use solution::Solution;
pub use solver::{Epoch, SolveContext, Solver};
pub use trilateration::{trilaterate3, TrilaterationRoots};
pub use velocity::{solve_velocity, RateMeasurement, VelocitySolution};

/// Common interface over the positioning algorithms, so harnesses and
/// benches can sweep `{NR, DLO, DLG, Bancroft}` uniformly.
///
/// This is the *simple* API: every call allocates its own scratch
/// buffers. It is derived automatically (via a blanket impl) from the
/// hot-path [`Solver`] trait, which threads a reusable [`SolveContext`]
/// instead — implement `Solver` once and both interfaces work.
pub trait PositionSolver {
    /// Estimates the receiver position from one epoch of measurements.
    ///
    /// `predicted_receiver_bias_m` is the externally predicted receiver
    /// range bias `ε̂ᴿ = c·Δt̂` in metres (paper eq. 4-4):
    ///
    /// * [`Dlo`]/[`Dlg`] subtract it from every pseudorange (eq. 4-1) —
    ///   their accuracy depends on its quality;
    /// * [`NewtonRaphson`] and [`Bancroft`] estimate the bias themselves
    ///   and only use the hint as an initial guess (NR) or ignore it.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError`] if there are too few satellites, the
    /// geometry is degenerate, the input is non-finite, or (NR only) the
    /// iteration fails to converge.
    fn solve(
        &self,
        measurements: &[Measurement],
        predicted_receiver_bias_m: f64,
    ) -> Result<Solution, SolveError>;

    /// Short algorithm name for reports ("NR", "DLO", "DLG", "Bancroft").
    fn name(&self) -> &'static str;

    /// The minimum number of satellites this algorithm needs.
    fn min_satellites(&self) -> usize;
}
