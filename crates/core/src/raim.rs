//! Receiver Autonomous Integrity Monitoring (RAIM).
//!
//! The paper's error model assumes well-behaved zero-mean errors
//! (eq. 4-14/4-15); a real receiver must also survive the occasional
//! *faulted* measurement (a satellite clock anomaly, a cycle slip, a
//! decoding error) that violates the model by tens or thousands of
//! metres. RAIM closes that gap: with `m ≥ 5` satellites the solution is
//! redundant, so the post-fit residuals expose an inconsistent
//! measurement, and with `m ≥ 6` the faulty satellite can be identified
//! and excluded.
//!
//! [`Raim`] wraps any [`Solver`] with the classic
//! residual-testing fault detection and exclusion (FDE) loop:
//!
//! 1. solve with all satellites, compute the residual RMS;
//! 2. if it exceeds the detection threshold, re-solve `m` times leaving
//!    one satellite out, and adopt the subset whose residual is smallest;
//! 3. repeat until the test passes or too few satellites remain.

use crate::instrument;
use crate::{Epoch, Measurement, Solution, SolveContext, SolveError, Solver};
use gps_telemetry::{Event, Level};

/// Outcome of a RAIM-protected solve.
#[derive(Debug, Clone, PartialEq)]
pub struct RaimSolution {
    /// The accepted solution.
    pub solution: Solution,
    /// Indices (into the original measurement slice) that were excluded
    /// as faulty. Empty when the first solve already passed.
    pub excluded: Vec<usize>,
    /// Residual RMS of the accepted solve, metres.
    pub residual_rms: f64,
}

/// Residual-testing fault detection and exclusion around an inner solver.
///
/// # Example
///
/// ```
/// use gps_core::{Measurement, NewtonRaphson, Raim};
/// use gps_geodesy::Ecef;
///
/// # fn main() -> Result<(), gps_core::SolveError> {
/// let truth = Ecef::new(6.37e6, 1.0e5, -2.0e5);
/// let sats = [
///     Ecef::new(2.0e7, 0.0, 1.7e7),
///     Ecef::new(1.5e7, 1.8e7, 0.9e7),
///     Ecef::new(1.6e7, -1.7e7, 1.0e7),
///     Ecef::new(2.5e7, 0.4e7, -0.6e7),
///     Ecef::new(1.9e7, 0.9e7, 1.6e7),
///     Ecef::new(0.8e7, 1.4e7, 2.0e7),
/// ];
/// let mut meas: Vec<Measurement> = sats
///     .iter()
///     .map(|&s| Measurement::new(s, s.distance_to(truth)))
///     .collect();
/// meas[3].pseudorange += 500.0; // fault one satellite by half a km
/// let raim = Raim::new(NewtonRaphson::default(), 10.0);
/// let result = raim.solve(&meas, 0.0)?;
/// assert_eq!(result.excluded, vec![3]);
/// assert!(result.solution.position.distance_to(truth) < 1e-2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Raim<S> {
    inner: S,
    /// Residual-RMS detection threshold, metres.
    threshold_m: f64,
    /// Maximum satellites to exclude before giving up.
    max_exclusions: usize,
}

impl<S: Solver> Raim<S> {
    /// Wraps `inner` with a residual-RMS detection threshold (metres).
    ///
    /// A sensible threshold is 3–5× the expected pseudorange noise sigma
    /// (≈ 10 m for the standard single-frequency budget).
    ///
    /// # Panics
    ///
    /// Panics if `threshold_m` is not strictly positive.
    #[must_use]
    pub fn new(inner: S, threshold_m: f64) -> Self {
        assert!(threshold_m > 0.0, "threshold must be positive");
        Raim {
            inner,
            threshold_m,
            max_exclusions: 2,
        }
    }

    /// Sets how many satellites may be excluded before the solve is
    /// declared failed (default 2).
    #[must_use]
    pub fn with_max_exclusions(mut self, max_exclusions: usize) -> Self {
        self.max_exclusions = max_exclusions;
        self
    }

    /// Borrows the inner solver.
    #[must_use]
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Solves with fault detection and exclusion.
    ///
    /// # Errors
    ///
    /// * Any error from the inner solver on the full set.
    /// * [`SolveError::TooFewSatellites`] if exclusion would drop below
    ///   the inner solver's minimum plus one redundancy.
    /// * [`SolveError::IntegrityFault`] if the residual test still fails
    ///   after `max_exclusions` exclusions, or if no leave-one-out subset
    ///   solves (reported with the exclusions made and the residual).
    pub fn solve(
        &self,
        measurements: &[Measurement],
        predicted_receiver_bias_m: f64,
    ) -> Result<RaimSolution, SolveError> {
        let mut ctx = SolveContext::new();
        self.solve_with(
            &Epoch::new(measurements, predicted_receiver_bias_m),
            &mut ctx,
        )
    }

    /// [`Raim::solve`] with a caller-provided [`SolveContext`]: the index
    /// and subset scratch buffers live in `ctx`, so a warm context makes
    /// the no-fault path allocation-free.
    ///
    /// # Errors
    ///
    /// Same contract as [`Raim::solve`].
    pub fn solve_with(
        &self,
        epoch: &Epoch<'_>,
        ctx: &mut SolveContext,
    ) -> Result<RaimSolution, SolveError> {
        // Detach the RAIM scratch from the context so the inner solver can
        // still borrow `ctx` mutably while subsets are staged in it.
        let mut scratch = std::mem::take(&mut ctx.raim);
        let result = self.solve_inner(epoch, ctx, &mut scratch);
        ctx.raim = scratch;
        result
    }

    fn solve_inner(
        &self,
        epoch: &Epoch<'_>,
        ctx: &mut SolveContext,
        scratch: &mut crate::solver::RaimScratch,
    ) -> Result<RaimSolution, SolveError> {
        let measurements = epoch.measurements;
        let bias = epoch.predicted_receiver_bias_m;
        scratch.active.clear();
        scratch.active.extend(0..measurements.len());
        let mut excluded = Vec::new();

        loop {
            let solution = if excluded.is_empty() {
                // No exclusions yet: solve on the caller's slice directly
                // (the empty `excluded` Vec has not allocated either).
                self.inner.solve(epoch, ctx)?
            } else {
                scratch.subset.clear();
                scratch
                    .subset
                    .extend(scratch.active.iter().map(|&i| measurements[i]));
                self.inner.solve(&Epoch::new(&scratch.subset, bias), ctx)?
            };
            if solution.residual_rms <= self.threshold_m {
                return Ok(RaimSolution {
                    solution,
                    excluded,
                    residual_rms: solution.residual_rms,
                });
            }
            // Detection fired. Can we exclude?
            if excluded.len() >= self.max_exclusions {
                return Err(SolveError::IntegrityFault {
                    excluded,
                    residual: solution.residual_rms,
                });
            }
            // Identification needs one satellite of redundancy after
            // removal: m−1 ≥ min+1.
            if scratch.active.len() <= self.inner.min_satellites() + 1 {
                return Err(SolveError::TooFewSatellites {
                    got: scratch.active.len(),
                    need: self.inner.min_satellites() + 2,
                });
            }
            // Leave-one-out: adopt the exclusion with the smallest
            // residual.
            let mut best: Option<(usize, f64)> = None;
            for k in 0..scratch.active.len() {
                scratch.loo.clear();
                scratch.loo.extend(
                    scratch
                        .active
                        .iter()
                        .enumerate()
                        .filter(|(j, _)| *j != k)
                        .map(|(_, &i)| measurements[i]),
                );
                if let Ok(sol) = self.inner.solve(&Epoch::new(&scratch.loo, bias), ctx) {
                    if best.is_none_or(|(_, r)| sol.residual_rms < r) {
                        best = Some((k, sol.residual_rms));
                    }
                }
            }
            match best {
                Some((k, subset_residual)) => {
                    let index = scratch.active.remove(k);
                    excluded.push(index);
                    instrument::raim_exclusions().inc();
                    if gps_telemetry::enabled(Level::Warn) {
                        Event::new(Level::Warn, "core.raim", "excluded satellite")
                            .with("measurement_index", index)
                            .with("full_set_residual_m", solution.residual_rms)
                            .with("subset_residual_m", subset_residual)
                            .with("remaining", scratch.active.len())
                            .emit();
                    }
                }
                None => {
                    // No leave-one-out subset solved: identification is
                    // impossible, so the epoch has no integrity-assured
                    // solution.
                    return Err(SolveError::IntegrityFault {
                        excluded,
                        residual: solution.residual_rms,
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Dlg, NewtonRaphson};
    use gps_geodesy::Ecef;

    fn sats() -> Vec<Ecef> {
        vec![
            Ecef::new(2.0e7, 0.0, 1.7e7),
            Ecef::new(1.5e7, 1.8e7, 0.9e7),
            Ecef::new(1.6e7, -1.7e7, 1.0e7),
            Ecef::new(2.5e7, 0.4e7, -0.6e7),
            Ecef::new(1.9e7, 0.9e7, 1.6e7),
            Ecef::new(0.8e7, 1.4e7, 2.0e7),
            Ecef::new(1.2e7, -0.4e7, 2.2e7),
        ]
    }

    fn truth() -> Ecef {
        Ecef::new(6.371e6, 1.0e5, -2.0e5)
    }

    fn clean_measurements(n: usize) -> Vec<Measurement> {
        sats()
            .into_iter()
            .take(n)
            .map(|s| Measurement::new(s, s.distance_to(truth())))
            .collect()
    }

    #[test]
    fn clean_data_passes_without_exclusion() {
        let raim = Raim::new(NewtonRaphson::default(), 10.0);
        let result = raim.solve(&clean_measurements(6), 0.0).unwrap();
        assert!(result.excluded.is_empty());
        assert!(result.solution.position.distance_to(truth()) < 1e-3);
    }

    #[test]
    fn detects_and_excludes_single_fault() {
        for faulty in 0..6 {
            let mut meas = clean_measurements(6);
            meas[faulty].pseudorange += 800.0;
            let raim = Raim::new(NewtonRaphson::default(), 10.0);
            let result = raim.solve(&meas, 0.0).unwrap();
            assert_eq!(result.excluded, vec![faulty], "fault at {faulty}");
            assert!(result.solution.position.distance_to(truth()) < 1e-2);
        }
    }

    #[test]
    fn excludes_two_faults_when_allowed() {
        let mut meas = clean_measurements(7);
        meas[1].pseudorange += 600.0;
        meas[4].pseudorange -= 900.0;
        let raim = Raim::new(NewtonRaphson::default(), 10.0).with_max_exclusions(2);
        let result = raim.solve(&meas, 0.0).unwrap();
        let mut excluded = result.excluded.clone();
        excluded.sort_unstable();
        assert_eq!(excluded, vec![1, 4]);
        assert!(result.solution.position.distance_to(truth()) < 1e-2);
    }

    #[test]
    fn refuses_to_exclude_beyond_cap() {
        let mut meas = clean_measurements(7);
        meas[0].pseudorange += 500.0;
        meas[2].pseudorange += 700.0;
        meas[5].pseudorange -= 600.0;
        let raim = Raim::new(NewtonRaphson::default(), 10.0).with_max_exclusions(1);
        let err = raim.solve(&meas, 0.0).unwrap_err();
        match err {
            SolveError::IntegrityFault { excluded, residual } => {
                assert_eq!(excluded.len(), 1, "one exclusion spent: {excluded:?}");
                assert!(residual > 10.0, "residual {residual} still above threshold");
            }
            other => panic!("expected IntegrityFault, got {other:?}"),
        }
    }

    #[test]
    fn refuses_exclusion_without_redundancy() {
        // 5 satellites: detection is possible, but exclusion needs 6.
        let mut meas = clean_measurements(5);
        meas[2].pseudorange += 900.0;
        let raim = Raim::new(NewtonRaphson::default(), 10.0);
        let err = raim.solve(&meas, 0.0).unwrap_err();
        assert_eq!(err, SolveError::TooFewSatellites { got: 5, need: 6 });
    }

    #[test]
    fn works_with_direct_solvers_too() {
        let mut meas = clean_measurements(7);
        meas[3].pseudorange += 700.0;
        let raim = Raim::new(Dlg::default(), 10.0);
        let result = raim.solve(&meas, 0.0).unwrap();
        assert_eq!(result.excluded, vec![3]);
        assert!(result.solution.position.distance_to(truth()) < 0.1);
    }

    #[test]
    fn small_faults_below_threshold_tolerated() {
        let mut meas = clean_measurements(6);
        meas[2].pseudorange += 5.0; // within the noise budget
        let raim = Raim::new(NewtonRaphson::default(), 10.0);
        let result = raim.solve(&meas, 0.0).unwrap();
        assert!(result.excluded.is_empty());
        // Position absorbs a few metres of error.
        assert!(result.solution.position.distance_to(truth()) < 15.0);
    }

    #[test]
    fn propagates_inner_errors() {
        let raim = Raim::new(NewtonRaphson::default(), 10.0);
        assert_eq!(
            raim.solve(&clean_measurements(3), 0.0).unwrap_err(),
            SolveError::TooFewSatellites { got: 3, need: 4 }
        );
    }

    #[test]
    fn accessor_and_builder() {
        let raim = Raim::new(NewtonRaphson::default(), 7.5).with_max_exclusions(3);
        assert_eq!(raim.inner().name(), "NR");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_threshold() {
        let _ = Raim::new(NewtonRaphson::default(), 0.0);
    }
}
