//! Earth-rotation (Sagnac) correction of satellite coordinates.
//!
//! A GPS signal is in flight for ~70 ms; while it travels, the ECEF frame
//! rotates ~35 m under it at the equator. Precise processing therefore
//! rotates the satellite's transmission-time position by `ωₑ·τ` before
//! forming the range equation. The synthetic datasets in this workspace
//! tabulate satellite positions at *reception* time in the reception-time
//! frame — exactly what the solvers consume — so no correction is needed
//! there; these utilities exist for callers bringing real broadcast
//! ephemerides, where positions come out at transmission time.

use gps_geodesy::wgs84::{EARTH_ROTATION_RATE, SPEED_OF_LIGHT};
use gps_geodesy::Ecef;

/// Rotates a satellite position given at transmission time into the ECEF
/// frame at reception time, for a signal with flight time `tau_s`
/// (seconds): a rotation by `−ωₑ·τ` about +Z.
///
/// # Panics
///
/// Panics if `tau_s` is not finite.
#[must_use]
pub fn rotate_to_reception_frame(position_at_tx: Ecef, tau_s: f64) -> Ecef {
    assert!(tau_s.is_finite(), "flight time must be finite");
    let angle = EARTH_ROTATION_RATE * tau_s;
    let (s, c) = angle.sin_cos();
    Ecef::new(
        c * position_at_tx.x + s * position_at_tx.y,
        -s * position_at_tx.x + c * position_at_tx.y,
        position_at_tx.z,
    )
}

/// Applies the Sagnac correction using the signal flight time implied by
/// the measured pseudorange (`τ ≈ ρ/c`) — the standard first-order form.
#[must_use]
pub fn sagnac_correct(position_at_tx: Ecef, pseudorange_m: f64) -> Ecef {
    rotate_to_reception_frame(position_at_tx, pseudorange_m / SPEED_OF_LIGHT)
}

/// The magnitude (metres) of the range error committed by *ignoring* the
/// Sagnac correction for a given receiver/satellite pair — handy for
/// error-budget accounting and for tests.
#[must_use]
pub fn sagnac_range_error(receiver: Ecef, satellite: Ecef) -> f64 {
    let tau = receiver.distance_to(satellite) / SPEED_OF_LIGHT;
    let rotated = rotate_to_reception_frame(satellite, tau);
    (receiver.distance_to(rotated) - receiver.distance_to(satellite)).abs()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_flight_time_is_identity() {
        let p = Ecef::new(2.0e7, 1.0e7, 0.5e7);
        assert_eq!(rotate_to_reception_frame(p, 0.0), p);
    }

    #[test]
    fn rotation_preserves_radius_and_z() {
        let p = Ecef::new(2.0e7, -1.0e7, 1.5e7);
        let q = rotate_to_reception_frame(p, 0.075);
        assert!((p.norm() - q.norm()).abs() < 1e-6);
        assert_eq!(p.z, q.z);
        // 75 ms of Earth rotation moves an equatorial-radius point ~
        // ωₑ·τ·ρ_xy ≈ 122 m.
        let horizontal = (p.x * p.x + p.y * p.y).sqrt();
        let expected = EARTH_ROTATION_RATE * 0.075 * horizontal;
        assert!((p.distance_to(q) - expected).abs() / expected < 1e-4);
    }

    #[test]
    fn correction_magnitude_is_tens_of_metres() {
        // The classic number: ~10-40 m of range effect.
        let receiver = Ecef::new(6.371e6, 0.0, 0.0);
        let satellite = Ecef::new(1.5e7, 1.8e7, 0.9e7);
        let err = sagnac_range_error(receiver, satellite);
        assert!(err > 5.0 && err < 80.0, "sagnac {err}");
    }

    #[test]
    fn sagnac_correct_uses_pseudorange_flight_time() {
        let sat = Ecef::new(2.0e7, 0.0, 1.7e7);
        let rho = 2.2e7;
        let direct = rotate_to_reception_frame(sat, rho / SPEED_OF_LIGHT);
        assert_eq!(sagnac_correct(sat, rho), direct);
    }

    #[test]
    fn inverse_rotation_round_trips() {
        let p = Ecef::new(1.2e7, 2.3e7, -0.4e7);
        let q = rotate_to_reception_frame(p, 0.07);
        let back = rotate_to_reception_frame(q, -0.07);
        assert!(p.distance_to(back) < 1e-6);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan_flight_time() {
        let _ = rotate_to_reception_frame(Ecef::ORIGIN, f64::NAN);
    }
}
