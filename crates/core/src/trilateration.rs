//! Exact three-satellite trilateration with a known clock.
//!
//! The paper's related work (§2, ref. [30]) notes that "when precise
//! clock time can be acquired, only three satellites are needed to
//! calculate a position". The direct-linearization algorithms still need
//! four (differencing spends one equation), but the *original* three
//! sphere equations can be intersected exactly: two planes reduce the
//! problem to a line, and the quadratic along that line gives the two
//! geometric candidates (a circle-of-intersection pierced twice). The
//! physical root is the one near the Earth's surface — the same
//! disambiguation the paper invokes ("the physical meaning of the
//! equations usually results in only one solution", §3.1).

use gps_geodesy::wgs84::SEMI_MAJOR_AXIS;
use gps_geodesy::Ecef;
use gps_linalg::{LuDecomposition, Matrix, Vector};

use crate::measurement::validate;
use crate::{Measurement, SolveError};

/// The two geometric intersection points of three range spheres, before
/// physical disambiguation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrilaterationRoots {
    /// The candidate closer to the Earth's surface.
    pub near_earth: Ecef,
    /// The mirror candidate.
    pub mirror: Ecef,
}

/// Solves the exact three-sphere intersection
/// `|x − sᵢ| = ρᵢ − ε̂ᴿ, i = 1..3` (clock-corrected ranges), returning
/// both geometric roots.
///
/// # Errors
///
/// * [`SolveError::TooFewSatellites`] with fewer than 3 measurements
///   (extra measurements beyond the first three are ignored).
/// * [`SolveError::NonFinite`] on NaN/∞ input.
/// * [`SolveError::DegenerateGeometry`] when the three satellites are
///   collinear (the two difference planes are parallel).
/// * [`SolveError::NoRealRoot`] when the spheres do not intersect
///   (inconsistent ranges — e.g. a badly wrong clock prediction).
///
/// # Example
///
/// ```
/// use gps_core::{trilaterate3, Measurement};
/// use gps_geodesy::Ecef;
///
/// # fn main() -> Result<(), gps_core::SolveError> {
/// let truth = Ecef::new(6.37e6, 1.0e5, -2.0e5);
/// let sats = [
///     Ecef::new(2.0e7, 0.0, 1.7e7),
///     Ecef::new(1.5e7, 1.8e7, 0.9e7),
///     Ecef::new(1.6e7, -1.7e7, 1.0e7),
/// ];
/// let meas: Vec<Measurement> = sats
///     .iter()
///     .map(|&s| Measurement::new(s, s.distance_to(truth)))
///     .collect();
/// let roots = trilaterate3(&meas, 0.0)?;
/// assert!(roots.near_earth.distance_to(truth) < 1e-3);
/// # Ok(())
/// # }
/// ```
pub fn trilaterate3(
    measurements: &[Measurement],
    predicted_receiver_bias_m: f64,
) -> Result<TrilaterationRoots, SolveError> {
    validate(measurements, 3)?;
    if !predicted_receiver_bias_m.is_finite() {
        return Err(SolveError::NonFinite);
    }
    let s: Vec<Ecef> = measurements[..3].iter().map(|m| m.position).collect();
    let rho: Vec<f64> = measurements[..3]
        .iter()
        .map(|m| m.pseudorange - predicted_receiver_bias_m)
        .collect();
    if rho.iter().any(|&r| r <= 0.0) {
        return Err(SolveError::NoRealRoot);
    }

    // Differencing spheres 2−1 and 3−1 yields two planes n·x = d (the
    // same algebra as the paper's eq. 4-7 with m = 3):
    let planes: Vec<(Ecef, f64)> = (1..3)
        .map(|j| {
            let n = s[j] - s[0];
            let d = 0.5
                * ((s[j].norm_squared() - s[0].norm_squared())
                    - (rho[j] * rho[j] - rho[0] * rho[0]));
            (n, d)
        })
        .collect();

    // Line of intersection: direction along n₁ × n₂; a point on the line
    // from solving the 2-plane system plus a gauge constraint.
    let dir = planes[0].0.cross(planes[1].0);
    let dir_norm = dir.norm();
    let scale = planes[0].0.norm() * planes[1].0.norm();
    if dir_norm <= 1e-10 * scale {
        return Err(SolveError::DegenerateGeometry(
            gps_linalg::LinalgError::Singular,
        ));
    }
    let dir = dir / dir_norm;

    // Point on the line: solve [n₁; n₂; dir]ᵀ x = [d₁; d₂; dir·s₁]
    // (third row pins the component along the line to pass near s₁'s
    // projection — any gauge works).
    let a = Matrix::from_rows(&[
        &[planes[0].0.x, planes[0].0.y, planes[0].0.z],
        &[planes[1].0.x, planes[1].0.y, planes[1].0.z],
        &[dir.x, dir.y, dir.z],
    ])
    .map_err(SolveError::DegenerateGeometry)?;
    let b = Vector::from_slice(&[planes[0].1, planes[1].1, 0.0]);
    let p0 = match LuDecomposition::new(&a) {
        Ok(lu) => {
            let x = lu.solve(&b).map_err(SolveError::from)?;
            Ecef::new(x[0], x[1], x[2])
        }
        Err(e) => return Err(SolveError::from(e)),
    };

    // Intersect the line p0 + t·dir with sphere 1:
    // |p0 + t·dir − s₁|² = ρ₁².
    let w = p0 - s[0];
    let b_half = w.dot(dir);
    let c = w.norm_squared() - rho[0] * rho[0];
    let disc = b_half * b_half - c;
    if disc < 0.0 {
        return Err(SolveError::NoRealRoot);
    }
    let sq = disc.sqrt();
    let r1 = p0 + dir * (-b_half + sq);
    let r2 = p0 + dir * (-b_half - sq);

    // Physical disambiguation: closer to the Earth's surface first.
    let surface_miss = |p: Ecef| (p.norm() - SEMI_MAJOR_AXIS).abs();
    if surface_miss(r1) <= surface_miss(r2) {
        Ok(TrilaterationRoots {
            near_earth: r1,
            mirror: r2,
        })
    } else {
        Ok(TrilaterationRoots {
            near_earth: r2,
            mirror: r1,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sats() -> [Ecef; 3] {
        [
            Ecef::new(2.0e7, 0.0, 1.7e7),
            Ecef::new(1.5e7, 1.8e7, 0.9e7),
            Ecef::new(1.6e7, -1.7e7, 1.0e7),
        ]
    }

    fn exact(truth: Ecef, bias: f64) -> Vec<Measurement> {
        sats()
            .iter()
            .map(|&s| Measurement::new(s, s.distance_to(truth) + bias))
            .collect()
    }

    #[test]
    fn exact_recovery_various_receivers() {
        for truth in [
            Ecef::new(6.371e6, 0.0, 0.0),
            Ecef::new(3.6e6, -5.2e6, 6.0e5),
            Ecef::new(-2.3e6, -1.4e6, 5.7e6),
        ] {
            let roots = trilaterate3(&exact(truth, 0.0), 0.0).unwrap();
            assert!(
                roots.near_earth.distance_to(truth) < 1e-3,
                "err {}",
                roots.near_earth.distance_to(truth)
            );
            // The mirror root is a genuinely different point.
            assert!(roots.mirror.distance_to(truth) > 1e5);
        }
    }

    #[test]
    fn clock_prediction_is_applied() {
        let truth = Ecef::new(6.371e6, 1.0e5, -2.0e5);
        let bias = 444.0;
        let roots = trilaterate3(&exact(truth, bias), bias).unwrap();
        assert!(roots.near_earth.distance_to(truth) < 1e-3);
    }

    #[test]
    fn both_roots_satisfy_all_spheres() {
        let truth = Ecef::new(6.371e6, -3.0e5, 2.0e5);
        let meas = exact(truth, 0.0);
        let roots = trilaterate3(&meas, 0.0).unwrap();
        for candidate in [roots.near_earth, roots.mirror] {
            for m in &meas {
                let err = (candidate.distance_to(m.position) - m.pseudorange).abs();
                assert!(err < 1e-3, "sphere residual {err}");
            }
        }
    }

    #[test]
    fn extra_measurements_ignored() {
        let truth = Ecef::new(6.371e6, 0.0, 0.0);
        let mut meas = exact(truth, 0.0);
        meas.push(Measurement::new(Ecef::new(1.0e7, 1.0e7, 2.0e7), 1.0)); // nonsense 4th
        let roots = trilaterate3(&meas, 0.0).unwrap();
        assert!(roots.near_earth.distance_to(truth) < 1e-3);
    }

    #[test]
    fn rejects_too_few_and_nonfinite() {
        let truth = Ecef::new(6.371e6, 0.0, 0.0);
        let meas = exact(truth, 0.0);
        assert_eq!(
            trilaterate3(&meas[..2], 0.0).unwrap_err(),
            SolveError::TooFewSatellites { got: 2, need: 3 }
        );
        assert_eq!(
            trilaterate3(&meas, f64::NAN).unwrap_err(),
            SolveError::NonFinite
        );
    }

    #[test]
    fn collinear_satellites_degenerate() {
        let truth = Ecef::new(6.371e6, 0.0, 0.0);
        let line: Vec<Measurement> = (0..3)
            .map(|k| {
                let s = Ecef::new(2.0e7, k as f64 * 1.0e6, 0.0);
                Measurement::new(s, s.distance_to(truth))
            })
            .collect();
        assert!(matches!(
            trilaterate3(&line, 0.0).unwrap_err(),
            SolveError::DegenerateGeometry(_)
        ));
    }

    #[test]
    fn disjoint_spheres_no_real_root() {
        // Shrink all ranges so the spheres cannot meet.
        let truth = Ecef::new(6.371e6, 0.0, 0.0);
        let meas: Vec<Measurement> = exact(truth, 0.0)
            .into_iter()
            .map(|m| Measurement::new(m.position, m.pseudorange * 0.5))
            .collect();
        assert_eq!(
            trilaterate3(&meas, 0.0).unwrap_err(),
            SolveError::NoRealRoot
        );
    }

    #[test]
    fn negative_corrected_range_rejected() {
        let truth = Ecef::new(6.371e6, 0.0, 0.0);
        let meas = exact(truth, 0.0);
        // An absurd clock prediction drives corrected ranges negative.
        assert_eq!(
            trilaterate3(&meas, 1.0e9).unwrap_err(),
            SolveError::NoRealRoot
        );
    }

    #[test]
    fn wrong_clock_prediction_biases_position() {
        let truth = Ecef::new(6.371e6, 0.0, 0.0);
        let roots_good = trilaterate3(&exact(truth, 100.0), 100.0).unwrap();
        let roots_off = trilaterate3(&exact(truth, 100.0), 0.0).unwrap();
        assert!(roots_good.near_earth.distance_to(truth) < 1e-3);
        assert!(roots_off.near_earth.distance_to(truth) > 50.0);
    }
}
