//! The two-lane solver contract: for every solver and every epoch shape
//! under [`gps_linalg::STACK_M_CAP`], the const-generic stack lane must
//! be **bit-for-bit** identical to the heap lane — same solutions to the
//! last ULP, same errors on the same inputs. Above the cap both lanes
//! are the heap path and must agree trivially.
//!
//! Seeded xoshiro256++ loops (no proptest in the offline build).

use gps_core::{
    Bancroft, CovarianceModel, Dlg, Dlo, Epoch, EpochBlock, EpochJob, GlsPath, Measurement,
    NewtonRaphson, Solution, SolveContext, SolveError, Solver,
};
use gps_geodesy::{Ecef, Geodetic};
use gps_rng::rngs::StdRng;
use gps_rng::{Rng, SeedableRng};

const CASES: usize = 48;

fn random_receiver(rng: &mut StdRng) -> Ecef {
    Geodetic::from_deg(
        rng.gen_range(-60.0..60.0),
        rng.gen_range(-179.0..179.0),
        rng.gen_range(-100.0..9_000.0),
    )
    .to_ecef()
}

fn random_epoch(rng: &mut StdRng, m: usize, bias: f64) -> Vec<Measurement> {
    let receiver = random_receiver(rng);
    let frame = gps_geodesy::LocalFrame::new(receiver);
    (0..m)
        .map(|k| {
            let jitter = rng.gen_range(0.0..1.0);
            let el: f64 = rng.gen_range(10.0..85.0).to_radians();
            let az = (k as f64 + jitter) / m as f64 * std::f64::consts::TAU;
            let range = 2.2e7;
            let enu = gps_geodesy::Enu::new(
                range * el.cos() * az.sin(),
                range * el.cos() * az.cos(),
                range * el.sin(),
            );
            let sat = frame.to_ecef(enu);
            let noise = rng.gen_range(-3.0..3.0);
            Measurement::new(sat, sat.distance_to(receiver) + bias + noise).with_elevation(el)
        })
        .collect()
}

/// Bit-level equality: `PartialEq` on f64 would accept `-0.0 == 0.0`
/// and reject `NaN == NaN`; the lane contract is stronger than both.
fn assert_bits_eq(stack: &Result<Solution, SolveError>, heap: &Result<Solution, SolveError>) {
    match (stack, heap) {
        (Ok(s), Ok(h)) => {
            assert_eq!(s.position.x.to_bits(), h.position.x.to_bits());
            assert_eq!(s.position.y.to_bits(), h.position.y.to_bits());
            assert_eq!(s.position.z.to_bits(), h.position.z.to_bits());
            assert_eq!(
                s.receiver_bias_m.map(f64::to_bits),
                h.receiver_bias_m.map(f64::to_bits)
            );
            assert_eq!(s.iterations, h.iterations);
            assert_eq!(s.residual_rms.to_bits(), h.residual_rms.to_bits());
        }
        (Err(s), Err(h)) => assert_eq!(s, h),
        (s, h) => panic!("lane divergence: stack {s:?} vs heap {h:?}"),
    }
}

fn solvers() -> Vec<Box<dyn Solver>> {
    vec![
        Box::new(NewtonRaphson::default()),
        Box::new(Dlo::default()),
        // Dlg::default() is the structured Sherman–Morrison lane; the two
        // dense GLS paths and the non-default covariance shapes are
        // contract-bound too (DenseExplicit has no stack mirror, so for
        // it the toggle must be a no-op on every shape).
        Box::new(Dlg::default()),
        Box::new(Dlg::default().with_gls_path(GlsPath::DenseWhitened)),
        Box::new(Dlg::default().with_gls_path(GlsPath::DenseExplicit)),
        Box::new(Dlg::default().with_covariance_model(CovarianceModel::DiagonalOnly)),
        Box::new(Dlg::default().with_covariance_model(CovarianceModel::ElevationScaled)),
        Box::new(Bancroft),
    ]
}

#[test]
fn stack_lane_is_bit_identical_to_heap_lane() {
    // m sweeps through the whole stack window and one shape above the
    // cap (both lanes = heap there; the toggle must still be a no-op).
    let shapes = [4usize, 5, 6, 8, 12, gps_linalg::STACK_M_CAP, 17];
    for solver in solvers() {
        let mut rng = StdRng::seed_from_u64(0x57AC_0001);
        let mut stack_ctx = SolveContext::new();
        let mut heap_ctx = SolveContext::new().with_stack_kernels(false);
        for &m in &shapes {
            for _ in 0..CASES {
                let bias = rng.gen_range(-1000.0..1000.0);
                let predicted = rng.gen_range(-5.0..5.0) + bias;
                let meas = random_epoch(&mut rng, m, bias);
                let epoch = Epoch::new(&meas, predicted);
                let stack = solver.solve(&epoch, &mut stack_ctx);
                let heap = solver.solve(&epoch, &mut heap_ctx);
                assert_bits_eq(&stack, &heap);
            }
        }
    }
}

#[test]
fn lanes_agree_on_degenerate_and_nonfinite_input() {
    for solver in solvers() {
        let mut stack_ctx = SolveContext::new();
        let mut heap_ctx = SolveContext::new().with_stack_kernels(false);

        // Too few satellites.
        let mut rng = StdRng::seed_from_u64(0x57AC_0002);
        let short = random_epoch(&mut rng, 3, 0.0);
        assert_bits_eq(
            &solver.solve(&Epoch::new(&short, 0.0), &mut stack_ctx),
            &solver.solve(&Epoch::new(&short, 0.0), &mut heap_ctx),
        );

        // A NaN pseudorange.
        let mut poisoned = random_epoch(&mut rng, 6, 0.0);
        poisoned[2].pseudorange = f64::NAN;
        assert_bits_eq(
            &solver.solve(&Epoch::new(&poisoned, 0.0), &mut stack_ctx),
            &solver.solve(&Epoch::new(&poisoned, 0.0), &mut heap_ctx),
        );

        // All satellites collapsed to one point (singular geometry).
        let receiver = random_receiver(&mut rng);
        let sat = Ecef::new(2.0e7, 1.0e6, 1.0e7);
        let collapsed: Vec<Measurement> = (0..6)
            .map(|_| Measurement::new(sat, sat.distance_to(receiver)))
            .collect();
        assert_bits_eq(
            &solver.solve(&Epoch::new(&collapsed, 0.0), &mut stack_ctx),
            &solver.solve(&Epoch::new(&collapsed, 0.0), &mut heap_ctx),
        );
    }
}

#[test]
fn solve_block_matches_per_epoch_solve_for_every_solver() {
    // Block feeding (SoA for DLO, fallback loop elsewhere) must be
    // bit-identical to scalar feeding, lane by lane.
    let mut rng = StdRng::seed_from_u64(0x57AC_0003);
    for solver in solvers() {
        let jobs: Vec<EpochJob> = (0..8)
            .map(|_| EpochJob::new(random_epoch(&mut rng, 6, 0.0), rng.gen_range(-5.0..5.0)))
            .collect();
        let block = EpochBlock::new(&jobs).expect("uniform shape");
        let mut ctx = SolveContext::new();
        let mut out = Vec::new();
        solver.solve_block(&block, &mut ctx, &mut out);
        assert_eq!(out.len(), jobs.len());
        for (lane, job) in jobs.iter().enumerate() {
            let scalar = solver.solve(
                &Epoch::new(&job.measurements, job.predicted_receiver_bias_m),
                &mut ctx,
            );
            assert_bits_eq(&out[lane], &scalar);
        }
    }
}
