//! Parallel-engine parity: any worker count, any claim order, and —
//! since the SoA refactor — any `block_size` must produce outcomes
//! bit-for-bit identical to a serial sweep of the same stream.

use gps_core::{
    Bancroft, Dlg, Dlo, Epoch, EpochJob, Measurement, NewtonRaphson, ParallelEngine, SolveContext,
    Solver,
};
use gps_geodesy::Geodetic;
use gps_pool::ThreadPool;
use gps_rng::rngs::StdRng;
use gps_rng::{Rng, SeedableRng};
use std::sync::Arc;

fn random_epoch(rng: &mut StdRng, m: usize) -> Vec<Measurement> {
    let receiver = Geodetic::from_deg(
        rng.gen_range(-60.0..60.0),
        rng.gen_range(-179.0..179.0),
        rng.gen_range(-100.0..9_000.0),
    )
    .to_ecef();
    let frame = gps_geodesy::LocalFrame::new(receiver);
    (0..m)
        .map(|k| {
            let jitter = rng.gen_range(0.0..1.0);
            let el: f64 = rng.gen_range(10.0..85.0).to_radians();
            let az = (k as f64 + jitter) / m as f64 * std::f64::consts::TAU;
            let range = 2.2e7;
            let enu = gps_geodesy::Enu::new(
                range * el.cos() * az.sin(),
                range * el.cos() * az.cos(),
                range * el.sin(),
            );
            let sat = frame.to_ecef(enu);
            let noise = rng.gen_range(-3.0..3.0);
            Measurement::new(sat, sat.distance_to(receiver) + noise).with_elevation(el)
        })
        .collect()
}

/// A mixed-shape stream: runs of m=6 broken up by m=5, m=4 and one
/// under-determined m=3 epoch, so blocks split mid-stream and the
/// fallback + error paths are all exercised.
fn mixed_stream(len: usize) -> Vec<EpochJob> {
    let mut rng = StdRng::seed_from_u64(0xB10C_0001);
    (0..len)
        .map(|i| {
            let m = match i % 11 {
                3 => 5,
                7 => 3,
                9 => 4,
                _ => 6,
            };
            EpochJob::new(random_epoch(&mut rng, m), rng.gen_range(-5.0..5.0))
        })
        .collect()
}

#[test]
fn blocked_run_is_bit_identical_to_serial_and_shared() {
    let engine = ParallelEngine::all_solvers();
    let stream = Arc::new(mixed_stream(33));

    // Serial reference: one context per lane, epoch by epoch.
    let mut ctxs: Vec<SolveContext> = engine
        .solvers()
        .iter()
        .map(|_| SolveContext::new())
        .collect();
    let serial: Vec<Vec<_>> = stream
        .iter()
        .map(|job| {
            let epoch = Epoch::new(&job.measurements, job.predicted_receiver_bias_m);
            engine
                .solvers()
                .iter()
                .zip(ctxs.iter_mut())
                .map(|(s, ctx)| s.solve(&epoch, ctx))
                .collect()
        })
        .collect();

    for workers in [1usize, 2, 4] {
        let pool = ThreadPool::new(workers);
        let shared = engine.run_shared(&pool, Arc::clone(&stream));
        assert_eq!(shared.outcomes, serial, "run_shared, {workers} workers");
        for block_size in [1usize, 4, 8, 13] {
            let blocked = engine.run_blocked(&pool, Arc::clone(&stream), block_size);
            assert_eq!(
                blocked.outcomes, serial,
                "run_blocked bs={block_size}, {workers} workers"
            );
            for (lane, (b, s)) in blocked
                .lane_stats
                .iter()
                .zip(shared.lane_stats.iter())
                .enumerate()
            {
                assert_eq!(b.epochs, s.epochs, "lane {lane} epochs");
                assert_eq!(b.solved, s.solved, "lane {lane} solved");
                assert_eq!(b.failed, s.failed, "lane {lane} failed");
            }
        }
    }
}

#[test]
fn blocked_run_with_heap_only_lanes_matches_stack_lanes() {
    // The block path must not change results even when the SoA kernel
    // is unavailable (heap-only m above the cap would fall back the
    // same way): compare stack-lane block run against a heap-lane
    // serial sweep.
    let stream = Arc::new(mixed_stream(22));
    let engine = ParallelEngine::new()
        .with_solver(Box::new(Dlo::default()))
        .with_solver(Box::new(Dlg::default()))
        .with_solver(Box::new(NewtonRaphson::default()))
        .with_solver(Box::new(Bancroft));
    let pool = ThreadPool::new(2);
    let blocked = engine.run_blocked(&pool, Arc::clone(&stream), 8);

    let mut heap_ctxs: Vec<SolveContext> = engine
        .solvers()
        .iter()
        .map(|_| SolveContext::new().with_stack_kernels(false))
        .collect();
    for (i, job) in stream.iter().enumerate() {
        let epoch = Epoch::new(&job.measurements, job.predicted_receiver_bias_m);
        for (lane, solver) in engine.solvers().iter().enumerate() {
            let heap = solver.solve(&epoch, &mut heap_ctxs[lane]);
            assert_eq!(blocked.outcomes[i][lane], heap, "epoch {i} lane {lane}");
        }
    }
}

#[test]
fn degenerate_streams_are_safe_in_block_mode() {
    let engine = ParallelEngine::all_solvers();
    let pool = ThreadPool::new(2);

    // Empty stream.
    let empty = engine.run_blocked(&pool, Arc::new(Vec::new()), 8);
    assert!(empty.outcomes.is_empty());

    // Every epoch under-determined.
    let mut rng = StdRng::seed_from_u64(0xB10C_0002);
    let bad: Vec<EpochJob> = (0..9)
        .map(|_| EpochJob::new(random_epoch(&mut rng, 2), 0.0))
        .collect();
    let run = engine.run_blocked(&pool, Arc::new(bad), 4);
    assert_eq!(run.outcomes.len(), 9);
    for per_epoch in &run.outcomes {
        assert!(per_epoch.iter().all(|r| r.is_err()));
    }
}
