//! Property-based tests for the positioning algorithms.
//!
//! The central invariant: on **error-free** pseudoranges, every solver
//! must recover the receiver position (and, where applicable, the clock
//! bias) to numerical precision, for any receiver location on the Earth
//! and any sane satellite geometry.

use gps_core::{Bancroft, Dlg, Dlo, Measurement, NewtonRaphson, PositionSolver};
use gps_geodesy::{Ecef, Geodetic};
use proptest::prelude::*;

/// A receiver somewhere on (or near) the Earth's surface.
fn receiver_strategy() -> impl Strategy<Value = Ecef> {
    (-60.0f64..60.0, -179.0f64..179.0, -100.0f64..9_000.0)
        .prop_map(|(lat, lon, h)| Geodetic::from_deg(lat, lon, h).to_ecef())
}

/// A set of `n` satellites spread over the receiver's sky: azimuths
/// roughly even with jitter, elevations drawn from 10°..85°.
fn sky_strategy(n: usize) -> impl Strategy<Value = Vec<(f64, f64)>> {
    prop::collection::vec((0.0f64..1.0, 10.0f64..85.0), n).prop_map(move |pairs| {
        pairs
            .iter()
            .enumerate()
            .map(|(k, (jitter, el))| {
                let az = (k as f64 + jitter) / n as f64 * std::f64::consts::TAU;
                (az, el.to_radians())
            })
            .collect()
    })
}

/// Places satellites at GPS range along the given look angles.
fn make_measurements(receiver: Ecef, sky: &[(f64, f64)], bias: f64) -> Vec<Measurement> {
    let frame = gps_geodesy::LocalFrame::new(receiver);
    sky.iter()
        .map(|&(az, el)| {
            let range = 2.2e7;
            let enu = gps_geodesy::Enu::new(
                range * el.cos() * az.sin(),
                range * el.cos() * az.cos(),
                range * el.sin(),
            );
            let sat = frame.to_ecef(enu);
            Measurement::new(sat, sat.distance_to(receiver) + bias).with_elevation(el)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn nr_exact_recovery(receiver in receiver_strategy(), sky in sky_strategy(6), bias in -1000.0f64..1000.0) {
        let meas = make_measurements(receiver, &sky, bias);
        match NewtonRaphson::default().solve(&meas, 0.0) {
            Ok(fix) => {
                prop_assert!(fix.position.distance_to(receiver) < 1e-2,
                    "err {}", fix.position.distance_to(receiver));
                prop_assert!((fix.receiver_bias_m.unwrap() - bias).abs() < 1e-2);
            }
            // Random skies can be near-degenerate; rejection is acceptable,
            // silent wrong answers are not.
            Err(e) => prop_assert!(
                matches!(e, gps_core::SolveError::DegenerateGeometry(_) | gps_core::SolveError::NonConvergence { .. }),
                "unexpected error {e:?}"
            ),
        }
    }

    #[test]
    fn dlo_exact_recovery(receiver in receiver_strategy(), sky in sky_strategy(7)) {
        let meas = make_measurements(receiver, &sky, 0.0);
        match Dlo::default().solve(&meas, 0.0) {
            Ok(fix) => prop_assert!(fix.position.distance_to(receiver) < 0.05,
                "err {}", fix.position.distance_to(receiver)),
            Err(e) => prop_assert!(
                matches!(e, gps_core::SolveError::DegenerateGeometry(_)),
                "unexpected error {e:?}"
            ),
        }
    }

    #[test]
    fn dlg_exact_recovery(receiver in receiver_strategy(), sky in sky_strategy(7)) {
        let meas = make_measurements(receiver, &sky, 0.0);
        match Dlg::default().solve(&meas, 0.0) {
            Ok(fix) => prop_assert!(fix.position.distance_to(receiver) < 0.05,
                "err {}", fix.position.distance_to(receiver)),
            Err(e) => prop_assert!(
                matches!(e, gps_core::SolveError::DegenerateGeometry(_)),
                "unexpected error {e:?}"
            ),
        }
    }

    #[test]
    fn dlo_dlg_with_perfect_clock_prediction(
        receiver in receiver_strategy(),
        sky in sky_strategy(8),
        bias in -500.0f64..500.0,
    ) {
        let meas = make_measurements(receiver, &sky, bias);
        if let (Ok(dlo), Ok(dlg)) = (
            Dlo::default().solve(&meas, bias),
            Dlg::default().solve(&meas, bias),
        ) {
            prop_assert!(dlo.position.distance_to(receiver) < 0.05);
            prop_assert!(dlg.position.distance_to(receiver) < 0.05);
        }
    }

    #[test]
    fn bancroft_exact_recovery(receiver in receiver_strategy(), sky in sky_strategy(5), bias in -1000.0f64..1000.0) {
        let meas = make_measurements(receiver, &sky, bias);
        match Bancroft::default().solve(&meas, 0.0) {
            Ok(fix) => {
                prop_assert!(fix.position.distance_to(receiver) < 0.05,
                    "err {}", fix.position.distance_to(receiver));
                prop_assert!((fix.receiver_bias_m.unwrap() - bias).abs() < 0.05);
            }
            Err(e) => prop_assert!(
                matches!(e, gps_core::SolveError::DegenerateGeometry(_) | gps_core::SolveError::NoRealRoot),
                "unexpected error {e:?}"
            ),
        }
    }

    #[test]
    fn solvers_agree_on_noisy_data(
        receiver in receiver_strategy(),
        sky in sky_strategy(8),
        noise_seed in 0u64..1_000,
    ) {
        // Metre-level deterministic "noise" derived from the seed.
        let mut meas = make_measurements(receiver, &sky, 0.0);
        for (k, m) in meas.iter_mut().enumerate() {
            let pseudo_noise = (((noise_seed + k as u64 * 7919) % 997) as f64 / 997.0 - 0.5) * 6.0;
            m.pseudorange += pseudo_noise;
        }
        let results: Vec<Ecef> = [
            NewtonRaphson::default().solve(&meas, 0.0),
            Dlo::default().solve(&meas, 0.0),
            Dlg::default().solve(&meas, 0.0),
            Bancroft::default().solve(&meas, 0.0),
        ]
        .into_iter()
        .filter_map(|r| r.ok().map(|s| s.position))
        .collect();
        prop_assume!(results.len() == 4);
        // All four estimates within tens of metres of each other and of
        // the truth (noise is ±3 m, DOP is modest).
        for p in &results {
            prop_assert!(p.distance_to(receiver) < 100.0, "err {}", p.distance_to(receiver));
        }
    }

    #[test]
    fn trilaterate3_exact_recovery(receiver in receiver_strategy(), sky in sky_strategy(3), bias in -500.0f64..500.0) {
        let meas = make_measurements(receiver, &sky, bias);
        match gps_core::trilaterate3(&meas, bias) {
            Ok(roots) => prop_assert!(
                roots.near_earth.distance_to(receiver) < 0.05,
                "err {}", roots.near_earth.distance_to(receiver)
            ),
            Err(e) => prop_assert!(
                matches!(
                    e,
                    gps_core::SolveError::DegenerateGeometry(_) | gps_core::SolveError::NoRealRoot
                ),
                "unexpected error {e:?}"
            ),
        }
    }

    #[test]
    fn velocity_exact_recovery(
        receiver in receiver_strategy(),
        sky in sky_strategy(6),
        vx in -300.0f64..300.0,
        vy in -300.0f64..300.0,
        vz in -50.0f64..50.0,
        drift in -10.0f64..10.0,
    ) {
        let v_rx = Ecef::new(vx, vy, vz);
        let meas = make_measurements(receiver, &sky, 0.0);
        let rates: Vec<gps_core::RateMeasurement> = meas
            .iter()
            .enumerate()
            .map(|(k, m)| {
                // Deterministic pseudo-random satellite velocities.
                let v_sat = Ecef::new(
                    ((k * 911) % 500) as f64 * 10.0 - 2_000.0,
                    ((k * 577) % 500) as f64 * 10.0 - 2_000.0,
                    ((k * 353) % 500) as f64 * 10.0 - 2_000.0,
                );
                let u = (m.position - receiver).normalized();
                gps_core::RateMeasurement::new(m.position, v_sat, (v_sat - v_rx).dot(u) + drift)
            })
            .collect();
        if let Ok(sol) = gps_core::solve_velocity(&rates, receiver) {
            prop_assert!((sol.velocity - v_rx).norm() < 1e-3,
                "err {}", (sol.velocity - v_rx).norm());
            prop_assert!((sol.clock_drift_m_s - drift).abs() < 1e-3);
        }
    }

    #[test]
    fn measurement_order_does_not_change_nr(receiver in receiver_strategy(), sky in sky_strategy(6)) {
        let meas = make_measurements(receiver, &sky, 42.0);
        let mut reversed = meas.clone();
        reversed.reverse();
        if let (Ok(a), Ok(b)) = (
            NewtonRaphson::default().solve(&meas, 0.0),
            NewtonRaphson::default().solve(&reversed, 0.0),
        ) {
            prop_assert!(a.position.distance_to(b.position) < 1e-3);
        }
    }
}
