//! Randomized property tests for the positioning algorithms.
//!
//! The central invariant: on **error-free** pseudoranges, every solver
//! must recover the receiver position (and, where applicable, the clock
//! bias) to numerical precision, for any receiver location on the Earth
//! and any sane satellite geometry.
//!
//! Ported off `proptest` onto seeded `gps-rng` loops for the offline
//! build; inputs come from deterministic xoshiro256++ streams.

use gps_core::{Bancroft, Dlg, Dlo, Measurement, NewtonRaphson, PositionSolver};
use gps_geodesy::{Ecef, Geodetic};
use gps_rng::rngs::StdRng;
use gps_rng::{Rng, SeedableRng};

const CASES: usize = 64;

/// A receiver somewhere on (or near) the Earth's surface.
fn random_receiver(rng: &mut StdRng) -> Ecef {
    Geodetic::from_deg(
        rng.gen_range(-60.0..60.0),
        rng.gen_range(-179.0..179.0),
        rng.gen_range(-100.0..9_000.0),
    )
    .to_ecef()
}

/// A set of `n` satellites spread over the receiver's sky: azimuths
/// roughly even with jitter, elevations drawn from 10°..85°.
fn random_sky(rng: &mut StdRng, n: usize) -> Vec<(f64, f64)> {
    (0..n)
        .map(|k| {
            let jitter = rng.gen_range(0.0..1.0);
            let el: f64 = rng.gen_range(10.0..85.0);
            let az = (k as f64 + jitter) / n as f64 * std::f64::consts::TAU;
            (az, el.to_radians())
        })
        .collect()
}

/// Places satellites at GPS range along the given look angles.
fn make_measurements(receiver: Ecef, sky: &[(f64, f64)], bias: f64) -> Vec<Measurement> {
    let frame = gps_geodesy::LocalFrame::new(receiver);
    sky.iter()
        .map(|&(az, el)| {
            let range = 2.2e7;
            let enu = gps_geodesy::Enu::new(
                range * el.cos() * az.sin(),
                range * el.cos() * az.cos(),
                range * el.sin(),
            );
            let sat = frame.to_ecef(enu);
            Measurement::new(sat, sat.distance_to(receiver) + bias).with_elevation(el)
        })
        .collect()
}

#[test]
fn nr_exact_recovery() {
    let mut rng = StdRng::seed_from_u64(0xC0_01);
    for _ in 0..CASES {
        let receiver = random_receiver(&mut rng);
        let sky = random_sky(&mut rng, 6);
        let bias = rng.gen_range(-1000.0..1000.0);
        let meas = make_measurements(receiver, &sky, bias);
        match NewtonRaphson::default().solve(&meas, 0.0) {
            Ok(fix) => {
                assert!(
                    fix.position.distance_to(receiver) < 1e-2,
                    "err {}",
                    fix.position.distance_to(receiver)
                );
                assert!((fix.receiver_bias_m.unwrap() - bias).abs() < 1e-2);
            }
            // Random skies can be near-degenerate; rejection is acceptable,
            // silent wrong answers are not.
            Err(e) => assert!(
                matches!(
                    e,
                    gps_core::SolveError::DegenerateGeometry(_)
                        | gps_core::SolveError::NonConvergence { .. }
                ),
                "unexpected error {e:?}"
            ),
        }
    }
}

#[test]
fn dlo_exact_recovery() {
    let mut rng = StdRng::seed_from_u64(0xC0_02);
    for _ in 0..CASES {
        let receiver = random_receiver(&mut rng);
        let sky = random_sky(&mut rng, 7);
        let meas = make_measurements(receiver, &sky, 0.0);
        match Dlo::default().solve(&meas, 0.0) {
            Ok(fix) => assert!(
                fix.position.distance_to(receiver) < 0.05,
                "err {}",
                fix.position.distance_to(receiver)
            ),
            Err(e) => assert!(
                matches!(e, gps_core::SolveError::DegenerateGeometry(_)),
                "unexpected error {e:?}"
            ),
        }
    }
}

#[test]
fn dlg_exact_recovery() {
    let mut rng = StdRng::seed_from_u64(0xC0_03);
    for _ in 0..CASES {
        let receiver = random_receiver(&mut rng);
        let sky = random_sky(&mut rng, 7);
        let meas = make_measurements(receiver, &sky, 0.0);
        match Dlg::default().solve(&meas, 0.0) {
            Ok(fix) => assert!(
                fix.position.distance_to(receiver) < 0.05,
                "err {}",
                fix.position.distance_to(receiver)
            ),
            Err(e) => assert!(
                matches!(e, gps_core::SolveError::DegenerateGeometry(_)),
                "unexpected error {e:?}"
            ),
        }
    }
}

#[test]
fn dlo_dlg_with_perfect_clock_prediction() {
    let mut rng = StdRng::seed_from_u64(0xC0_04);
    for _ in 0..CASES {
        let receiver = random_receiver(&mut rng);
        let sky = random_sky(&mut rng, 8);
        let bias = rng.gen_range(-500.0..500.0);
        let meas = make_measurements(receiver, &sky, bias);
        if let (Ok(dlo), Ok(dlg)) = (
            Dlo::default().solve(&meas, bias),
            Dlg::default().solve(&meas, bias),
        ) {
            assert!(dlo.position.distance_to(receiver) < 0.05);
            assert!(dlg.position.distance_to(receiver) < 0.05);
        }
    }
}

#[test]
fn bancroft_exact_recovery() {
    let mut rng = StdRng::seed_from_u64(0xC0_05);
    for _ in 0..CASES {
        let receiver = random_receiver(&mut rng);
        let sky = random_sky(&mut rng, 5);
        let bias = rng.gen_range(-1000.0..1000.0);
        let meas = make_measurements(receiver, &sky, bias);
        match Bancroft.solve(&meas, 0.0) {
            Ok(fix) => {
                assert!(
                    fix.position.distance_to(receiver) < 0.05,
                    "err {}",
                    fix.position.distance_to(receiver)
                );
                assert!((fix.receiver_bias_m.unwrap() - bias).abs() < 0.05);
            }
            Err(e) => assert!(
                matches!(
                    e,
                    gps_core::SolveError::DegenerateGeometry(_) | gps_core::SolveError::NoRealRoot
                ),
                "unexpected error {e:?}"
            ),
        }
    }
}

#[test]
fn solvers_agree_on_noisy_data() {
    let mut rng = StdRng::seed_from_u64(0xC0_06);
    for _ in 0..CASES {
        let receiver = random_receiver(&mut rng);
        let sky = random_sky(&mut rng, 8);
        let noise_seed = rng.gen_range(0u64..1_000);
        // Metre-level deterministic "noise" derived from the seed.
        let mut meas = make_measurements(receiver, &sky, 0.0);
        for (k, m) in meas.iter_mut().enumerate() {
            let pseudo_noise = (((noise_seed + k as u64 * 7919) % 997) as f64 / 997.0 - 0.5) * 6.0;
            m.pseudorange += pseudo_noise;
        }
        let results: Vec<Ecef> = [
            NewtonRaphson::default().solve(&meas, 0.0),
            Dlo::default().solve(&meas, 0.0),
            Dlg::default().solve(&meas, 0.0),
            Bancroft.solve(&meas, 0.0),
        ]
        .into_iter()
        .filter_map(|r| r.ok().map(|s| s.position))
        .collect();
        if results.len() != 4 {
            continue;
        }
        // All four estimates within tens of metres of each other and of
        // the truth (noise is ±3 m, DOP is modest).
        for p in &results {
            assert!(
                p.distance_to(receiver) < 100.0,
                "err {}",
                p.distance_to(receiver)
            );
        }
    }
}

#[test]
fn trilaterate3_exact_recovery() {
    let mut rng = StdRng::seed_from_u64(0xC0_07);
    for _ in 0..CASES {
        let receiver = random_receiver(&mut rng);
        let sky = random_sky(&mut rng, 3);
        let bias = rng.gen_range(-500.0..500.0);
        let meas = make_measurements(receiver, &sky, bias);
        match gps_core::trilaterate3(&meas, bias) {
            Ok(roots) => assert!(
                roots.near_earth.distance_to(receiver) < 0.05,
                "err {}",
                roots.near_earth.distance_to(receiver)
            ),
            Err(e) => assert!(
                matches!(
                    e,
                    gps_core::SolveError::DegenerateGeometry(_) | gps_core::SolveError::NoRealRoot
                ),
                "unexpected error {e:?}"
            ),
        }
    }
}

#[test]
fn velocity_exact_recovery() {
    let mut rng = StdRng::seed_from_u64(0xC0_08);
    for _ in 0..CASES {
        let receiver = random_receiver(&mut rng);
        let sky = random_sky(&mut rng, 6);
        let v_rx = Ecef::new(
            rng.gen_range(-300.0..300.0),
            rng.gen_range(-300.0..300.0),
            rng.gen_range(-50.0..50.0),
        );
        let drift = rng.gen_range(-10.0..10.0);
        let meas = make_measurements(receiver, &sky, 0.0);
        let rates: Vec<gps_core::RateMeasurement> = meas
            .iter()
            .enumerate()
            .map(|(k, m)| {
                // Deterministic pseudo-random satellite velocities.
                let v_sat = Ecef::new(
                    ((k * 911) % 500) as f64 * 10.0 - 2_000.0,
                    ((k * 577) % 500) as f64 * 10.0 - 2_000.0,
                    ((k * 353) % 500) as f64 * 10.0 - 2_000.0,
                );
                let u = (m.position - receiver).normalized();
                gps_core::RateMeasurement::new(m.position, v_sat, (v_sat - v_rx).dot(u) + drift)
            })
            .collect();
        if let Ok(sol) = gps_core::solve_velocity(&rates, receiver) {
            assert!(
                (sol.velocity - v_rx).norm() < 1e-3,
                "err {}",
                (sol.velocity - v_rx).norm()
            );
            assert!((sol.clock_drift_m_s - drift).abs() < 1e-3);
        }
    }
}

#[test]
fn measurement_order_does_not_change_nr() {
    let mut rng = StdRng::seed_from_u64(0xC0_09);
    for _ in 0..CASES {
        let receiver = random_receiver(&mut rng);
        let sky = random_sky(&mut rng, 6);
        let meas = make_measurements(receiver, &sky, 42.0);
        let mut reversed = meas.clone();
        reversed.reverse();
        if let (Ok(a), Ok(b)) = (
            NewtonRaphson::default().solve(&meas, 0.0),
            NewtonRaphson::default().solve(&reversed, 0.0),
        ) {
            assert!(a.position.distance_to(b.position) < 1e-3);
        }
    }
}
