#!/usr/bin/env sh
# Offline CI gate for the workspace: formatting, lints, a release build
# (benches included, so the harness-based bench files stay compiling),
# the full test suite, and a fault-campaign smoke run. No network access
# required.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo build --release (workspace, all targets)"
cargo build --release --offline --workspace --all-targets

echo "==> cargo test"
cargo test -q --offline --workspace

echo "==> gps-lint (workspace static analysis, 10s wall-clock budget)"
lint_start=$(date +%s)
if ! cargo run --release --offline -q -p gps-lint -- --no-report; then
    echo "gps-lint: non-allowlisted findings (re-run without --no-report for JSON)"
    exit 1
fi
lint_elapsed=$(( $(date +%s) - lint_start ))
echo "gps-lint: workspace pass took ${lint_elapsed}s"
if [ "$lint_elapsed" -gt 10 ]; then
    echo "gps-lint: workspace pass exceeded the 10s wall-clock budget"
    exit 1
fi

echo "==> gps-lint negative check (violating fixture must fail)"
if cargo run --release --offline -q -p gps-lint -- \
    --root crates/lint/tests/fixtures/violating --no-report >/dev/null 2>&1; then
    echo "gps-lint: violating fixture unexpectedly passed — the gate is broken"
    exit 1
fi

echo "==> gps-lint v2 negative checks (each violating fixture must trip its rule)"
for pair in \
    no_alloc_transitive:no_alloc \
    lock_order:lock_order \
    atomic_discipline:atomic_discipline \
    cast_truncation:cast_truncation \
    bounded_loop:bounded_loop; do
    dir=${pair%%:*}
    rule=${pair##*:}
    if cargo run --release --offline -q -p gps-lint -- --no-report --rule "$rule" \
        --root "crates/lint/tests/fixtures/v2/$dir/violating" >/dev/null 2>&1; then
        echo "gps-lint: v2 fixture $dir unexpectedly passed rule $rule — the gate is broken"
        exit 1
    fi
    if ! cargo run --release --offline -q -p gps-lint -- --no-report --rule "$rule" \
        --root "crates/lint/tests/fixtures/v2/$dir/clean" >/dev/null 2>&1; then
        echo "gps-lint: v2 clean mirror $dir failed rule $rule — false positive"
        exit 1
    fi
done

echo "==> engine smoke (one epoch through every solver lane)"
tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT
cargo run --release --offline -q -- generate --station SRZN \
    --epochs 1 --out "$tmpdir/smoke.gpsobs"
out=$(cargo run --release --offline -q -- engine "$tmpdir/smoke.gpsobs" --epochs 1)
echo "$out"
echo "$out" | grep -q "engine: 1 epochs through 4 lanes" \
    || { echo "smoke: engine did not run 4 lanes"; exit 1; }
echo "$out" | grep "failed" | grep -vq "failed     0" \
    && { echo "smoke: a lane failed the clean epoch"; exit 1; }

echo "==> throughput smoke (2 workers, quick stream, parity enforced)"
out=$(cargo run --release --offline -q -- throughput --jobs 2 --quick)
echo "$out"
echo "$out" | grep -q "jobs 2" || { echo "smoke: pool did not run 2 workers"; exit 1; }
echo "$out" | grep -q "per lane" || { echo "smoke: no per-lane table"; exit 1; }
echo "$out" | grep "failed" | grep -vq "failed    0" \
    && { echo "smoke: a lane failed on the clean stream"; exit 1; }

echo "==> block-mode smoke (SoA block sweep, parity enforced per size)"
for bs in 1 4 8; do
    out=$(cargo run --release --offline -q -- throughput --jobs 1 --quick --block-size "$bs")
    echo "$out" | head -n 3
    echo "$out" | grep -q "block size $bs" \
        || { echo "smoke: block size $bs not reported"; exit 1; }
    echo "$out" | grep "failed" | grep -vq "failed    0" \
        && { echo "smoke: a lane failed on the clean stream at block size $bs"; exit 1; }
done

echo "==> flight recorder smoke (record one epoch, decode the dump)"
out=$(cargo run --release --offline -q -- throughput --jobs 1 --epochs 1 \
    --flight-recorder "$tmpdir/flight.bin" 2>&1)
echo "$out" | grep -q "flight recorder: wrote" \
    || { echo "smoke: no flight-recorder dump written"; exit 1; }
out=$(cargo run --release --offline -q -- inspect "$tmpdir/flight.bin")
echo "$out" | head -n 8
echo "$out" | grep -q "worker 0:" || { echo "smoke: inspect shows no worker"; exit 1; }
echo "$out" | grep -q "lane_solve" || { echo "smoke: inspect shows no lane records"; exit 1; }

echo "==> throughput tail-latency smoke (exact p50/p99 per lane)"
out=$(cargo run --release --offline -q -- throughput --jobs 1 --quick)
echo "$out" | grep -q "lane latency" || { echo "smoke: no lane-latency table"; exit 1; }
echo "$out" | grep -q "p99" || { echo "smoke: no p99 column"; exit 1; }

echo "==> benchdiff gate (release build, loose tolerance for CI noise)"
cargo run --release --offline -q -- benchdiff --jobs 1 --tolerance 90 \
    || { echo "benchdiff: throughput regressed >90% vs BENCH_throughput.json"; exit 1; }

echo "==> benchdiff negative check (synthetic regression must fail)"
cat > "$tmpdir/fake_baseline.json" <<'EOF'
{
  "bench": "throughput",
  "results": [
    {"solver": "DLO", "jobs": 1, "ns_per_stream": 1, "fixes_per_sec": 1e12, "speedup_vs_jobs1": 1.0}
  ]
}
EOF
if cargo run --release --offline -q -- benchdiff --quick \
    --baseline "$tmpdir/fake_baseline.json" --tolerance 50 >/dev/null 2>&1; then
    echo "benchdiff: synthetic regression unexpectedly passed — the gate is broken"
    exit 1
fi

echo "==> theta-vs-m smoke (structured vs dense-cov DLG out to m = 40)"
out=$(cargo run --release --offline -q -- experiment theta_vs_m --quick)
echo "$out"
echo "$out" | grep -q "to 40 satellites" \
    || { echo "smoke: theta_vs_m did not run the large-constellation sweep"; exit 1; }
echo "$out" | grep -Eq "^ +40 " \
    || { echo "smoke: theta_vs_m produced no m = 40 row"; exit 1; }

echo "==> GLS-path ablation smoke (structured/whitened/explicit sweep, quick samples)"
out=$(GPS_BENCH_QUICK=1 cargo bench --offline -q -p gps-bench --bench ablation_gls_cov 2>&1)
echo "$out" | grep "dlg/structured" || { echo "smoke: ablation ran no structured cells"; exit 1; }
echo "$out" | grep -q "dlg/structured/m40" \
    || { echo "smoke: ablation did not reach m = 40"; exit 1; }
echo "$out" | grep -q "dlg/explicit-inv/m40" \
    || { echo "smoke: ablation skipped the explicit-inverse lane"; exit 1; }

echo "==> fault campaign smoke (dropout+ramp must degrade, not panic)"
out=$(cargo run --release --offline -q -- experiment fault_campaign --quick --faults dropout,ramp)
echo "$out"
echo "$out" | grep -q "availability" || { echo "smoke: no availability line"; exit 1; }
echo "$out" | grep -q "availability 100.0%" && { echo "smoke: expected availability < 100%"; exit 1; }
echo "$out" | grep -q "degraded 0 " && { echo "smoke: expected degraded > 0"; exit 1; }
echo "$out" | grep -q "holdover 0 " && { echo "smoke: expected the holdover fallback path"; exit 1; }

echo "==> service smoke (serve -> kill -> replay parity in a fresh process)"
out=$(cargo run --release --offline -q -- serve --quick --seed 2010 \
    --journal "$tmpdir/fleet.jrnl")
echo "$out"
digest=$(echo "$out" | sed -n 's/^fleet digest \([0-9a-f]\{16\}\)$/\1/p' | head -n 1)
[ -n "$digest" ] || { echo "smoke: serve printed no fleet digest"; exit 1; }
cargo run --release --offline -q -- replay "$tmpdir/fleet.jrnl" \
    --verify-digest "$digest" \
    || { echo "smoke: journal replay lost digest parity"; exit 1; }

echo "==> torn-journal smoke (kill mid-run + torn tail must replay clean)"
cargo run --release --offline -q -- serve --quick --seed 7 --kill-after 7 \
    --truncate-tail 41 --journal "$tmpdir/torn.jrnl" >/dev/null
out=$(cargo run --release --offline -q -- replay "$tmpdir/torn.jrnl")
echo "$out"
echo "$out" | grep -q "torn tail true" || { echo "smoke: torn tail not detected"; exit 1; }
echo "$out" | grep -q "mismatches 0" || { echo "smoke: torn journal replay mismatched"; exit 1; }

echo "==> chaos campaign smoke (SLO gate: availability >= 95%, honest fixes, clean replay)"
out=$(cargo run --release --offline -q -- experiment chaos --quick --seed 2010) \
    || { echo "chaos: SLO gate failed"; exit 1; }
echo "$out"
echo "$out" | grep -q "worker restarts" || { echo "chaos: no restart accounting"; exit 1; }
echo "$out" | grep -q "SLOs met" || { echo "chaos: SLO line missing"; exit 1; }

echo "==> BENCH_service.json is committed and well-formed"
grep -q '"bench": "service"' BENCH_service.json \
    || { echo "BENCH_service.json missing or malformed"; exit 1; }
grep -q '"missed_integrity": 0' BENCH_service.json \
    || { echo "BENCH_service.json records missed-integrity events"; exit 1; }
grep -q '"replay_verified": true' BENCH_service.json \
    || { echo "BENCH_service.json records a failed replay"; exit 1; }

echo "CI gate passed."
