#!/usr/bin/env sh
# Offline CI gate for the workspace: formatting, a release build
# (benches included, so the harness-based bench files stay compiling),
# and the full test suite. No network access required.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo build --release (workspace, all targets)"
cargo build --release --offline --workspace --all-targets

echo "==> cargo test"
cargo test -q --offline --workspace

echo "CI gate passed."
