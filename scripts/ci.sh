#!/usr/bin/env sh
# Offline CI gate for the workspace: formatting, lints, a release build
# (benches included, so the harness-based bench files stay compiling),
# the full test suite, and a fault-campaign smoke run. No network access
# required.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo build --release (workspace, all targets)"
cargo build --release --offline --workspace --all-targets

echo "==> cargo test"
cargo test -q --offline --workspace

echo "==> gps-lint (workspace static analysis)"
if ! cargo run --release --offline -q -p gps-lint; then
    echo "gps-lint: non-allowlisted findings (full report follows)"
    cat lint-report.json
    exit 1
fi

echo "==> gps-lint negative check (violating fixture must fail)"
if cargo run --release --offline -q -p gps-lint -- \
    --root crates/lint/tests/fixtures/violating --no-report >/dev/null 2>&1; then
    echo "gps-lint: violating fixture unexpectedly passed — the gate is broken"
    exit 1
fi

echo "==> engine smoke (one epoch through every solver lane)"
tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT
cargo run --release --offline -q -- generate --station SRZN \
    --epochs 1 --out "$tmpdir/smoke.gpsobs"
out=$(cargo run --release --offline -q -- engine "$tmpdir/smoke.gpsobs" --epochs 1)
echo "$out"
echo "$out" | grep -q "engine: 1 epochs through 4 lanes" \
    || { echo "smoke: engine did not run 4 lanes"; exit 1; }
echo "$out" | grep "failed" | grep -vq "failed     0" \
    && { echo "smoke: a lane failed the clean epoch"; exit 1; }

echo "==> throughput smoke (2 workers, quick stream, parity enforced)"
out=$(cargo run --release --offline -q -- throughput --jobs 2 --quick)
echo "$out"
echo "$out" | grep -q "jobs 2" || { echo "smoke: pool did not run 2 workers"; exit 1; }
echo "$out" | grep -q "per lane" || { echo "smoke: no per-lane table"; exit 1; }
echo "$out" | grep "failed" | grep -vq "failed    0" \
    && { echo "smoke: a lane failed on the clean stream"; exit 1; }

echo "==> fault campaign smoke (dropout+ramp must degrade, not panic)"
out=$(cargo run --release --offline -q -- experiment fault_campaign --quick --faults dropout,ramp)
echo "$out"
echo "$out" | grep -q "availability" || { echo "smoke: no availability line"; exit 1; }
echo "$out" | grep -q "availability 100.0%" && { echo "smoke: expected availability < 100%"; exit 1; }
echo "$out" | grep -q "degraded 0 " && { echo "smoke: expected degraded > 0"; exit 1; }
echo "$out" | grep -q "holdover 0 " && { echo "smoke: expected the holdover fallback path"; exit 1; }

echo "CI gate passed."
