//! Clock calibration walkthrough: the §4.2/§5.2.2 prediction pipeline.
//!
//! ```text
//! cargo run --release --example clock_calibration
//! ```
//!
//! Shows, for both receiver-clock disciplines of Table 5.1, how the
//! eq. 4-3 linear predictor is bootstrapped from NR-derived biases
//! (eq. 5-4), how it tracks the true clock across a threshold reset, and
//! how the Kalman extension (paper §6) compares.

use gps_clock::{
    ClockBiasPredictor, CorrectionType, KalmanClockPredictor, ReceiverClock, SteeringClock,
    ThresholdClock,
};
use gps_core::metrics::Summary;
use gps_geodesy::wgs84::SPEED_OF_LIGHT;
use gps_rng::rngs::StdRng;
use gps_rng::SeedableRng;
use gps_time::{Duration, GpsTime};

/// Simulates NR-derived bias measurement: truth plus ~2 m of estimation
/// error (what a 6-satellite NR solve typically leaves on the clock
/// unknown).
fn nr_measured_bias(true_bias: f64, k: u64) -> f64 {
    let wobble = (((k * 2_654_435_761) % 997) as f64 / 997.0 - 0.5) * 4.0;
    true_bias + wobble / SPEED_OF_LIGHT
}

fn run_discipline(mut clock: Box<dyn ReceiverClock>, label: &str) {
    let mut rng = StdRng::seed_from_u64(99);
    let t0 = GpsTime::new(1544, 0.0);
    let step = Duration::from_seconds(30.0);

    // Bootstrap: fit drift over a 30-minute window of NR biases.
    let mut samples = Vec::new();
    let mut t = t0;
    for k in 0..60u64 {
        samples.push((t, nr_measured_bias(clock.bias(), k)));
        clock.advance(step, &mut rng);
        t += step;
    }
    let mut linear = ClockBiasPredictor::new(t0);
    linear.fit_drift(&samples);
    linear.calibrate(samples[0].0, samples[0].1);
    let mut kalman = KalmanClockPredictor::default_tcxo(t0);
    for &(ts, b) in &samples {
        kalman.update(ts, b);
    }

    // Track for six hours; re-anchor only at resets (threshold stations
    // know when they step their own clock).
    let mut linear_err = Summary::new();
    let mut kalman_err = Summary::new();
    let mut resets = 0;
    for k in 60..780u64 {
        // Re-anchoring happens *before* the epoch's positioning use, as in
        // a real receiver: immediately at resets (the station knows it
        // just stepped its own clock), and every 30 epochs (15 min) as the
        // §4.2 approach-1 periodic re-anchor.
        let measured = nr_measured_bias(clock.bias(), k);
        if clock.was_reset() {
            resets += 1;
            linear.calibrate(t, measured);
            kalman.reset_bias(t, measured);
        } else if k % 30 == 0 {
            linear.calibrate(t, measured);
            kalman.update(t, measured);
        }

        let true_range_bias = clock.bias() * SPEED_OF_LIGHT;
        linear_err.push((linear.predict_range_bias(t) - true_range_bias).abs());
        kalman_err.push((kalman.predict_range_bias(t) - true_range_bias).abs());

        clock.advance(step, &mut rng);
        t += step;
    }

    println!("{label}:");
    println!("  fitted drift r = {:+.3e} s/s", linear.drift());
    println!("  resets observed: {resets}");
    println!(
        "  linear D + r·t   prediction error: mean {:6.2} m, max {:6.2} m",
        linear_err.mean(),
        linear_err.max()
    );
    println!(
        "  Kalman extension prediction error: mean {:6.2} m, max {:6.2} m\n",
        kalman_err.mean(),
        kalman_err.max()
    );
}

fn main() {
    println!("clock-bias prediction across the two Table 5.1 disciplines\n");
    let steering = SteeringClock::default();
    assert_eq!(steering.correction_type(), CorrectionType::Steering);
    run_discipline(Box::new(steering), "Steering (datasets 1-3)");

    let threshold = ThresholdClock::new(9.0e-4, 2e-8, 1e-3, 1e-11);
    assert_eq!(threshold.correction_type(), CorrectionType::Threshold);
    run_discipline(
        Box::new(threshold),
        "Threshold (dataset 4; starts 0.9 ms from the 1 ms threshold)",
    );
}
