//! Quickstart: position a receiver from one epoch of measurements.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Builds a small synthetic epoch (five satellites, a 300 m receiver
//! clock error, metre-level measurement noise) and solves it with all
//! four algorithms through the [`Solver`] trait — one reusable
//! [`SolveContext`] serves every call — then replays the epoch through
//! the batched [`Engine`].

use gps_core::{
    Bancroft, Dlg, Dlo, Dop, Engine, Epoch, Measurement, NewtonRaphson, SolveContext, Solver,
};
use gps_geodesy::{Ecef, Geodetic};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Ground truth: a receiver in Turin, Italy.
    let truth = Geodetic::from_deg(45.07, 7.69, 240.0).to_ecef();
    let clock_bias_m = 300.0; // ≈ 1 µs of receiver clock error

    // Five satellites in plausible GPS geometry.
    let sats = [
        Ecef::new(2.0e7, 0.0, 1.7e7),
        Ecef::new(1.5e7, 1.8e7, 0.9e7),
        Ecef::new(1.6e7, -1.7e7, 1.0e7),
        Ecef::new(2.5e7, 0.4e7, -0.6e7),
        Ecef::new(0.8e7, 1.4e7, 2.0e7),
    ];
    // Pseudoranges: true range + clock bias + a deterministic few metres
    // of "measurement error".
    let measurements: Vec<Measurement> = sats
        .iter()
        .enumerate()
        .map(|(k, &s)| {
            let noise = ((k as f64) - 2.0) * 1.5;
            Measurement::new(s, s.distance_to(truth) + clock_bias_m + noise)
        })
        .collect();

    println!("truth: {}", Geodetic::from_ecef(truth));
    println!("geometry: {}\n", Dop::compute(&measurements, truth)?);

    // One scratch context serves every solver; its buffers are reused
    // from call to call, so the hot path never re-allocates.
    let mut ctx = SolveContext::new();

    // NR and Bancroft estimate the clock bias themselves.
    let epoch = Epoch::new(&measurements, 0.0);
    for solver in [&NewtonRaphson::default() as &dyn Solver, &Bancroft] {
        let fix = solver.solve(&epoch, &mut ctx)?;
        println!(
            "{:<8} error {:7.2} m, clock bias {:7.2} m, {} iteration(s)",
            solver.name(),
            fix.position.distance_to(truth),
            fix.receiver_bias_m.unwrap_or(f64::NAN),
            fix.iterations,
        );
    }

    // DLO and DLG consume an external clock prediction (here: a prediction
    // that is 2 m off, as a real D + r·t model would be).
    let predicted_bias = clock_bias_m - 2.0;
    let epoch = Epoch::new(&measurements, predicted_bias);
    for solver in [&Dlo::default() as &dyn Solver, &Dlg::default()] {
        let fix = solver.solve(&epoch, &mut ctx)?;
        println!(
            "{:<8} error {:7.2} m, closed-form (predicted bias fed in)",
            solver.name(),
            fix.position.distance_to(truth),
        );
    }

    // The batched Engine runs every solver side by side, each lane with
    // its own warm context — the harness the benches and CLI smoke use.
    let mut engine = Engine::all_solvers();
    for _ in 0..100 {
        engine.run_epoch(&measurements, predicted_bias);
    }
    println!("\nengine, 100 epochs:");
    for lane in engine.lanes() {
        println!(
            "  {:<8} {}/{} solved, mean {:.2} µs/epoch",
            lane.name(),
            lane.stats().solved,
            lane.stats().epochs,
            lane.stats().mean_time().as_secs_f64() * 1e6,
        );
    }
    Ok(())
}
