//! RAIM fault detection and exclusion on a live dataset.
//!
//! ```text
//! cargo run --release --example raim_fde
//! ```
//!
//! Injects satellite faults (a 500 m clock runoff on one PRN for ten
//! minutes) into a generated YYR1 dataset and shows what happens with and
//! without RAIM protection around the Newton–Raphson solver.

use gps_core::metrics::Summary;
use gps_core::{NewtonRaphson, PositionSolver, Raim};
use gps_obs::{paper_stations, DatasetGenerator};
use gps_sim::to_measurements;

fn main() {
    let station = &paper_stations()[1]; // YYR1
    let data = DatasetGenerator::new(17)
        .epoch_interval_s(30.0)
        .epoch_count(240) // two hours
        .elevation_mask_deg(5.0)
        .generate(station);
    let truth = station.position();

    // Fault injection: between epochs 80 and 100, the third-highest
    // satellite of each epoch runs off by 500 m.
    let faulted: Vec<_> = data
        .epochs()
        .iter()
        .enumerate()
        .map(|(k, epoch)| {
            let mut meas = to_measurements(epoch.observations());
            if (80..100).contains(&k) && meas.len() > 3 {
                meas[2].pseudorange += 500.0;
            }
            (k, meas)
        })
        .collect();

    let nr = NewtonRaphson::default();
    let raim = Raim::new(NewtonRaphson::default(), 12.0);

    let mut unprotected = Summary::new();
    let mut protected = Summary::new();
    let mut exclusions = 0usize;
    let mut during_fault_unprotected = Summary::new();
    let mut during_fault_protected = Summary::new();

    for (k, meas) in &faulted {
        let in_fault_window = (80..100).contains(k);
        if let Ok(fix) = nr.solve(meas, 0.0) {
            let err = fix.position.distance_to(truth);
            unprotected.push(err);
            if in_fault_window {
                during_fault_unprotected.push(err);
            }
        }
        if let Ok(result) = raim.solve(meas, 0.0) {
            let err = result.solution.position.distance_to(truth);
            protected.push(err);
            if !result.excluded.is_empty() {
                exclusions += 1;
            }
            if in_fault_window {
                during_fault_protected.push(err);
            }
        }
    }

    println!("RAIM fault detection & exclusion — {station}");
    println!("fault: +500 m on one satellite during epochs 80..100\n");
    println!("{:<22} {:>12} {:>12}", "", "mean error", "max error");
    println!(
        "{:<22} {:>10.2} m {:>10.2} m",
        "NR unprotected",
        unprotected.mean(),
        unprotected.max()
    );
    println!(
        "{:<22} {:>10.2} m {:>10.2} m",
        "NR + RAIM",
        protected.mean(),
        protected.max()
    );
    println!(
        "\nduring the fault window: unprotected {:.1} m vs protected {:.1} m (mean)",
        during_fault_unprotected.mean(),
        during_fault_protected.mean()
    );
    println!("epochs where RAIM excluded a satellite: {exclusions} (fault window is 20 epochs)");
}
