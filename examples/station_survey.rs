//! Station survey: 24 hours of static positioning at a CORS station.
//!
//! ```text
//! cargo run --release --example station_survey [-- SRZN|YYR1|FAI1|KYCP]
//! ```
//!
//! Regenerates one of the paper's Table 5.1 datasets, runs the three
//! algorithms over the full day, and prints per-algorithm error
//! statistics plus the derived rates. Also demonstrates persisting the
//! dataset to the RINEX-lite text format and reading it back.

use std::env;
use std::process::ExitCode;

use gps_obs::{format, paper_stations, DatasetGenerator};
use gps_sim::{run_dataset, ExperimentConfig};

fn main() -> ExitCode {
    let site = env::args().nth(1).unwrap_or_else(|| "SRZN".to_owned());
    let stations = paper_stations();
    let Some(station) = stations.iter().find(|s| s.id() == site) else {
        eprintln!("unknown site `{site}`; choose one of SRZN, YYR1, FAI1, KYCP");
        return ExitCode::FAILURE;
    };

    println!("surveying {station}");
    let cfg = ExperimentConfig::new(7);
    let data = DatasetGenerator::new(cfg.seed)
        .epoch_interval_s(cfg.epoch_interval_s)
        .epoch_count(cfg.epoch_count)
        .elevation_mask_deg(cfg.elevation_mask_deg)
        .generate(station);
    let (smin, smax) = data.satellite_count_range();
    println!(
        "generated {} epochs, {}-{} satellites per epoch",
        data.epochs().len(),
        smin,
        smax
    );

    // Round-trip through the RINEX-lite persistence format.
    let text = format::write(&data);
    let reloaded = format::parse(&text).expect("the writer emits valid documents");
    assert_eq!(reloaded, data);
    println!(
        "RINEX-lite round trip OK ({:.1} MiB serialized)\n",
        text.len() as f64 / (1024.0 * 1024.0)
    );

    println!(
        "{:>3} {:>10} {:>10} {:>10} {:>9} {:>9} {:>9} {:>9} {:>8}",
        "m", "NR err", "DLO err", "DLG err", "θ_DLO %", "θ_DLG %", "η_DLO %", "η_DLG %", "NR iters"
    );
    let mut last = None;
    for m in cfg.satellite_counts() {
        let r = run_dataset(&reloaded, m, &cfg);
        if r.nr.solves == 0 {
            continue;
        }
        println!(
            "{:>3} {:>9.2}m {:>9.2}m {:>9.2}m {:>9.1} {:>9.1} {:>9.1} {:>9.1} {:>8.1}",
            m,
            r.nr.error.mean(),
            r.dlo.error.mean(),
            r.dlg.error.mean(),
            r.theta_dlo(),
            r.theta_dlg(),
            r.eta_dlo(),
            r.eta_dlg(),
            r.nr_iterations.mean(),
        );
        last = Some(r);
    }
    if let Some(r) = last {
        println!(
            "\nat m={}: NR horizontal {:.2} m / vertical {:.2} m (vertical is the weak axis, as expected)",
            r.m,
            r.nr.horizontal_error.mean(),
            r.nr.vertical_error.mean(),
        );
    }
    ExitCode::SUCCESS
}
