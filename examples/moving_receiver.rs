//! Moving receiver: the paper's motivating scenario.
//!
//! ```text
//! cargo run --release --example moving_receiver
//! ```
//!
//! §1: "in many application systems, the object to be positioned may move
//! at a high speed. It is then necessary to reduce the computation time
//! overhead in order to provide real-time response for positioning
//! requests." This example flies an aircraft leg at 250 m/s with 10 Hz
//! epochs from [`gps_obs::KinematicGenerator`], solves every epoch with
//! NR and with DLO, smooths the DLO fixes with the constant-velocity
//! Kalman filter, and reports track accuracy plus the per-fix latency
//! that determines the sustainable fix rate.

use std::time::Instant;

use gps_clock::ClockBiasPredictor;
use gps_core::metrics::Summary;
use gps_core::{Dlo, NewtonRaphson, PositionSolver, PvFilter};
use gps_geodesy::Geodetic;
use gps_obs::{GreatCircleTrajectory, KinematicGenerator};
use gps_sim::to_measurements;
use gps_time::{Duration, GpsTime};

fn main() {
    let t0 = GpsTime::new(1544, 30_000.0);
    let start = Geodetic::from_deg(45.0, 7.6, 10_000.0).to_ecef();
    let trajectory = GreatCircleTrajectory::new(start, 60f64.to_radians(), 250.0, t0);
    let epochs = KinematicGenerator::new(2010).generate(
        &trajectory,
        t0,
        Duration::from_seconds(0.1),
        3_000, // five minutes of flight at 10 Hz
    );

    let nr = NewtonRaphson::default();
    let dlo = Dlo::default();
    let mut filter = PvFilter::new(1.0, 25.0);
    let mut predictor = ClockBiasPredictor::new(t0);

    let mut nr_err = Summary::new();
    let mut dlo_err = Summary::new();
    let mut filtered_err = Summary::new();
    let mut nr_time_ns = Summary::new();
    let mut dlo_time_ns = Summary::new();

    for (k, (epoch, truth)) in epochs.iter().enumerate() {
        let meas = to_measurements(epoch.observations());
        let t = epoch.time();

        let started = Instant::now();
        let nr_fix = nr.solve(&meas, 0.0);
        nr_time_ns.push(started.elapsed().as_nanos() as f64);

        // Bootstrap the clock predictor from the very first NR solve, as
        // §5.2.2 prescribes for a steering clock: once, at initialization.
        if k == 0 {
            if let Ok(fix) = &nr_fix {
                if let Some(bias) = fix.receiver_bias_m {
                    predictor.calibrate_from_range_bias(t, bias);
                }
            }
        }

        let predicted = predictor.predict_range_bias(t);
        let started = Instant::now();
        let dlo_fix = dlo.solve(&meas, predicted);
        dlo_time_ns.push(started.elapsed().as_nanos() as f64);

        if let (Ok(nr_sol), Ok(dlo_sol)) = (nr_fix, dlo_fix) {
            nr_err.push(nr_sol.position.distance_to(*truth));
            dlo_err.push(dlo_sol.position.distance_to(*truth));
            filter.update(dlo_sol.position, 0.1).expect("fix is finite");
            if let Some(smoothed) = filter.position() {
                if k >= 50 {
                    filtered_err.push(smoothed.distance_to(*truth));
                }
            }
        }
    }

    println!("flew 75.0 km at 250 m/s, {} fixes at 10 Hz\n", epochs.len());
    println!(
        "{:<12} {:>10} {:>10} {:>13} {:>13}",
        "algo", "mean err", "max err", "mean latency", "fixes/second"
    );
    for (name, err, time) in [
        ("NR", &nr_err, Some(&nr_time_ns)),
        ("DLO", &dlo_err, Some(&dlo_time_ns)),
        ("DLO+filter", &filtered_err, None),
    ] {
        match time {
            Some(time) => println!(
                "{:<12} {:>8.2} m {:>8.2} m {:>10.2} µs {:>13.0}",
                name,
                err.mean(),
                err.max(),
                time.mean() / 1_000.0,
                1.0e9 / time.mean(),
            ),
            None => println!(
                "{:<12} {:>8.2} m {:>8.2} m {:>13} {:>13}",
                name,
                err.mean(),
                err.max(),
                "—",
                "—"
            ),
        }
    }
    if let Some(v) = filter.velocity() {
        println!(
            "\nfiltered ground speed estimate: {:.1} m/s (true 250.0)",
            v.norm()
        );
    }
    println!(
        "DLO sustains {:.1}x NR's fix rate — the real-time headroom the paper argues for.",
        nr_time_ns.mean() / dlo_time_ns.mean()
    );
}
