//! Differential GPS across a short baseline (paper §3.3).
//!
//! ```text
//! cargo run --release --example dgps_baseline
//! ```
//!
//! The paper: "In the case where there are only clock dependent errors,
//! or where satellite dependent errors can be compensated, 4 satellites
//! are sufficient. For example, Differential GPS (DGPS) technology ...
//! can be used." This example builds a reference/rover pair 10 km apart
//! with physically shared atmospheric errors, and compares the rover's
//! accuracy solved standalone versus with the reference's corrections
//! applied — for both the NR baseline and DLG.

use gps_core::metrics::Summary;
use gps_core::{Dlg, NewtonRaphson, PositionSolver};
use gps_geodesy::wgs84::SPEED_OF_LIGHT;
use gps_obs::dgps::{apply_corrections, corrections, DgpsPairGenerator};
use gps_obs::paper_stations;
use gps_sim::to_measurements;

fn main() {
    let reference = &paper_stations()[0]; // SRZN
    let (ref_data, rover_data, rover_truth) = DgpsPairGenerator::new(2010)
        .epoch_interval_s(30.0)
        .epoch_count(480) // four hours
        .baseline_enu(10_000.0, 0.0)
        .generate(reference);

    let nr = NewtonRaphson::default();
    let dlg = Dlg::default();

    let mut raw_nr = Summary::new();
    let mut dgps_nr = Summary::new();
    let mut raw_dlg = Summary::new();
    let mut dgps_dlg = Summary::new();

    for (re, ro) in ref_data.epochs().iter().zip(rover_data.epochs()) {
        let corr = corrections(reference.position(), re);
        let corrected = apply_corrections(ro, &corr);
        // For DLG, feed the true rover clock bias relative to each input
        // (raw: rover clock; corrected: rover − reference clock, which the
        // correction transferred). In a live system both come from the
        // §5.2.2 predictor chain.
        let rover_bias = ro.truth().clock_bias * SPEED_OF_LIGHT;
        let differential_bias = (ro.truth().clock_bias - re.truth().clock_bias) * SPEED_OF_LIGHT;

        let raw_meas = to_measurements(ro.observations());
        let corr_meas = to_measurements(corrected.observations());

        if let (Ok(a), Ok(b)) = (nr.solve(&raw_meas, 0.0), nr.solve(&corr_meas, 0.0)) {
            raw_nr.push(a.position.distance_to(rover_truth));
            dgps_nr.push(b.position.distance_to(rover_truth));
        }
        if let (Ok(a), Ok(b)) = (
            dlg.solve(&raw_meas, rover_bias),
            dlg.solve(&corr_meas, differential_bias),
        ) {
            raw_dlg.push(a.position.distance_to(rover_truth));
            dgps_dlg.push(b.position.distance_to(rover_truth));
        }
    }

    println!(
        "DGPS over a 10 km baseline — rover accuracy, {} epochs\n",
        raw_nr.count()
    );
    println!("{:<18} {:>12} {:>12}", "", "standalone", "DGPS-corrected");
    println!(
        "{:<18} {:>9.2} m {:>9.2} m",
        "NR",
        raw_nr.mean(),
        dgps_nr.mean()
    );
    println!(
        "{:<18} {:>9.2} m {:>9.2} m",
        "DLG",
        raw_dlg.mean(),
        dgps_dlg.mean()
    );
    println!(
        "\nshared atmosphere/satellite errors cancel: {:.1}x better (NR), {:.1}x (DLG)",
        raw_nr.mean() / dgps_nr.mean(),
        raw_dlg.mean() / dgps_dlg.mean()
    );
}
