//! Velocity fixing from Doppler: position *and* velocity in closed form.
//!
//! ```text
//! cargo run --release --example velocity_fix
//! ```
//!
//! Builds on the paper's high-speed-object motivation: after a DLO
//! position fix, the receiver's velocity follows from carrier Doppler in
//! one linear solve ([`gps_core::solve_velocity`]) — no iteration
//! anywhere in the chain. Satellite velocities come from the same
//! Keplerian propagator that generates the constellation.

use gps_core::metrics::Summary;
use gps_core::{solve_velocity, Dlo, Measurement, PositionSolver, RateMeasurement};
use gps_geodesy::Geodetic;
use gps_obs::{GreatCircleTrajectory, Trajectory};
use gps_orbits::Constellation;
use gps_time::{Duration, GpsTime};

fn main() {
    let constellation = Constellation::gps_nominal();
    let t0 = GpsTime::new(1544, 43_000.0);
    let start = Geodetic::from_deg(45.0, 7.6, 9_500.0).to_ecef();
    let speed = 240.0;
    let heading = 135f64.to_radians();
    let trajectory = GreatCircleTrajectory::new(start, heading, speed, t0);
    let dt = Duration::from_seconds(1.0);

    let dlo = Dlo::default();
    let mut pos_err = Summary::new();
    let mut vel_err = Summary::new();
    let mut speed_est = Summary::new();

    for k in 0..120 {
        let t = t0 + dt * f64::from(k);
        let truth_pos = trajectory.position_at(t);
        // True velocity by central difference of the trajectory.
        let truth_vel = (trajectory.position_at(t + dt * 0.5)
            - trajectory.position_at(t - dt * 0.5))
            / dt.as_seconds();

        // Simulate one epoch: pseudoranges + Doppler range rates with
        // small deterministic errors (1.5 m code, 3 cm/s Doppler).
        let visible = constellation.visible_from(truth_pos, t, 10f64.to_radians());
        let mut code = Vec::new();
        let mut rate = Vec::new();
        for (j, v) in visible.iter().enumerate() {
            let sign = if j % 2 == 0 { 1.0 } else { -1.0 };
            code.push(
                Measurement::new(v.position, v.range + sign * 1.5).with_elevation(v.elevation),
            );
            let (sat_pos, sat_vel) = constellation
                .get(v.id)
                .expect("visible satellite exists")
                .position_velocity_at(t);
            let u = (sat_pos - truth_pos).normalized();
            let true_rate = (sat_vel - truth_vel).dot(u);
            rate.push(RateMeasurement::new(
                sat_pos,
                sat_vel,
                true_rate + sign * 0.03,
            ));
        }

        // Closed-form chain: DLO position → linear velocity solve.
        let Ok(fix) = dlo.solve(&code, 0.0) else {
            continue;
        };
        let Ok(vel) = solve_velocity(&rate, fix.position) else {
            continue;
        };

        pos_err.push(fix.position.distance_to(truth_pos));
        vel_err.push((vel.velocity - truth_vel).norm());
        speed_est.push(vel.velocity.norm());
    }

    println!(
        "closed-form position + velocity over {} epochs:",
        pos_err.count()
    );
    println!(
        "  position error: mean {:.2} m, max {:.2} m",
        pos_err.mean(),
        pos_err.max()
    );
    println!(
        "  velocity error: mean {:.3} m/s, max {:.3} m/s",
        vel_err.mean(),
        vel_err.max()
    );
    println!(
        "  estimated ground speed: {:.2} m/s (true {:.1})",
        speed_est.mean(),
        speed
    );
}
