//! Carrier smoothing: cutting DLO's error without touching the algorithm.
//!
//! ```text
//! cargo run --release --example carrier_smoothing
//! ```
//!
//! Simulates a static receiver tracking both code and carrier, feeds the
//! raw and the Hatch-smoothed pseudoranges through the same DLO solver,
//! and compares position errors. Smoothing attacks the noise/multipath
//! part of the paper's error budget — orthogonal to the solver choice,
//! and exactly what a production receiver layers on top.

use gps_core::metrics::Summary;
use gps_core::{Dlo, HatchFilter, Measurement, PositionSolver};
use gps_geodesy::Geodetic;
use gps_orbits::{Constellation, SatId};
use gps_rng::rngs::StdRng;
use gps_rng::{Rng, SeedableRng};
use gps_time::{Duration, GpsTime};
use std::collections::HashMap;

fn gaussian(rng: &mut StdRng) -> f64 {
    rng.standard_normal()
}

fn main() {
    let constellation = Constellation::gps_nominal();
    let truth = Geodetic::from_deg(45.07, 7.69, 240.0).to_ecef();
    let t0 = GpsTime::new(1544, 20_000.0);
    let dt = Duration::from_seconds(1.0);
    let epochs = 600;

    let mut rng = StdRng::seed_from_u64(2010);
    let dlo = Dlo::default();
    let mut filters: HashMap<SatId, HatchFilter> = HashMap::new();
    let mut raw_err = Summary::new();
    let mut smoothed_err = Summary::new();

    for k in 0..epochs {
        let t = t0 + dt * f64::from(k);
        let visible = constellation.visible_from(truth, t, 10f64.to_radians());

        let mut raw_meas = Vec::new();
        let mut smoothed_meas = Vec::new();
        for v in &visible {
            // Code: 1.5 m white noise. Carrier phase-range: mm noise plus
            // an (unknown, constant) ambiguity per satellite — only phase
            // *changes* matter to the Hatch filter.
            let code = v.range + 1.5 * gaussian(&mut rng);
            let ambiguity = f64::from(v.id.prn()) * 1.0e5;
            let phase = v.range + ambiguity + 0.003 * gaussian(&mut rng);

            raw_meas.push(Measurement::new(v.position, code).with_elevation(v.elevation));
            let filter = filters.entry(v.id).or_insert_with(|| HatchFilter::new(100));
            let smoothed = filter.update(code, phase);
            smoothed_meas.push(Measurement::new(v.position, smoothed).with_elevation(v.elevation));
        }

        if k < 30 {
            continue; // let the filters converge before scoring
        }
        if let (Ok(raw_fix), Ok(smoothed_fix)) =
            (dlo.solve(&raw_meas, 0.0), dlo.solve(&smoothed_meas, 0.0))
        {
            raw_err.push(raw_fix.position.distance_to(truth));
            smoothed_err.push(smoothed_fix.position.distance_to(truth));
        }
    }

    println!(
        "DLO on raw vs carrier-smoothed pseudoranges ({} scored epochs):",
        raw_err.count()
    );
    println!(
        "  raw code        : mean {:.2} m, rms {:.2} m, max {:.2} m",
        raw_err.mean(),
        raw_err.rms(),
        raw_err.max()
    );
    println!(
        "  Hatch-smoothed  : mean {:.2} m, rms {:.2} m, max {:.2} m",
        smoothed_err.mean(),
        smoothed_err.rms(),
        smoothed_err.max()
    );
    println!(
        "  improvement     : {:.1}x",
        raw_err.rms() / smoothed_err.rms()
    );
}
