//! Regenerates every table and figure of the paper's evaluation (§5).
//!
//! ```text
//! cargo run --release --example reproduce_paper            # everything
//! cargo run --release --example reproduce_paper -- table51 # just Table 5.1
//! cargo run --release --example reproduce_paper -- fig51   # just Figure 5.1
//! cargo run --release --example reproduce_paper -- fig52   # just Figure 5.2
//! cargo run --release --example reproduce_paper -- all --paper-scale
//! ```
//!
//! `--paper-scale` runs the full 86 400-epoch / 1 Hz datasets (slow);
//! the default uses a 30 s cadence over the same 24 hours, which leaves
//! the rates θ and η statistically indistinguishable. `--csv DIR`
//! additionally writes each figure as a CSV file for external plotting.
//!
//! The run ends with the collected telemetry: NR iteration counts,
//! design-matrix condition numbers, span timings and solve counters.

use std::env;
use std::process::ExitCode;

use gps_sim::{experiments, ExperimentConfig, FigureReport};

fn usage() -> ExitCode {
    eprintln!(
        "usage: reproduce_paper [table51|fig51|fig52|extensions|all] [--paper-scale] [--seed N] [--csv DIR]"
    );
    ExitCode::FAILURE
}

fn maybe_write_csv(csv_dir: &Option<String>, name: &str, report: &FigureReport) {
    if let Some(dir) = csv_dir {
        let path = std::path::Path::new(dir).join(format!("{name}.csv"));
        match std::fs::write(&path, report.to_csv()) {
            Ok(()) => eprintln!("wrote {}", path.display()),
            Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
        }
    }
}

fn main() -> ExitCode {
    let mut which = "all".to_owned();
    let mut paper_scale = false;
    let mut seed = 2010; // the paper's year, for flavor
    let mut csv_dir: Option<String> = None;
    let mut args = env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "table51" | "fig51" | "fig52" | "extensions" | "all" => which = arg,
            "--paper-scale" => paper_scale = true,
            "--seed" => {
                seed = match args.next().and_then(|s| s.parse().ok()) {
                    Some(s) => s,
                    None => return usage(),
                }
            }
            "--csv" => {
                csv_dir = match args.next() {
                    Some(dir) => Some(dir),
                    None => return usage(),
                }
            }
            _ => return usage(),
        }
    }

    let cfg = if paper_scale {
        ExperimentConfig::paper_scale(seed)
    } else {
        ExperimentConfig::new(seed)
    };

    // Collect the expensive observations (condition numbers, covariance
    // timing) too — this is a report, not a timing-sensitive benchmark.
    gps_telemetry::set_detail(true);

    println!("# Reproduction of 'Design and Analysis of a New GPS Algorithm' (ICDCS 2010)");
    println!(
        "# config: {} epochs @ {:.0} s, mask {:.1}°, seed {}\n",
        cfg.epoch_count, cfg.epoch_interval_s, cfg.elevation_mask_deg, cfg.seed
    );

    if which == "table51" || which == "all" {
        println!("{}\n", experiments::table51(&cfg));
    }
    if which == "fig51" || which == "all" {
        let report = experiments::fig51(&cfg);
        println!("{report}\n");
        maybe_write_csv(&csv_dir, "fig51", &report);
    }
    if which == "fig52" || which == "all" {
        let report = experiments::fig52(&cfg);
        println!("{report}\n");
        maybe_write_csv(&csv_dir, "fig52", &report);
    }
    if which == "extensions" || which == "all" {
        for (name, report) in [
            ("ext_base_selection", experiments::ext_base_selection(&cfg)),
            ("ext_gls_covariance", experiments::ext_gls_covariance(&cfg)),
            (
                "ext_noise_sensitivity",
                experiments::ext_noise_sensitivity(&cfg),
            ),
        ] {
            println!("{report}\n");
            maybe_write_csv(&csv_dir, name, &report);
        }
    }

    println!("# Telemetry (solver instrumentation over the whole run)\n");
    println!("{}", gps_telemetry::snapshot().render_table());
    ExitCode::SUCCESS
}
