//! End-to-end integration: constellation → atmosphere → clock → dataset →
//! solvers → metrics, through the public APIs only.

use gps_repro::atmosphere::ErrorBudget;
use gps_repro::core::{Bancroft, Dlg, Dlo, NewtonRaphson, PositionSolver};
use gps_repro::obs::{paper_stations, DatasetGenerator};
use gps_repro::sim::{run_dataset, select_subset, to_measurements, ExperimentConfig};

/// With every error source disabled, all four algorithms must reproduce
/// the station coordinates to sub-millimetre accuracy from generated
/// data — the full stack is self-consistent.
#[test]
fn noise_free_pipeline_recovers_station_exactly() {
    for station in &paper_stations() {
        let data = DatasetGenerator::new(1)
            .epoch_interval_s(300.0)
            .epoch_count(12)
            .error_budget(ErrorBudget::disabled())
            .steering_clock(gps_repro::clock::SteeringClock::new(0.0, 0.0, 1.0))
            .threshold_clock(gps_repro::clock::ThresholdClock::new(0.0, 0.0, 1e-3, 0.0))
            .generate(station);
        let truth = station.position();
        for epoch in data.epochs() {
            let meas = to_measurements(epoch.observations());
            // Clock bias is exactly zero by construction, so the direct
            // methods get a perfect prediction of 0.
            for solver in [
                &NewtonRaphson::default() as &dyn PositionSolver,
                &Dlo::default(),
                &Dlg::default(),
                &Bancroft,
            ] {
                let fix = solver
                    .solve(&meas, 0.0)
                    .unwrap_or_else(|e| panic!("{} failed: {e}", solver.name()));
                let err = fix.position.distance_to(truth);
                assert!(
                    err < 1e-3,
                    "{} at {}: error {err} m",
                    solver.name(),
                    station.id()
                );
            }
        }
    }
}

/// With the realistic error budget, NR lands within tens of metres and
/// the direct methods stay within a small factor of NR.
#[test]
fn realistic_pipeline_error_bounds() {
    let cfg = ExperimentConfig {
        epoch_count: 90,
        calibration_epochs: 15,
        ..ExperimentConfig::quick(3)
    };
    for (idx, station) in paper_stations().iter().enumerate() {
        let data = DatasetGenerator::new(cfg.seed)
            .epoch_interval_s(cfg.epoch_interval_s)
            .epoch_count(cfg.epoch_count)
            .elevation_mask_deg(cfg.elevation_mask_deg)
            .generate(station);
        let r = run_dataset(&data, 8, &cfg);
        assert!(r.epochs_used > 60, "dataset {idx}: used {}", r.epochs_used);
        assert!(
            r.nr.error.mean() > 0.1 && r.nr.error.mean() < 50.0,
            "dataset {idx}: NR mean {}",
            r.nr.error.mean()
        );
        for (name, stats) in [("DLO", &r.dlo), ("DLG", &r.dlg)] {
            assert!(
                stats.error.mean() < 5.0 * r.nr.error.mean(),
                "dataset {idx}: {name} mean {} vs NR {}",
                stats.error.mean(),
                r.nr.error.mean()
            );
        }
    }
}

/// The paper's headline accuracy shape on a reduced workload: DLG's
/// accuracy rate stays in a flat band while DLO's degrades as satellites
/// are added, and DLG is at least as accurate as DLO once the system is
/// meaningfully over-determined.
#[test]
fn accuracy_shape_matches_paper() {
    let cfg = ExperimentConfig {
        epoch_count: 240,
        epoch_interval_s: 120.0,
        calibration_epochs: 20,
        ..ExperimentConfig::new(11)
    };
    let station = &paper_stations()[1]; // YYR1
    let data = DatasetGenerator::new(cfg.seed)
        .epoch_interval_s(cfg.epoch_interval_s)
        .epoch_count(cfg.epoch_count)
        .elevation_mask_deg(cfg.elevation_mask_deg)
        .generate(station);

    let r6 = run_dataset(&data, 6, &cfg);
    let r10 = run_dataset(&data, 10, &cfg);
    assert!(r6.nr.solves > 100 && r10.nr.solves > 100);

    // Both direct methods are less accurate than NR (η > 100%) but within
    // a sane band (< 200%).
    for (label, eta) in [
        ("eta_dlo(6)", r6.eta_dlo()),
        ("eta_dlg(6)", r6.eta_dlg()),
        ("eta_dlo(10)", r10.eta_dlo()),
        ("eta_dlg(10)", r10.eta_dlg()),
    ] {
        assert!(eta > 95.0 && eta < 200.0, "{label} = {eta}");
    }
    // DLG at m=10 beats DLO at m=10 (the GLS pay-off the paper reports).
    assert!(
        r10.eta_dlg() < r10.eta_dlo(),
        "DLG {} should beat DLO {} at m=10",
        r10.eta_dlg(),
        r10.eta_dlo()
    );
}

/// Execution-time shape (release builds only; debug-mode ratios are
/// distorted by allocator overhead): both direct methods run in well
/// under NR's time, and DLG costs more than DLO.
#[test]
fn execution_time_shape_matches_paper() {
    if cfg!(debug_assertions) {
        return;
    }
    let cfg = ExperimentConfig {
        epoch_count: 240,
        epoch_interval_s: 120.0,
        calibration_epochs: 20,
        ..ExperimentConfig::new(13)
    };
    let station = &paper_stations()[0];
    let data = DatasetGenerator::new(cfg.seed)
        .epoch_interval_s(cfg.epoch_interval_s)
        .epoch_count(cfg.epoch_count)
        .elevation_mask_deg(cfg.elevation_mask_deg)
        .generate(station);
    // The structured GLS kernel narrowed the DLG-vs-DLO gap to where
    // scheduler noise under a parallel test run can flip one sample's
    // ordering; retry before judging (same policy as gps-sim's
    // direct_methods_faster_than_nr).
    let mut r = run_dataset(&data, 8, &cfg);
    for _ in 0..2 {
        if r.theta_dlo() < 60.0 && r.theta_dlg() < 90.0 && r.theta_dlg() > r.theta_dlo() {
            break;
        }
        r = run_dataset(&data, 8, &cfg);
    }
    assert!(r.theta_dlo() < 60.0, "θ_DLO {}", r.theta_dlo());
    assert!(r.theta_dlg() < 90.0, "θ_DLG {}", r.theta_dlg());
    assert!(r.theta_dlg() > r.theta_dlo());
}

/// Satellite subset selection: the geometry-aware subset never returns
/// duplicates, respects the requested size, and always includes the
/// highest-elevation satellite.
#[test]
fn subset_selection_invariants() {
    let station = &paper_stations()[2];
    let data = DatasetGenerator::new(21)
        .epoch_interval_s(600.0)
        .epoch_count(24)
        .elevation_mask_deg(5.0)
        .generate(station);
    for epoch in data.epochs() {
        let available = epoch.observations().len();
        for m in 4..=available {
            let subset = select_subset(station.position(), epoch, m);
            assert_eq!(subset.len(), m);
            let mut prns: Vec<u8> = subset.iter().map(|o| o.sat.prn()).collect();
            prns.sort_unstable();
            prns.dedup();
            assert_eq!(prns.len(), m, "duplicate satellite in subset");
            assert_eq!(subset[0].sat, epoch.observations()[0].sat);
        }
    }
}
