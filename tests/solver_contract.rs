//! Conformance suite for the [`Solver`] trait contract.
//!
//! Every solver behind the trait — NR, DLO, DLG, Bancroft — must uphold
//! the same observable guarantees regardless of its internal algorithm:
//!
//! 1. a successful solve returns finite position, residual, and (when
//!    claimed via `estimates_bias`) a finite clock-bias estimate;
//! 2. `residual_rms` is normalized to pseudorange metres, so on
//!    metre-noise epochs it lands in the metre range for every solver;
//! 3. solving is deterministic: same epoch, same answer, bit for bit;
//! 4. reusing one [`SolveContext`] across calls (the hot path) gives
//!    the same answers as a fresh context per call;
//! 5. the trait path agrees with the allocating `PositionSolver`
//!    convenience path that wraps it.

// `PositionSolver` is deliberately NOT imported: its blanket impl over
// every `Solver` would make plain method calls ambiguous. The one compat
// test below names it fully qualified instead.
use gps_repro::core::{
    Bancroft, Dlg, Dlo, Epoch, Measurement, NewtonRaphson, SolveContext, Solver,
};
use gps_repro::geodesy::{Ecef, Geodetic};

/// Bit pattern of a position, for exact-equality assertions.
fn bits(e: Ecef) -> [u64; 3] {
    e.to_array().map(f64::to_bits)
}

/// Truth position used by the synthetic epochs.
fn truth() -> Ecef {
    Geodetic::from_deg(45.07, 7.69, 240.0).to_ecef()
}

/// Builds a clean epoch of `m` satellites with deterministic metre-level
/// noise and a 300 m receiver clock bias.
fn epoch(m: usize) -> Vec<Measurement> {
    let truth = truth();
    (0..m)
        .map(|k| {
            let az = (k as f64) * std::f64::consts::TAU / (m as f64);
            let el = 0.3 + 0.08 * (k as f64);
            let r = 2.2e7;
            let sat = Ecef::new(
                truth.x + r * el.cos() * az.cos(),
                truth.y + r * el.cos() * az.sin(),
                truth.z + r * el.sin(),
            );
            let noise = ((k as f64) - (m as f64) / 2.0) * 0.8;
            Measurement::new(sat, sat.distance_to(truth) + 300.0 + noise)
        })
        .collect()
}

/// The four production solvers with the predicted bias each expects:
/// NR and Bancroft estimate the bias themselves, DLO/DLG consume an
/// external prediction (here 2 m off the truth, as a clock model's
/// would be).
fn solvers() -> Vec<(Box<dyn Solver>, f64)> {
    vec![
        (Box::new(NewtonRaphson::default()) as Box<dyn Solver>, 0.0),
        (Box::new(Dlo::default()), 298.0),
        (Box::new(Dlg::default()), 298.0),
        (Box::new(Bancroft), 0.0),
    ]
}

#[test]
fn solutions_are_finite_and_accurate() {
    let truth = truth();
    for m in [4usize, 6, 10] {
        let meas = epoch(m);
        let mut ctx = SolveContext::new();
        for (solver, bias) in solvers() {
            if m < solver.min_satellites() {
                continue;
            }
            let fix = Solver::solve(&solver, &Epoch::new(&meas, bias), &mut ctx)
                .unwrap_or_else(|e| panic!("{} failed on m={m}: {e}", solver.name()));
            assert!(
                fix.position.x.is_finite()
                    && fix.position.y.is_finite()
                    && fix.position.z.is_finite(),
                "{} returned non-finite position",
                solver.name()
            );
            assert!(
                fix.residual_rms.is_finite() && fix.residual_rms >= 0.0,
                "{} returned invalid residual",
                solver.name()
            );
            let err = fix.position.distance_to(truth);
            assert!(
                err < 50.0,
                "{} error {err:.1} m on a metre-noise epoch (m={m})",
                solver.name()
            );
            if solver.estimates_bias() {
                let b = fix
                    .receiver_bias_m
                    .unwrap_or_else(|| panic!("{} claims estimates_bias", solver.name()));
                assert!(
                    (b - 300.0).abs() < 50.0,
                    "{} bias estimate {b:.1} m far from 300 m",
                    solver.name()
                );
            }
        }
    }
}

#[test]
fn residuals_are_normalized_to_pseudorange_metres() {
    // The epochs carry sub-metre deterministic noise; a solver whose
    // residual were left in squared-range units (Bancroft's natural
    // domain) or in the differenced-observable domain scaled wrongly
    // would be orders of magnitude away from the metre range.
    let meas = epoch(8);
    let mut ctx = SolveContext::new();
    for (solver, bias) in solvers() {
        let fix = Solver::solve(&solver, &Epoch::new(&meas, bias), &mut ctx)
            .unwrap_or_else(|e| panic!("{} failed: {e}", solver.name()));
        assert!(
            fix.residual_rms < 20.0,
            "{} residual {:.3} not in pseudorange metres",
            solver.name(),
            fix.residual_rms
        );
    }
}

#[test]
fn solving_is_deterministic() {
    let meas = epoch(7);
    for (solver, bias) in solvers() {
        let mut ctx = SolveContext::new();
        let a = Solver::solve(&solver, &Epoch::new(&meas, bias), &mut ctx).expect("solves");
        let b = Solver::solve(&solver, &Epoch::new(&meas, bias), &mut ctx).expect("solves");
        assert_eq!(
            bits(a.position),
            bits(b.position),
            "{} is not bit-for-bit deterministic",
            solver.name()
        );
        assert_eq!(a.residual_rms.to_bits(), b.residual_rms.to_bits());
        assert_eq!(a.iterations, b.iterations);
    }
}

#[test]
fn context_reuse_matches_fresh_contexts() {
    // Walk epochs of varying size through ONE context; every answer must
    // equal the fresh-context answer, i.e. no stale-buffer leakage.
    let mut shared = SolveContext::new();
    for m in [10usize, 4, 8, 5] {
        let meas = epoch(m);
        for (solver, bias) in solvers() {
            if m < solver.min_satellites() {
                continue;
            }
            let reused =
                Solver::solve(&solver, &Epoch::new(&meas, bias), &mut shared).expect("solves");
            let mut fresh = SolveContext::new();
            let clean =
                Solver::solve(&solver, &Epoch::new(&meas, bias), &mut fresh).expect("solves");
            assert_eq!(
                bits(reused.position),
                bits(clean.position),
                "{} answer depends on context history (m={m})",
                solver.name()
            );
            assert_eq!(reused.residual_rms.to_bits(), clean.residual_rms.to_bits());
        }
    }
}

#[test]
fn trait_path_matches_position_solver_path() {
    let meas = epoch(6);
    let mut ctx = SolveContext::new();
    for (solver, bias) in solvers() {
        let via_trait = Solver::solve(&solver, &Epoch::new(&meas, bias), &mut ctx).expect("solves");
        let via_compat =
            gps_repro::core::PositionSolver::solve(&solver, &meas, bias).expect("solves");
        assert_eq!(
            bits(via_trait.position),
            bits(via_compat.position),
            "{} trait and PositionSolver paths disagree",
            solver.name()
        );
        assert_eq!(
            via_trait.residual_rms.to_bits(),
            via_compat.residual_rms.to_bits()
        );
    }
}

#[test]
fn metadata_is_consistent() {
    for (solver, _) in solvers() {
        assert!(!solver.name().is_empty());
        assert!(
            solver.min_satellites() >= 4,
            "{} claims to need fewer than 4 satellites",
            solver.name()
        );
        let clone = solver.clone_box();
        assert_eq!(clone.name(), solver.name());
        assert_eq!(clone.min_satellites(), solver.min_satellites());
        assert_eq!(clone.estimates_bias(), solver.estimates_bias());
        assert_eq!(clone.is_iterative(), solver.is_iterative());
    }
}
