//! End-to-end extended observables: datasets with Doppler + carrier phase
//! feed velocity solving and Hatch smoothing through the public APIs.

use gps_repro::core::metrics::Summary;
use gps_repro::core::{solve_velocity, Dlo, HatchFilter, PositionSolver};
use gps_repro::geodesy::wgs84::SPEED_OF_LIGHT;
use gps_repro::obs::{paper_stations, DatasetGenerator, SatObservation};
use gps_repro::sim::{to_measurements, to_rate_measurements};
use std::collections::HashMap;

fn extended_dataset(station_idx: usize, seed: u64, epochs: usize) -> gps_repro::obs::DataSet {
    DatasetGenerator::new(seed)
        .epoch_interval_s(30.0)
        .epoch_count(epochs)
        .extended_observables(true)
        .generate(&paper_stations()[station_idx])
}

#[test]
fn static_station_velocity_is_near_zero() {
    let data = extended_dataset(0, 71, 40); // SRZN: steering clock, 0 drift
    let truth = data.station().position();
    let mut speed = Summary::new();
    let mut drift = Summary::new();
    for epoch in data.epochs() {
        let rates = to_rate_measurements(epoch.observations()).expect("extended enabled");
        let sol = solve_velocity(&rates, truth).expect("good geometry");
        speed.push(sol.velocity.norm());
        drift.push(sol.clock_drift_m_s);
    }
    // 5 cm/s Doppler noise over ~10 satellites → dm/s-level velocity.
    assert!(speed.mean() < 0.2, "speed {}", speed.mean());
    assert!(drift.mean().abs() < 0.2, "drift {}", drift.mean());
}

#[test]
fn threshold_station_clock_drift_recovered_from_doppler() {
    let data = extended_dataset(3, 72, 40); // KYCP: drift 2e-8 s/s
    let truth = data.station().position();
    let mut drift = Summary::new();
    for epoch in data.epochs() {
        let rates = to_rate_measurements(epoch.observations()).expect("extended enabled");
        let sol = solve_velocity(&rates, truth).expect("good geometry");
        drift.push(sol.clock_drift_m_s);
    }
    let expected = 2e-8 * SPEED_OF_LIGHT; // ≈ 6.0 m/s
    assert!(
        (drift.mean() - expected).abs() < 0.3,
        "drift {} vs expected {expected}",
        drift.mean()
    );
}

#[test]
fn code_only_dataset_yields_no_rate_measurements() {
    let data = DatasetGenerator::new(73)
        .epoch_count(2)
        .generate(&paper_stations()[1]);
    assert!(to_rate_measurements(data.epochs()[0].observations()).is_none());
}

#[test]
fn hatch_smoothing_on_generated_phase_beats_raw_code() {
    let data = extended_dataset(1, 74, 120);
    let truth = data.station().position();
    let dlo = Dlo::default();
    let mut filters: HashMap<u8, HatchFilter> = HashMap::new();
    let mut raw = Summary::new();
    let mut smoothed = Summary::new();

    for (k, epoch) in data.epochs().iter().enumerate() {
        let bias = epoch.truth().clock_bias * SPEED_OF_LIGHT;
        let raw_meas = to_measurements(epoch.observations());

        let smoothed_obs: Vec<SatObservation> = epoch
            .observations()
            .iter()
            .map(|o| {
                let ext = o.extended.expect("extended enabled");
                let filter = filters
                    .entry(o.sat.prn())
                    .or_insert_with(|| HatchFilter::new(60));
                let mut smoothed_o = *o;
                smoothed_o.pseudorange = filter.update(o.pseudorange, ext.phase);
                smoothed_o
            })
            .collect();
        let smoothed_meas = to_measurements(&smoothed_obs);

        if k < 20 {
            continue; // convergence window
        }
        if let (Ok(a), Ok(b)) = (dlo.solve(&raw_meas, bias), dlo.solve(&smoothed_meas, bias)) {
            raw.push(a.position.distance_to(truth));
            smoothed.push(b.position.distance_to(truth));
        }
    }
    assert!(raw.count() > 80);
    assert!(
        smoothed.mean() < raw.mean(),
        "smoothed {} vs raw {}",
        smoothed.mean(),
        raw.mean()
    );
}
