//! Parallel-vs-serial determinism: the sharded [`ParallelEngine`] must
//! be bit-for-bit identical to the serial [`Engine`] on the same epoch
//! stream, for any worker count.
//!
//! The guarantee rests on the `Solver` contract (deterministic output,
//! independent of `SolveContext` history) plus the pool's
//! sequence-stamped merge, which reassembles results in epoch order no
//! matter which worker claimed which epoch. `LaneStats.total_time` is
//! explicitly scheduling-dependent, so only the outcome tallies are
//! compared there.

use gps_repro::core::{Engine, EpochJob, ParallelEngine, Solution, SolveError};
use gps_repro::geodesy::wgs84::SPEED_OF_LIGHT;
use gps_repro::obs::{paper_stations, DatasetGenerator};
use gps_repro::pool::ThreadPool;
use gps_repro::sim::to_measurements;

const EPOCHS: usize = 500;
const SATELLITES: usize = 8;
const SEED: u64 = 4242;

fn seeded_stream() -> Vec<EpochJob> {
    let station = &paper_stations()[0];
    let data = DatasetGenerator::new(SEED)
        .epoch_interval_s(30.0)
        .epoch_count(EPOCHS)
        .elevation_mask_deg(5.0)
        .generate(station);
    data.epochs()
        .iter()
        .map(|epoch| {
            EpochJob::new(
                to_measurements(&epoch.take_satellites(SATELLITES)),
                epoch.truth().clock_bias * SPEED_OF_LIGHT,
            )
        })
        .collect()
}

/// Serial reference: per-epoch, per-lane outcomes from the batched
/// [`Engine`], in lane order.
#[allow(clippy::type_complexity)]
fn serial_reference(stream: &[EpochJob]) -> (Vec<Vec<Result<Solution, SolveError>>>, Engine) {
    let mut engine = Engine::all_solvers();
    let mut outcomes = Vec::with_capacity(stream.len());
    for job in stream {
        engine.run_epoch(&job.measurements, job.predicted_receiver_bias_m);
        outcomes.push(
            engine
                .lanes()
                .iter()
                .map(|lane| lane.last().expect("lane ran this epoch").clone())
                .collect::<Vec<_>>(),
        );
    }
    (outcomes, engine)
}

#[test]
fn parallel_engine_is_bit_identical_to_serial_engine() {
    let stream = seeded_stream();
    assert_eq!(stream.len(), EPOCHS, "generator yields one job per epoch");
    let (reference, serial) = serial_reference(&stream);

    for jobs in [1usize, 4] {
        let pool = ThreadPool::new(jobs);
        let run = ParallelEngine::all_solvers().run(&pool, stream.clone());

        assert_eq!(run.epochs(), EPOCHS, "jobs={jobs}");
        assert_eq!(
            run.outcomes, reference,
            "jobs={jobs}: per-epoch solutions diverge from serial engine"
        );
        for (lane, stats) in serial.lanes().iter().zip(&run.lane_stats) {
            assert_eq!(
                (stats.solved, stats.failed),
                (lane.stats().solved, lane.stats().failed),
                "jobs={jobs}: {} tallies diverge",
                lane.name()
            );
        }
    }
}

#[test]
fn worker_count_does_not_change_results() {
    // Cross-check jobs=1 against jobs=4 directly: both merged runs must
    // agree epoch-for-epoch even though the sharding differs.
    let stream = seeded_stream();
    let engine = ParallelEngine::all_solvers();
    let one = engine.run(&ThreadPool::new(1), stream.clone());
    let four = engine.run(&ThreadPool::new(4), stream);
    assert_eq!(one.outcomes, four.outcomes);
    for (a, b) in one.lane_stats.iter().zip(&four.lane_stats) {
        assert_eq!((a.solved, a.failed), (b.solved, b.failed));
    }
}
