//! Reproducibility guarantees: identical seeds produce identical
//! datasets, solutions, and serialized artifacts — across the entire
//! public pipeline.

use gps_repro::core::{Dlg, Dlo, NewtonRaphson, PositionSolver};
use gps_repro::obs::{format, paper_stations, DatasetGenerator};
use gps_repro::sim::{experiments, run_dataset, to_measurements, ExperimentConfig};

fn generator(seed: u64) -> DatasetGenerator {
    DatasetGenerator::new(seed)
        .epoch_interval_s(60.0)
        .epoch_count(30)
        .elevation_mask_deg(5.0)
}

#[test]
fn dataset_generation_is_reproducible_per_station() {
    for station in &paper_stations() {
        let a = generator(77).generate(station);
        let b = generator(77).generate(station);
        assert_eq!(a, b, "{} differs across runs", station.id());
    }
}

#[test]
fn station_streams_are_independent_of_generation_order() {
    // Generating SRZN alone equals generating SRZN after other stations:
    // each station derives its own RNG stream from (seed, id).
    let stations = paper_stations();
    let direct = generator(31).generate(&stations[0]);
    let g = generator(31);
    let _ = g.generate(&stations[2]);
    let _ = g.generate(&stations[3]);
    let after_others = g.generate(&stations[0]);
    assert_eq!(direct, after_others);
}

#[test]
fn solver_outputs_are_deterministic() {
    let station = &paper_stations()[1];
    let data = generator(55).generate(station);
    let meas = to_measurements(data.epochs()[5].observations());
    for solver in [
        &NewtonRaphson::default() as &dyn PositionSolver,
        &Dlo::default(),
        &Dlg::default(),
    ] {
        let a = solver.solve(&meas, 42.0).expect("solvable");
        let b = solver.solve(&meas, 42.0).expect("solvable");
        assert_eq!(a.position, b.position, "{}", solver.name());
        assert_eq!(a.residual_rms, b.residual_rms);
    }
}

#[test]
fn serialized_dataset_is_stable() {
    let station = &paper_stations()[3];
    let data = generator(123).generate(station);
    let text_a = format::write(&data);
    let text_b = format::write(&format::parse(&text_a).expect("round trip"));
    assert_eq!(text_a, text_b, "write → parse → write must be a fixpoint");
}

#[test]
fn run_dataset_error_statistics_are_deterministic() {
    let cfg = ExperimentConfig {
        epoch_count: 30,
        epoch_interval_s: 60.0,
        calibration_epochs: 8,
        ..ExperimentConfig::quick(9)
    };
    let station = &paper_stations()[0];
    let data = generator(9).generate(station);
    let a = run_dataset(&data, 7, &cfg);
    let b = run_dataset(&data, 7, &cfg);
    // Timing differs run to run; the error statistics must not.
    assert_eq!(a.nr.error, b.nr.error);
    assert_eq!(a.dlo.error, b.dlo.error);
    assert_eq!(a.dlg.error, b.dlg.error);
    assert_eq!(a.epochs_used, b.epochs_used);
}

#[test]
fn experiment_reports_are_deterministic_modulo_timing() {
    let cfg = ExperimentConfig {
        epoch_count: 12,
        ..ExperimentConfig::quick(64)
    };
    let a = experiments::table51(&cfg);
    let b = experiments::table51(&cfg);
    assert_eq!(a.to_string(), b.to_string());
}
