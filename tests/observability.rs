//! Integration tests for the observability pipeline: flight-recorder
//! dumps end to end through `gps-repro inspect`, exact-tail lane
//! latency in `throughput`, the folded-stack profiler, and the
//! `benchdiff` regression gate.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_gps-repro"))
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gps_repro_obs_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

#[test]
fn throughput_reports_exact_tail_lane_latency() {
    let out = bin()
        .args(["throughput", "--jobs", "1", "--epochs", "20"])
        .output()
        .expect("throughput runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("lane latency"), "{text}");
    for lane in ["NR", "DLO", "DLG", "Bancroft"] {
        let row = text
            .lines()
            .find(|l| l.contains("p50") && l.trim_start().starts_with(lane))
            .unwrap_or_else(|| panic!("no latency row for {lane}: {text}"));
        for column in ["p50", "p90", "p99", "p999", "max"] {
            assert!(row.contains(column), "{lane} row missing {column}: {row}");
        }
    }
}

#[test]
fn flight_recorder_dump_round_trips_through_inspect() {
    let dir = temp_dir("dump");
    let dump = dir.join("flight.bin");

    let out = bin()
        .args([
            "throughput",
            "--jobs",
            "2",
            "--epochs",
            "10",
            "--flight-recorder",
        ])
        .arg(&dump)
        .output()
        .expect("throughput runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("flight recorder: wrote"),
        "no dump confirmation on stderr"
    );
    assert!(dump.exists());

    let out = bin()
        .arg("inspect")
        .arg(&dump)
        .output()
        .expect("inspect runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("worker 0:"), "{text}");
    assert!(text.contains("epoch_start 8 satellites"), "{text}");
    assert!(text.contains("lane_solve  NR"), "{text}");
    assert!(text.contains("job_end"), "{text}");

    // --tail trims each worker to its most recent records.
    let out = bin()
        .arg("inspect")
        .arg(&dump)
        .args(["--tail", "3"])
        .output()
        .expect("inspect runs");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("hidden by --tail"), "{text}");

    // JSON mode: every record line is a JSON object naming its worker.
    let out = bin()
        .arg("inspect")
        .arg(&dump)
        .args(["--format", "json"])
        .output()
        .expect("inspect runs");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(!text.is_empty());
    for line in text.lines() {
        assert!(
            line.starts_with("{\"worker\":") && line.ends_with('}'),
            "not a JSON record line: {line}"
        );
    }
    assert!(text.contains("\"kind\":\"lane_solve\""), "{text}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn inspect_decodes_the_dump_of_a_panicked_job() {
    let dir = temp_dir("panic");
    let dump = dir.join("panic.bin");

    // Drive the pool's panic-isolation path directly: a panicking job
    // must leave a JobPanic record and drain every ring to the dump
    // path, exactly what a crashed production run would leave behind.
    gps_telemetry::recorder::recorder().set_dump_path(Some(dump.clone()));
    {
        let pool = gps_repro::pool::ThreadPool::new(1);
        pool.submit(|| {
            let _ = std::hint::black_box(1 + 1);
        });
        pool.submit(|| panic!("injected crash for the observability test"));
        // Dropping the pool joins the workers, after the panic handler
        // has drained the rings to the dump path.
    }
    gps_telemetry::recorder::recorder().set_dump_path(None);
    assert!(dump.exists(), "panic did not write the flight dump");

    let out = bin()
        .arg("inspect")
        .arg(&dump)
        .output()
        .expect("inspect runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("job_panic"), "no panic record in: {text}");
    assert!(text.contains("job_start"), "{text}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn inspect_rejects_garbage_and_missing_files() {
    let dir = temp_dir("garbage");
    let bad = dir.join("not_a_dump.bin");
    std::fs::write(&bad, b"definitely not GPSFREC1 data").expect("write");

    let out = bin()
        .arg("inspect")
        .arg(&bad)
        .output()
        .expect("inspect runs");
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("error:"),
        "garbage accepted"
    );

    let out = bin()
        .args(["inspect", "/definitely/not/there.bin"])
        .output()
        .expect("inspect runs");
    assert!(!out.status.success());

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn profile_folded_emits_flamegraph_stacks() {
    let out = bin()
        .args(["profile", "fig51", "--folded", "--seed", "3"])
        .output()
        .expect("profile runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("fig51;epoch "), "no nested stack: {text}");
    for line in text.lines() {
        let mut parts = line.rsplitn(2, ' ');
        let weight = parts.next().expect("weight column");
        assert!(
            weight.parse::<u64>().is_ok(),
            "weight is not an integer: {line}"
        );
        assert!(parts.next().is_some(), "no stack column: {line}");
    }
}

#[test]
fn profile_table_mode_shows_exact_tails() {
    let out = bin()
        .args(["profile", "fig51", "--seed", "3"])
        .output()
        .expect("profile runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("p50"), "{text}");
    assert!(text.contains("p99"), "{text}");
    assert!(text.contains("fig51/epoch"), "{text}");

    let out = bin()
        .args(["profile", "nonsense"])
        .output()
        .expect("profile runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown experiment"));
}

#[test]
fn benchdiff_gates_on_the_baseline() {
    let dir = temp_dir("benchdiff");

    // A baseline any machine can beat: passes with exit 0.
    let easy = dir.join("easy.json");
    std::fs::write(
        &easy,
        r#"{"results": [
            {"solver": "DLO", "jobs": 1, "ns_per_stream": 1, "fixes_per_sec": 1.0, "speedup_vs_jobs1": 1.0},
            {"solver": "NR", "jobs": 1, "ns_per_stream": 1, "fixes_per_sec": 1.0, "speedup_vs_jobs1": 1.0}
        ]}"#,
    )
    .expect("write baseline");
    let out = bin()
        .args([
            "benchdiff",
            "--epochs",
            "60",
            "--tolerance",
            "50",
            "--baseline",
        ])
        .arg(&easy)
        .output()
        .expect("benchdiff runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("DLO"), "{text}");
    assert!(text.contains("ok"), "{text}");

    // A synthetic regression no machine can beat: exits nonzero and
    // names the regressed cell.
    let absurd = dir.join("absurd.json");
    std::fs::write(
        &absurd,
        r#"{"results": [
            {"solver": "DLO", "jobs": 1, "ns_per_stream": 1, "fixes_per_sec": 1e15, "speedup_vs_jobs1": 1.0}
        ]}"#,
    )
    .expect("write baseline");
    let out = bin()
        .args([
            "benchdiff",
            "--epochs",
            "60",
            "--tolerance",
            "50",
            "--baseline",
        ])
        .arg(&absurd)
        .output()
        .expect("benchdiff runs");
    assert!(!out.status.success(), "synthetic regression passed");
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("REGRESSION"),
        "no REGRESSION verdict"
    );

    // Malformed baselines are a usage error, not a crash.
    let empty = dir.join("empty.json");
    std::fs::write(&empty, "{}").expect("write baseline");
    let out = bin()
        .args(["benchdiff", "--baseline"])
        .arg(&empty)
        .output()
        .expect("benchdiff runs");
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("results"),
        "no parse diagnostic"
    );

    std::fs::remove_dir_all(&dir).ok();
}
