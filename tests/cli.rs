//! Integration tests for the `gps-repro` command-line binary.

use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_gps-repro"))
}

#[test]
fn no_arguments_prints_usage_and_fails() {
    let out = bin().output().expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("USAGE"), "{err}");
}

#[test]
fn unknown_command_fails() {
    let out = bin().arg("frobnicate").output().expect("binary runs");
    assert!(!out.status.success());
}

#[test]
fn generate_info_solve_pipeline() {
    let dir = std::env::temp_dir().join(format!("gps_repro_cli_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let obs = dir.join("yyr1.obs");

    let out = bin()
        .args([
            "generate",
            "--station",
            "YYR1",
            "--epochs",
            "40",
            "--interval",
            "60",
            "--seed",
            "5",
            "--out",
        ])
        .arg(&obs)
        .output()
        .expect("generate runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(obs.exists());

    let out = bin().arg("info").arg(&obs).output().expect("info runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("YYR1"), "{text}");
    assert!(text.contains("epochs  : 40"), "{text}");

    for algorithm in ["nr", "dlo", "dlg", "bancroft"] {
        let out = bin()
            .arg("solve")
            .arg(&obs)
            .args(["--algorithm", algorithm, "--satellites", "7"])
            .output()
            .expect("solve runs");
        assert!(
            out.status.success(),
            "{algorithm}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let text = String::from_utf8_lossy(&out.stdout);
        assert!(text.contains("position error"), "{algorithm}: {text}");
        assert!(text.contains("epochs solved"), "{algorithm}: {text}");
    }

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn generate_rejects_unknown_station() {
    let out = bin()
        .args(["generate", "--station", "NOPE", "--out", "/tmp/never.obs"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown station"));
}

#[test]
fn solve_rejects_missing_file_and_bad_algorithm() {
    let out = bin()
        .args(["solve", "/definitely/not/there.obs"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());

    let dir = std::env::temp_dir().join(format!("gps_repro_cli2_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let obs = dir.join("srzn.obs");
    let gen = bin()
        .args(["generate", "--station", "SRZN", "--epochs", "3", "--out"])
        .arg(&obs)
        .output()
        .expect("generate runs");
    assert!(gen.status.success());
    let out = bin()
        .arg("solve")
        .arg(&obs)
        .args(["--algorithm", "magic"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown algorithm"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn almanac_round_trips_through_yuma_parser() {
    let out = bin().arg("almanac").output().expect("almanac runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    let constellation = gps_repro::orbits::yuma::parse(&text).expect("valid YUMA");
    assert_eq!(constellation.len(), 31);
}

#[test]
fn experiment_rejects_unknown_name() {
    let out = bin()
        .args(["experiment", "fig99"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown experiment"));
}
