//! Integration tests for the `gps-repro` command-line binary.

use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_gps-repro"))
}

#[test]
fn no_arguments_prints_usage_and_fails() {
    let out = bin().output().expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("USAGE"), "{err}");
}

#[test]
fn unknown_command_fails() {
    let out = bin().arg("frobnicate").output().expect("binary runs");
    assert!(!out.status.success());
}

#[test]
fn generate_info_solve_pipeline() {
    let dir = std::env::temp_dir().join(format!("gps_repro_cli_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let obs = dir.join("yyr1.obs");

    let out = bin()
        .args([
            "generate",
            "--station",
            "YYR1",
            "--epochs",
            "40",
            "--interval",
            "60",
            "--seed",
            "5",
            "--out",
        ])
        .arg(&obs)
        .output()
        .expect("generate runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(obs.exists());

    let out = bin().arg("info").arg(&obs).output().expect("info runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("YYR1"), "{text}");
    assert!(text.contains("epochs  : 40"), "{text}");

    for algorithm in ["nr", "dlo", "dlg", "bancroft"] {
        let out = bin()
            .arg("solve")
            .arg(&obs)
            .args(["--algorithm", algorithm, "--satellites", "7"])
            .output()
            .expect("solve runs");
        assert!(
            out.status.success(),
            "{algorithm}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let text = String::from_utf8_lossy(&out.stdout);
        assert!(text.contains("position error"), "{algorithm}: {text}");
        assert!(text.contains("epochs solved"), "{algorithm}: {text}");
    }

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn generate_rejects_unknown_station() {
    let out = bin()
        .args(["generate", "--station", "NOPE", "--out", "/tmp/never.obs"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown station"));
}

#[test]
fn solve_rejects_missing_file_and_bad_algorithm() {
    let out = bin()
        .args(["solve", "/definitely/not/there.obs"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());

    let dir = std::env::temp_dir().join(format!("gps_repro_cli2_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let obs = dir.join("srzn.obs");
    let gen = bin()
        .args(["generate", "--station", "SRZN", "--epochs", "3", "--out"])
        .arg(&obs)
        .output()
        .expect("generate runs");
    assert!(gen.status.success());
    let out = bin()
        .arg("solve")
        .arg(&obs)
        .args(["--algorithm", "magic"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown algorithm"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn almanac_round_trips_through_yuma_parser() {
    let out = bin().arg("almanac").output().expect("almanac runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    let constellation = gps_repro::orbits::yuma::parse(&text).expect("valid YUMA");
    assert_eq!(constellation.len(), 31);
}

#[test]
fn telemetry_out_captures_events_and_snapshot() {
    let dir = std::env::temp_dir().join(format!("gps_repro_cli_tel_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("run.jsonl");

    let out = bin()
        .args([
            "experiment",
            "fig51",
            "--quick",
            "--seed",
            "7",
            "--telemetry-out",
        ])
        .arg(&path)
        .output()
        .expect("experiment runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    // The report itself still goes to stdout, untouched by telemetry.
    assert!(String::from_utf8_lossy(&out.stdout).contains("Figure 5.1"));

    let text = std::fs::read_to_string(&path).expect("telemetry file written");
    for line in text.lines() {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "not a JSON object line: {line}"
        );
    }
    // Per-epoch spans from the runner (path nests under the experiment).
    assert!(
        text.lines()
            .any(|l| l.contains("\"target\":\"span\"") && l.contains("epoch")),
        "no epoch span events in {text:.2000}"
    );
    // Run-summary events carry the paper's rates.
    assert!(text.contains("\"theta_dlo_pct\""), "no run-summary events");
    // The final metrics snapshot includes the solver instrumentation.
    for metric in [
        "core.nr.iterations",
        "core.dlo.condition_number",
        "core.dlg.condition_number",
    ] {
        assert!(
            text.lines()
                .any(|l| l.contains("\"type\":\"histogram\"") && l.contains(metric)),
            "snapshot missing histogram {metric}"
        );
    }
    // The default DLG lane is the structured Sherman–Morrison path, which
    // never assembles the dense Ψ — so its assembly timer must be absent
    // (it records only on the dense GlsPath ablation lanes; TELEMETRY.md).
    assert!(
        !text.contains("core.dlg.cov_assembly_us"),
        "structured DLG lane unexpectedly assembled a dense covariance"
    );
    assert!(
        text.lines()
            .any(|l| l.contains("\"type\":\"counter\"") && l.contains("core.nr.solves")),
        "snapshot missing the NR solve counter"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn telemetry_csv_format_and_flag_validation() {
    // --metrics-format without --telemetry-out is a usage error.
    let out = bin()
        .args(["almanac", "--metrics-format", "csv"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--telemetry-out"));

    // A telemetry flag with its value swallowed by the next flag is an
    // error, not a silent no-op.
    let out = bin()
        .args(["almanac", "--telemetry-out", "--log-level", "info"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("requires a value"));

    // A bad log level is rejected up front.
    let out = bin()
        .args(["almanac", "--log-level", "loud"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown log level"));

    // CSV telemetry starts with the event header row.
    let dir = std::env::temp_dir().join(format!("gps_repro_cli_csv_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let obs = dir.join("srzn.obs");
    let csv = dir.join("run.csv");
    let out = bin()
        .args(["generate", "--station", "SRZN", "--epochs", "3", "--out"])
        .arg(&obs)
        .args(["--metrics-format", "csv", "--telemetry-out"])
        .arg(&csv)
        .output()
        .expect("generate runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&csv).expect("csv telemetry written");
    assert!(
        text.starts_with("ts_us,level,target,message,fields"),
        "{text}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn log_level_writes_human_events_to_stderr() {
    let out = bin()
        .args([
            "experiment",
            "table51",
            "--quick",
            "--seed",
            "3",
            "--log-level",
            "info",
        ])
        .output()
        .expect("experiment runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("sim.experiments] datasets generated"),
        "stderr missing the generation event: {err}"
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("Table 5.1"));
}

#[test]
fn experiment_rejects_unknown_name() {
    let out = bin()
        .args(["experiment", "fig99"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown experiment"));
}
