//! Kinematic end-to-end: moving-receiver generation → closed-form
//! position + velocity solving → PV-filter smoothing, through the public
//! APIs only.

use gps_repro::atmosphere::ErrorBudget;
use gps_repro::core::metrics::Summary;
use gps_repro::core::{solve_velocity, Dlo, PositionSolver, PvFilter, RateMeasurement};
use gps_repro::geodesy::Geodetic;
use gps_repro::obs::{CircularTrajectory, GreatCircleTrajectory, KinematicGenerator, Trajectory};
use gps_repro::orbits::Constellation;
use gps_repro::sim::to_measurements;
use gps_repro::time::{Duration, GpsTime};

fn start_time() -> GpsTime {
    GpsTime::new(1544, 36_000.0)
}

fn start_position() -> gps_repro::geodesy::Ecef {
    Geodetic::from_deg(45.0, 7.6, 8_000.0).to_ecef()
}

#[test]
fn straight_leg_tracked_within_budget() {
    let trajectory = GreatCircleTrajectory::new(start_position(), 0.8, 200.0, start_time());
    let epochs = KinematicGenerator::new(33).generate(
        &trajectory,
        start_time(),
        Duration::from_seconds(1.0),
        120,
    );
    let dlo = Dlo::default();
    let mut raw = Summary::new();
    for (epoch, truth) in &epochs {
        let meas = to_measurements(epoch.observations());
        let bias = epoch.truth().clock_bias * gps_repro::geodesy::wgs84::SPEED_OF_LIGHT;
        let fix = dlo.solve(&meas, bias).expect("solvable epoch");
        raw.push(fix.position.distance_to(*truth));
    }
    assert_eq!(raw.count(), 120);
    assert!(raw.mean() < 20.0, "raw mean {}", raw.mean());
}

#[test]
fn pv_filter_beats_raw_fixes_on_circular_loop() {
    let trajectory = CircularTrajectory::new(start_position(), 8_000.0, 60.0, start_time());
    let epochs = KinematicGenerator::new(34).generate(
        &trajectory,
        start_time(),
        Duration::from_seconds(1.0),
        300,
    );
    let dlo = Dlo::default();
    let mut filter = PvFilter::new(0.5, 25.0);
    let mut raw = Summary::new();
    let mut smoothed = Summary::new();
    for (k, (epoch, truth)) in epochs.iter().enumerate() {
        let meas = to_measurements(epoch.observations());
        let bias = epoch.truth().clock_bias * gps_repro::geodesy::wgs84::SPEED_OF_LIGHT;
        let fix = dlo.solve(&meas, bias).expect("solvable epoch");
        filter.update(fix.position, 1.0).expect("finite fix");
        if k >= 30 {
            raw.push(fix.position.distance_to(*truth));
            smoothed.push(filter.position().expect("initialized").distance_to(*truth));
        }
    }
    assert!(
        smoothed.mean() < raw.mean(),
        "smoothed {} vs raw {}",
        smoothed.mean(),
        raw.mean()
    );
    // The filter's speed estimate tracks the commanded 60 m/s.
    let speed = filter.velocity().expect("initialized").norm();
    assert!((speed - 60.0).abs() < 10.0, "speed {speed}");
}

#[test]
fn velocity_solution_consistent_with_trajectory() {
    // Noise-free kinematic epochs + propagator velocities: the Doppler
    // solver must recover the trajectory's velocity to mm/s.
    let trajectory = GreatCircleTrajectory::new(start_position(), 2.1, 150.0, start_time());
    let constellation = Constellation::gps_nominal_at(GpsTime::EPOCH);
    let epochs = KinematicGenerator::new(35)
        .error_budget(ErrorBudget::disabled())
        .generate(&trajectory, start_time(), Duration::from_seconds(1.0), 10);

    for (epoch, truth) in &epochs {
        let t = epoch.time();
        let dt = Duration::from_seconds(0.5);
        let truth_vel = (trajectory.position_at(t + dt) - trajectory.position_at(t - dt)) / 1.0;
        let rates: Vec<RateMeasurement> = epoch
            .observations()
            .iter()
            .map(|o| {
                let (sat_pos, sat_vel) = constellation
                    .get(o.sat)
                    .expect("generated satellite exists")
                    .position_velocity_at(t);
                let u = (sat_pos - *truth).normalized();
                RateMeasurement::new(sat_pos, sat_vel, (sat_vel - truth_vel).dot(u))
            })
            .collect();
        let sol = solve_velocity(&rates, *truth).expect("good geometry");
        assert!(
            (sol.velocity - truth_vel).norm() < 1e-3,
            "velocity error {}",
            (sol.velocity - truth_vel).norm()
        );
    }
}
