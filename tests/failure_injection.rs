//! Failure injection: degenerate and hostile inputs through the public
//! API must produce typed errors, never panics or silent garbage.

use gps_repro::core::{
    Bancroft, Dlg, Dlo, Dop, Measurement, NewtonRaphson, PositionSolver, SolveError,
};
use gps_repro::geodesy::Ecef;
use gps_repro::obs::format;

fn all_solvers() -> Vec<Box<dyn PositionSolver>> {
    vec![
        Box::new(NewtonRaphson::default()),
        Box::new(Dlo::default()),
        Box::new(Dlg::default()),
        Box::new(Bancroft::default()),
    ]
}

fn good_sats() -> Vec<Ecef> {
    vec![
        Ecef::new(2.0e7, 0.0, 1.7e7),
        Ecef::new(1.5e7, 1.8e7, 0.9e7),
        Ecef::new(1.6e7, -1.7e7, 1.0e7),
        Ecef::new(2.5e7, 0.4e7, -0.6e7),
        Ecef::new(0.8e7, 1.4e7, 2.0e7),
    ]
}

#[test]
fn too_few_satellites_rejected_by_all() {
    let truth = Ecef::new(6.371e6, 0.0, 0.0);
    let meas: Vec<Measurement> = good_sats()
        .into_iter()
        .take(3)
        .map(|s| Measurement::new(s, s.distance_to(truth)))
        .collect();
    for solver in all_solvers() {
        assert_eq!(
            solver.solve(&meas, 0.0).unwrap_err(),
            SolveError::TooFewSatellites { got: 3, need: 4 },
            "{}",
            solver.name()
        );
    }
}

#[test]
fn nan_pseudorange_rejected_by_all() {
    let truth = Ecef::new(6.371e6, 0.0, 0.0);
    let mut meas: Vec<Measurement> = good_sats()
        .into_iter()
        .map(|s| Measurement::new(s, s.distance_to(truth)))
        .collect();
    meas[2].pseudorange = f64::NAN;
    for solver in all_solvers() {
        assert_eq!(
            solver.solve(&meas, 0.0).unwrap_err(),
            SolveError::NonFinite,
            "{}",
            solver.name()
        );
    }
}

#[test]
fn infinite_satellite_position_rejected_by_all() {
    let truth = Ecef::new(6.371e6, 0.0, 0.0);
    let mut meas: Vec<Measurement> = good_sats()
        .into_iter()
        .map(|s| Measurement::new(s, s.distance_to(truth)))
        .collect();
    meas[0].position.z = f64::INFINITY;
    for solver in all_solvers() {
        assert_eq!(
            solver.solve(&meas, 0.0).unwrap_err(),
            SolveError::NonFinite,
            "{}",
            solver.name()
        );
    }
}

#[test]
fn duplicate_satellites_degenerate_for_direct_methods() {
    // Four copies of the same satellite: the differenced design matrix is
    // all zeros.
    let s = Ecef::new(2.0e7, 1.0e7, 1.0e7);
    let meas = vec![Measurement::new(s, 2.3e7); 5];
    for solver in [&Dlo::default() as &dyn PositionSolver, &Dlg::default()] {
        assert!(
            matches!(
                solver.solve(&meas, 0.0).unwrap_err(),
                SolveError::DegenerateGeometry(_)
            ),
            "{}",
            solver.name()
        );
    }
}

#[test]
fn collinear_satellites_degenerate() {
    // Satellites along one line: rank-2 geometry.
    let meas: Vec<Measurement> = (0..6)
        .map(|k| {
            let s = Ecef::new(2.0e7, k as f64 * 1.0e6, 0.5e7);
            Measurement::new(s, 2.1e7)
        })
        .collect();
    for solver in [&Dlo::default() as &dyn PositionSolver, &Dlg::default()] {
        assert!(
            solver.solve(&meas, 0.0).is_err(),
            "{} accepted collinear geometry",
            solver.name()
        );
    }
}

#[test]
fn nr_nonconvergence_is_reported_not_hung() {
    // A wildly inconsistent system (random-ish pseudoranges) must either
    // converge to *some* least-squares point or report NonConvergence —
    // within the iteration cap either way.
    let meas: Vec<Measurement> = good_sats()
        .into_iter()
        .enumerate()
        .map(|(k, s)| Measurement::new(s, 1.0e7 + k as f64 * 3.7e6))
        .collect();
    match NewtonRaphson::new(8, 1e-4).solve(&meas, 0.0) {
        Ok(fix) => assert!(fix.iterations <= 8),
        Err(SolveError::NonConvergence { iterations, .. }) => assert!(iterations <= 8),
        Err(other) => panic!("unexpected error {other:?}"),
    }
}

#[test]
fn dop_rejects_degenerate_and_bad_input() {
    let truth = Ecef::new(6.371e6, 0.0, 0.0);
    let meas: Vec<Measurement> = good_sats()
        .into_iter()
        .map(|s| Measurement::new(s, s.distance_to(truth)))
        .collect();
    assert!(Dop::compute(&meas[..3], truth).is_err());
    assert!(Dop::compute(&meas, Ecef::new(f64::NAN, 0.0, 0.0)).is_err());
    // Receiver colocated with a satellite.
    assert!(Dop::compute(&meas, meas[0].position).is_err());
}

#[test]
fn rinex_lite_parser_survives_fuzzing_lite() {
    // Every prefix truncation of a valid document must parse or fail
    // cleanly — never panic.
    let data = gps_repro::obs::DatasetGenerator::new(5)
        .epoch_count(3)
        .generate(&gps_repro::obs::paper_stations()[0]);
    let text = format::write(&data);
    for cut in (0..text.len()).step_by(97) {
        let _ = format::parse(&text[..cut]);
    }
    // Random byte corruption (printable substitutions) must also be safe.
    for (pos, replacement) in [(10, 'X'), (50, '9'), (200, ' '), (500, '-')] {
        if pos < text.len() {
            let mut corrupted = text.clone();
            corrupted.replace_range(pos..=pos, &replacement.to_string());
            let _ = format::parse(&corrupted);
        }
    }
}

#[test]
fn predicted_bias_nan_rejected_by_direct_methods() {
    let truth = Ecef::new(6.371e6, 0.0, 0.0);
    let meas: Vec<Measurement> = good_sats()
        .into_iter()
        .map(|s| Measurement::new(s, s.distance_to(truth)))
        .collect();
    for solver in [&Dlo::default() as &dyn PositionSolver, &Dlg::default()] {
        assert_eq!(
            solver.solve(&meas, f64::NAN).unwrap_err(),
            SolveError::NonFinite,
            "{}",
            solver.name()
        );
    }
}
