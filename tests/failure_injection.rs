//! Failure injection: degenerate and hostile inputs through the public
//! API must produce typed errors, never panics or silent garbage.

use gps_repro::core::{
    Bancroft, Dlg, Dlo, Dop, Measurement, NewtonRaphson, PositionSolver, Raim, SolveError,
};
use gps_repro::geodesy::Ecef;
use gps_repro::obs::format;

fn all_solvers() -> Vec<Box<dyn PositionSolver>> {
    vec![
        Box::new(NewtonRaphson::default()),
        Box::new(Dlo::default()),
        Box::new(Dlg::default()),
        Box::new(Bancroft),
    ]
}

fn good_sats() -> Vec<Ecef> {
    vec![
        Ecef::new(2.0e7, 0.0, 1.7e7),
        Ecef::new(1.5e7, 1.8e7, 0.9e7),
        Ecef::new(1.6e7, -1.7e7, 1.0e7),
        Ecef::new(2.5e7, 0.4e7, -0.6e7),
        Ecef::new(0.8e7, 1.4e7, 2.0e7),
    ]
}

#[test]
fn too_few_satellites_rejected_by_all() {
    let truth = Ecef::new(6.371e6, 0.0, 0.0);
    let meas: Vec<Measurement> = good_sats()
        .into_iter()
        .take(3)
        .map(|s| Measurement::new(s, s.distance_to(truth)))
        .collect();
    for solver in all_solvers() {
        assert_eq!(
            solver.solve(&meas, 0.0).unwrap_err(),
            SolveError::TooFewSatellites { got: 3, need: 4 },
            "{}",
            solver.name()
        );
    }
}

#[test]
fn nan_pseudorange_rejected_by_all() {
    let truth = Ecef::new(6.371e6, 0.0, 0.0);
    let mut meas: Vec<Measurement> = good_sats()
        .into_iter()
        .map(|s| Measurement::new(s, s.distance_to(truth)))
        .collect();
    meas[2].pseudorange = f64::NAN;
    for solver in all_solvers() {
        assert_eq!(
            solver.solve(&meas, 0.0).unwrap_err(),
            SolveError::NonFinite,
            "{}",
            solver.name()
        );
    }
}

#[test]
fn infinite_satellite_position_rejected_by_all() {
    let truth = Ecef::new(6.371e6, 0.0, 0.0);
    let mut meas: Vec<Measurement> = good_sats()
        .into_iter()
        .map(|s| Measurement::new(s, s.distance_to(truth)))
        .collect();
    meas[0].position.z = f64::INFINITY;
    for solver in all_solvers() {
        assert_eq!(
            solver.solve(&meas, 0.0).unwrap_err(),
            SolveError::NonFinite,
            "{}",
            solver.name()
        );
    }
}

#[test]
fn duplicate_satellites_degenerate_for_direct_methods() {
    // Four copies of the same satellite: the differenced design matrix is
    // all zeros.
    let s = Ecef::new(2.0e7, 1.0e7, 1.0e7);
    let meas = vec![Measurement::new(s, 2.3e7); 5];
    for solver in [&Dlo::default() as &dyn PositionSolver, &Dlg::default()] {
        assert!(
            matches!(
                solver.solve(&meas, 0.0).unwrap_err(),
                SolveError::DegenerateGeometry(_)
            ),
            "{}",
            solver.name()
        );
    }
}

#[test]
fn collinear_satellites_degenerate() {
    // Satellites along one line: rank-2 geometry.
    let meas: Vec<Measurement> = (0..6)
        .map(|k| {
            let s = Ecef::new(2.0e7, k as f64 * 1.0e6, 0.5e7);
            Measurement::new(s, 2.1e7)
        })
        .collect();
    for solver in [&Dlo::default() as &dyn PositionSolver, &Dlg::default()] {
        assert!(
            solver.solve(&meas, 0.0).is_err(),
            "{} accepted collinear geometry",
            solver.name()
        );
    }
}

#[test]
fn nr_nonconvergence_is_reported_not_hung() {
    // A wildly inconsistent system (random-ish pseudoranges) must either
    // converge to *some* least-squares point or report NonConvergence —
    // within the iteration cap either way.
    let meas: Vec<Measurement> = good_sats()
        .into_iter()
        .enumerate()
        .map(|(k, s)| Measurement::new(s, 1.0e7 + k as f64 * 3.7e6))
        .collect();
    match NewtonRaphson::new(8, 1e-4).solve(&meas, 0.0) {
        Ok(fix) => assert!(fix.iterations <= 8),
        Err(SolveError::NonConvergence { iterations, .. }) => assert!(iterations <= 8),
        Err(other) => panic!("unexpected error {other:?}"),
    }
}

#[test]
fn dop_rejects_degenerate_and_bad_input() {
    let truth = Ecef::new(6.371e6, 0.0, 0.0);
    let meas: Vec<Measurement> = good_sats()
        .into_iter()
        .map(|s| Measurement::new(s, s.distance_to(truth)))
        .collect();
    assert!(Dop::compute(&meas[..3], truth).is_err());
    assert!(Dop::compute(&meas, Ecef::new(f64::NAN, 0.0, 0.0)).is_err());
    // Receiver colocated with a satellite.
    assert!(Dop::compute(&meas, meas[0].position).is_err());
}

#[test]
fn rinex_lite_parser_survives_fuzzing_lite() {
    // Every prefix truncation of a valid document must parse or fail
    // cleanly — never panic.
    let data = gps_repro::obs::DatasetGenerator::new(5)
        .epoch_count(3)
        .generate(&gps_repro::obs::paper_stations()[0]);
    let text = format::write(&data);
    for cut in (0..text.len()).step_by(97) {
        let _ = format::parse(&text[..cut]);
    }
    // Random byte corruption (printable substitutions) must also be safe.
    for (pos, replacement) in [(10, 'X'), (50, '9'), (200, ' '), (500, '-')] {
        if pos < text.len() {
            let mut corrupted = text.clone();
            corrupted.replace_range(pos..=pos, &replacement.to_string());
            let _ = format::parse(&corrupted);
        }
    }
}

/// Eight well-spread satellites: enough redundancy for two RAIM
/// exclusions (each identification round needs m − 1 ≥ min + 1).
fn wide_sky() -> Vec<Ecef> {
    vec![
        Ecef::new(2.0e7, 0.0, 1.7e7),
        Ecef::new(1.5e7, 1.8e7, 0.9e7),
        Ecef::new(1.6e7, -1.7e7, 1.0e7),
        Ecef::new(2.5e7, 0.4e7, -0.6e7),
        Ecef::new(1.9e7, 0.9e7, 1.6e7),
        Ecef::new(0.8e7, 1.4e7, 2.0e7),
        Ecef::new(1.2e7, -0.4e7, 2.2e7),
        Ecef::new(0.9e7, -1.3e7, 2.1e7),
    ]
}

fn wide_sky_measurements(truth: Ecef) -> Vec<Measurement> {
    wide_sky()
        .into_iter()
        .map(|s| Measurement::new(s, s.distance_to(truth)))
        .collect()
}

#[test]
fn raim_excludes_two_simultaneous_faults_for_every_solver() {
    let truth = Ecef::new(6.371e6, 1.0e5, -2.0e5);
    for (name, solve) in [
        (
            "NR",
            &(|m: &[Measurement]| {
                Raim::new(NewtonRaphson::default(), 10.0)
                    .with_max_exclusions(2)
                    .solve(m, 0.0)
            }) as &dyn Fn(&[Measurement]) -> _,
        ),
        ("DLO", &|m: &[Measurement]| {
            Raim::new(Dlo::default(), 10.0)
                .with_max_exclusions(2)
                .solve(m, 0.0)
        }),
        ("DLG", &|m: &[Measurement]| {
            Raim::new(Dlg::default(), 10.0)
                .with_max_exclusions(2)
                .solve(m, 0.0)
        }),
    ] {
        let mut meas = wide_sky_measurements(truth);
        meas[2].pseudorange += 700.0;
        meas[6].pseudorange -= 950.0;
        let result = solve(&meas).unwrap_or_else(|e| panic!("{name}: {e:?}"));
        let mut excluded = result.excluded.clone();
        excluded.sort_unstable();
        assert_eq!(excluded, vec![2, 6], "{name}");
        assert!(
            result.solution.position.distance_to(truth) < 0.5,
            "{name}: {} m off",
            result.solution.position.distance_to(truth)
        );
        assert!(result.residual_rms <= 10.0, "{name}");
    }
}

#[test]
fn raim_max_exclusions_boundary_is_exact() {
    // Two simultaneous faults: a budget of 2 recovers the epoch, a budget
    // of 1 spends its exclusion and must report the residual integrity
    // fault, and a budget of 0 must not exclude at all. Opposite-sign
    // faults keep the pair separable (same-sign pairs can masquerade as a
    // clock shift and defeat leave-one-out identification).
    let truth = Ecef::new(6.371e6, 1.0e5, -2.0e5);
    let mut meas = wide_sky_measurements(truth);
    meas[1].pseudorange += 900.0;
    meas[5].pseudorange -= 750.0;

    let recovered = Raim::new(NewtonRaphson::default(), 10.0)
        .with_max_exclusions(2)
        .solve(&meas, 0.0)
        .unwrap();
    assert_eq!(recovered.excluded.len(), 2);

    match Raim::new(NewtonRaphson::default(), 10.0)
        .with_max_exclusions(1)
        .solve(&meas, 0.0)
        .unwrap_err()
    {
        SolveError::IntegrityFault { excluded, residual } => {
            assert_eq!(excluded.len(), 1, "exactly the budget spent");
            assert!(residual > 10.0, "residual {residual} still failing");
        }
        other => panic!("expected IntegrityFault, got {other:?}"),
    }

    match Raim::new(NewtonRaphson::default(), 10.0)
        .with_max_exclusions(0)
        .solve(&meas, 0.0)
        .unwrap_err()
    {
        SolveError::IntegrityFault { excluded, .. } => {
            assert!(excluded.is_empty(), "budget 0 must never exclude");
        }
        other => panic!("expected IntegrityFault, got {other:?}"),
    }
}

#[test]
fn predicted_bias_nan_rejected_by_direct_methods() {
    let truth = Ecef::new(6.371e6, 0.0, 0.0);
    let meas: Vec<Measurement> = good_sats()
        .into_iter()
        .map(|s| Measurement::new(s, s.distance_to(truth)))
        .collect();
    for solver in [&Dlo::default() as &dyn PositionSolver, &Dlg::default()] {
        assert_eq!(
            solver.solve(&meas, f64::NAN).unwrap_err(),
            SolveError::NonFinite,
            "{}",
            solver.name()
        );
    }
}
