//! End-to-end tests of the positioning service: the `serve` and
//! `replay` commands, crash-safe journal recovery across processes, and
//! the chaos campaign's SLO gate.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_gps-repro"))
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gps_repro_service_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

/// Pulls the `fleet digest <hex>` line out of command output.
fn fleet_digest_of(stdout: &str) -> String {
    stdout
        .lines()
        .filter_map(|l| l.trim().strip_prefix("fleet digest "))
        .filter_map(|rest| rest.split_whitespace().next())
        .find(|token| token.len() == 16 && token.chars().all(|c| c.is_ascii_hexdigit()))
        .unwrap_or_else(|| panic!("no fleet digest line in:\n{stdout}"))
        .to_owned()
}

#[test]
fn serve_then_replay_has_fleet_digest_parity() {
    let dir = temp_dir("parity");
    let journal = dir.join("fleet.jrnl");

    let serve = bin()
        .args([
            "serve",
            "--quick",
            "--seed",
            "99",
            "--journal",
            journal.to_str().expect("utf-8 path"),
        ])
        .output()
        .expect("serve runs");
    let serve_out = String::from_utf8_lossy(&serve.stdout);
    assert!(serve.status.success(), "{serve_out}");
    let live_digest = fleet_digest_of(&serve_out);

    // A fresh process rebuilds every session from the journal alone and
    // must land on the identical fleet digest.
    let replay = bin()
        .args([
            "replay",
            journal.to_str().expect("utf-8 path"),
            "--verify-digest",
            &live_digest,
        ])
        .output()
        .expect("replay runs");
    let replay_out = String::from_utf8_lossy(&replay.stdout);
    assert!(
        replay.status.success(),
        "{replay_out}\n{}",
        String::from_utf8_lossy(&replay.stderr)
    );
    assert!(replay_out.contains("parity verified"), "{replay_out}");
    assert_eq!(fleet_digest_of(&replay_out), live_digest);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn killed_and_torn_journal_still_replays_clean() {
    let dir = temp_dir("torn");
    let journal = dir.join("torn.jrnl");

    // Crash mid-run (kill after 7 of 16 rounds) with a torn tail write.
    let serve = bin()
        .args([
            "serve",
            "--quick",
            "--seed",
            "7",
            "--kill-after",
            "7",
            "--truncate-tail",
            "41",
            "--journal",
            journal.to_str().expect("utf-8 path"),
        ])
        .output()
        .expect("serve runs");
    assert!(
        serve.status.success(),
        "{}",
        String::from_utf8_lossy(&serve.stdout)
    );

    // Replay must absorb the torn tail (stop at the last intact frame)
    // and verify every surviving record bit-for-bit.
    let replay = bin()
        .args(["replay", journal.to_str().expect("utf-8 path")])
        .output()
        .expect("replay runs");
    let replay_out = String::from_utf8_lossy(&replay.stdout);
    assert!(
        replay.status.success(),
        "{replay_out}\n{}",
        String::from_utf8_lossy(&replay.stderr)
    );
    assert!(replay_out.contains("torn tail true"), "{replay_out}");
    assert!(replay_out.contains("mismatches 0"), "{replay_out}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn replay_rejects_a_wrong_digest_and_garbage_input() {
    let dir = temp_dir("reject");
    let journal = dir.join("ok.jrnl");
    let serve = bin()
        .args([
            "serve",
            "--quick",
            "--sessions",
            "4",
            "--rounds",
            "6",
            "--journal",
            journal.to_str().expect("utf-8 path"),
        ])
        .output()
        .expect("serve runs");
    assert!(serve.status.success());

    let wrong = bin()
        .args([
            "replay",
            journal.to_str().expect("utf-8 path"),
            "--verify-digest",
            "deadbeef",
        ])
        .output()
        .expect("replay runs");
    assert!(!wrong.status.success());
    assert!(
        String::from_utf8_lossy(&wrong.stderr).contains("digest mismatch"),
        "{}",
        String::from_utf8_lossy(&wrong.stderr)
    );

    let garbage = dir.join("garbage.jrnl");
    std::fs::write(&garbage, b"not a journal at all").expect("write");
    let bad = bin()
        .args(["replay", garbage.to_str().expect("utf-8 path")])
        .output()
        .expect("replay runs");
    assert!(!bad.status.success());

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn chaos_campaign_meets_slos_and_emits_bench_json() {
    let dir = temp_dir("chaos");
    let bench = dir.join("bench.json");

    let chaos = bin()
        .args([
            "experiment",
            "chaos",
            "--quick",
            "--seed",
            "2010",
            "--bench-out",
            bench.to_str().expect("utf-8 path"),
        ])
        .output()
        .expect("chaos runs");
    let out = String::from_utf8_lossy(&chaos.stdout);
    assert!(
        chaos.status.success(),
        "{out}\n{}",
        String::from_utf8_lossy(&chaos.stderr)
    );
    for needle in ["availability", "p99", "shed", "restarts", "SLOs met"] {
        assert!(out.contains(needle), "missing `{needle}` in:\n{out}");
    }

    let json = std::fs::read_to_string(&bench).expect("bench json");
    for needle in [
        "\"bench\": \"service\"",
        "availability_pct",
        "missed_integrity",
        "replay_verified\": true",
    ] {
        assert!(json.contains(needle), "missing `{needle}` in:\n{json}");
    }

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn chaos_gate_fails_on_an_impossible_slo() {
    // A 100.5%-style floor can't be met — but 100 is legal input, so
    // drive the failure with an unachievable floor via flag validation
    // instead: an out-of-range floor is rejected up front.
    let out = bin()
        .args([
            "experiment",
            "chaos",
            "--quick",
            "--slo-availability",
            "101",
        ])
        .output()
        .expect("chaos runs");
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("slo-availability"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}
