//! Empirical checks of the paper's mathematical claims.
//!
//! Theorem 4.1: after differencing against a base equation, the
//! right-hand-side errors are *correlated* with covariance `½σ²ρ₁²` off
//! the diagonal — so OLS's condition (3-35) fails.
//!
//! Theorem 4.2: the covariance matrix `Ψᵢⱼ = ρ₁² + δᵢⱼρᵢ₊₁²` is positive
//! definite, so GLS applies and is optimal.
//!
//! These tests verify both claims numerically on Monte-Carlo draws of the
//! paper's error model.

use gps_repro::core::{
    linearize, BaseSelection, CovarianceModel, Dlg, Dlo, Measurement, PositionSolver,
};
use gps_repro::geodesy::Ecef;
use gps_repro::linalg::{Cholesky, Matrix};
use gps_rng::rngs::StdRng;
use gps_rng::{Rng, SeedableRng};

fn gaussian(rng: &mut StdRng) -> f64 {
    rng.standard_normal()
}

fn sats() -> Vec<Ecef> {
    vec![
        Ecef::new(2.0e7, 0.0, 1.7e7),
        Ecef::new(1.5e7, 1.8e7, 0.9e7),
        Ecef::new(1.6e7, -1.7e7, 1.0e7),
        Ecef::new(2.5e7, 0.4e7, -0.6e7),
        Ecef::new(1.9e7, 0.9e7, 1.6e7),
        Ecef::new(0.8e7, 1.4e7, 2.0e7),
    ]
}

/// Monte-Carlo estimate of the covariance of the differenced RHS errors
/// Δβ, under the paper's error model (independent zero-mean pseudorange
/// errors, eq. 4-14/4-15). Verifies the structure the proof of
/// Theorem 4.1 derives: cov(Δβᵢ, Δβⱼ) ≈ σ²ρ₁² off the diagonal and
/// ≈ σ²(ρ₁² + ρᵢ₊₁²)... up to the common scale.
#[test]
fn differenced_errors_are_correlated_as_theorem_41_predicts() {
    let truth = Ecef::new(6.371e6, 1.0e5, -2.0e5);
    let satellites = sats();
    let sigma = 3.0;
    let trials = 30_000;
    let mut rng = StdRng::seed_from_u64(41);

    // Noise-free linear system as the reference RHS.
    let clean: Vec<Measurement> = satellites
        .iter()
        .map(|&s| Measurement::new(s, s.distance_to(truth)))
        .collect();
    let clean_sys = linearize(&clean, 0.0, BaseSelection::First).expect("valid geometry");
    let n = clean_sys.d.len();

    let mut mean = vec![0.0; n];
    let mut cov = Matrix::zeros(n, n);
    for _ in 0..trials {
        let noisy: Vec<Measurement> = satellites
            .iter()
            .map(|&s| Measurement::new(s, s.distance_to(truth) + sigma * gaussian(&mut rng)))
            .collect();
        let sys = linearize(&noisy, 0.0, BaseSelection::First).expect("valid geometry");
        let delta: Vec<f64> = (0..n).map(|i| sys.d[i] - clean_sys.d[i]).collect();
        for i in 0..n {
            mean[i] += delta[i];
            for j in 0..n {
                cov[(i, j)] += delta[i] * delta[j];
            }
        }
    }
    for m in mean.iter_mut().take(n) {
        *m /= trials as f64;
    }
    // E(Δβ) ≈ 0 (eq. 4-19). Scale: entries are ~σ·ρ ≈ 7e7, so the mean of
    // 30k trials has standard error ~4e5.
    for (i, m) in mean.iter().enumerate() {
        assert!(m.abs() < 2.0e6, "mean[{i}] = {m}");
    }

    // Normalize to correlation-like units using the base range.
    let rho1 = clean_sys.corrected_ranges[clean_sys.base_index];
    let scale = sigma * sigma * rho1 * rho1;
    let mut max_rel_err: f64 = 0.0;
    for i in 0..n {
        for j in 0..n {
            let sample = cov[(i, j)] / trials as f64;
            let rho_i = clean_sys.corrected_ranges[i + 1];
            let expected = if i == j {
                // Var(Δβᵢ) = σ²(ρ₁² + ρᵢ₊₁²) to first order.
                sigma * sigma * (rho1 * rho1 + rho_i * rho_i)
            } else {
                // cov(Δβᵢ, Δβⱼ) = σ²ρ₁² — the Theorem 4.1 correlation.
                scale
            };
            max_rel_err = max_rel_err.max((sample - expected).abs() / expected);
        }
    }
    assert!(
        max_rel_err < 0.12,
        "covariance structure off by {max_rel_err}"
    );
}

/// Theorem 4.2: the Ψ matrix built by DLG is symmetric positive definite
/// for any valid geometry (Cholesky succeeds), with and without the
/// clock-corrected ranges differing.
#[test]
fn dlg_covariance_is_positive_definite() {
    let truth = Ecef::new(6.371e6, -4.0e5, 2.0e5);
    for bias in [0.0, 250.0, -900.0] {
        let meas: Vec<Measurement> = sats()
            .iter()
            .map(|&s| Measurement::new(s, s.distance_to(truth) + bias))
            .collect();
        let sys = linearize(&meas, bias, BaseSelection::First).expect("valid geometry");
        let psi = Dlg::new().covariance_matrix(&sys);
        assert!(psi.is_symmetric(1e-9));
        assert!(
            Cholesky::new(&psi).is_ok(),
            "Ψ not positive definite at bias {bias}"
        );
    }
}

/// The optimality pay-off: across many noisy epochs, DLG (full Ψ) has an
/// RMS position error no larger than DLO, and the full covariance beats
/// the diagonal-only ablation.
#[test]
fn gls_optimality_pay_off() {
    let truth = Ecef::new(6.371e6, 1.0e5, -2.0e5);
    let satellites = sats();
    let mut rng = StdRng::seed_from_u64(42);
    let sigma = 4.0;
    let trials = 2_000;

    let dlo = Dlo::default();
    let dlg_full = Dlg::default();
    let dlg_diag = Dlg::new().with_covariance_model(CovarianceModel::DiagonalOnly);

    let mut sq = [0.0f64; 3];
    for _ in 0..trials {
        let meas: Vec<Measurement> = satellites
            .iter()
            .map(|&s| Measurement::new(s, s.distance_to(truth) + sigma * gaussian(&mut rng)))
            .collect();
        for (k, solver) in [&dlo as &dyn PositionSolver, &dlg_full, &dlg_diag]
            .iter()
            .enumerate()
        {
            let fix = solver.solve(&meas, 0.0).expect("good geometry");
            sq[k] += fix.position.distance_to(truth).powi(2);
        }
    }
    let rms: Vec<f64> = sq.iter().map(|s| (s / trials as f64).sqrt()).collect();
    let (rms_dlo, rms_full, rms_diag) = (rms[0], rms[1], rms[2]);
    assert!(
        rms_full <= rms_dlo * 1.01,
        "DLG {rms_full} should not exceed DLO {rms_dlo}"
    );
    assert!(
        rms_full <= rms_diag * 1.01,
        "full Ψ {rms_full} should not exceed diagonal {rms_diag}"
    );
}

/// The Figure 5.2 observation at `m = 4`: the differenced system is
/// exactly determined (3 equations, 3 unknowns), so OLS and GLS coincide
/// and DLO ≡ DLG no matter how inconsistent the data.
#[test]
fn dlo_equals_dlg_at_four_satellites() {
    let truth = Ecef::new(6.371e6, 1.0e5, -2.0e5);
    let mut meas: Vec<Measurement> = sats()[..4]
        .iter()
        .map(|&s| Measurement::new(s, s.distance_to(truth)))
        .collect();
    meas[1].pseudorange += 12.0;
    meas[3].pseudorange -= 7.0;
    let dlo = Dlo::default().solve(&meas, 0.0).unwrap();
    let dlg = Dlg::default().solve(&meas, 0.0).unwrap();
    assert!(
        dlo.position.distance_to(dlg.position) < 1e-6,
        "differ by {}",
        dlo.position.distance_to(dlg.position)
    );
}

/// The classical cost model behind the paper's θ rates: NR from the
/// paper's cold start (eq. 3-27, the Earth's center) needs ~5 iterations;
/// each one re-solves an `m×4` least-squares problem, which is why a
/// single closed-form solve lands near 1/5 of NR's time.
#[test]
fn nr_cold_start_takes_about_five_iterations() {
    use gps_core::{NewtonRaphson, PositionSolver};
    for truth in [
        Ecef::new(6.371e6, 0.0, 0.0),
        Ecef::new(3.6e6, -5.2e6, 6.0e5),
        Ecef::new(-2.3e6, -1.4e6, 5.7e6),
    ] {
        for m in [4, 5, 6] {
            let meas: Vec<Measurement> = sats()[..m]
                .iter()
                .map(|&s| Measurement::new(s, s.distance_to(truth) + 77.0))
                .collect();
            if let Ok(fix) = NewtonRaphson::default().solve(&meas, 0.0) {
                assert!(
                    (4..=7).contains(&fix.iterations),
                    "m={m}: {} iterations",
                    fix.iterations
                );
            }
        }
    }
}

/// The paper's eq. 4-2 consistency: plugging the true position into the
/// linearized system with exact pseudoranges yields a (relatively) zero
/// residual, regardless of base choice.
#[test]
fn linearization_consistent_for_all_bases() {
    let truth = Ecef::new(3.6e6, -5.2e6, 6.0e5);
    let meas: Vec<Measurement> = sats()
        .iter()
        .enumerate()
        .map(|(k, &s)| {
            Measurement::new(s, s.distance_to(truth)).with_elevation(0.2 + 0.1 * k as f64)
        })
        .collect();
    for base in [
        BaseSelection::First,
        BaseSelection::HighestElevation,
        BaseSelection::LowestElevation,
        BaseSelection::ShortestRange,
    ] {
        let sys = linearize(&meas, 0.0, base).expect("valid geometry");
        let x = gps_repro::linalg::Vector::from_slice(&[truth.x, truth.y, truth.z]);
        let r = gps_repro::linalg::lstsq::residual(&sys.a, &sys.d, &x).expect("shapes match");
        let rel = r.norm_inf() / sys.d.norm_inf();
        assert!(rel < 1e-12, "{base:?}: relative residual {rel}");
    }
}
